//! # retreet-verify — the unified verification façade
//!
//! The paper answers three kinds of dependence queries — data race
//! (Theorem 2), transformation conflict/equivalence (Theorem 3), and the
//! MSO validity questions both reduce to — through one MONA-backed
//! pipeline.  Earlier revisions of this reproduction exposed them as three
//! disconnected per-crate entry points, each with its own options struct and
//! verdict shape.  This crate is the single coherent entry point that
//! replaces them:
//!
//! * [`Verifier`] — built once via [`Verifier::builder`], holds the analysis
//!   budget, the engine portfolio and the verdict cache;
//! * [`Query`] — the typed query surface: [`Query::DataRace`],
//!   [`Query::Equivalence`], [`Query::Validity`];
//! * [`Verdict`] — the unified answer: a structured [`Outcome`] (with the
//!   concrete [`retreet_analysis::race::RaceWitness`] /
//!   [`retreet_analysis::equiv::EquivCounterExample`] / falsifying-tree
//!   witnesses), engine provenance, a [`Soundness`] caveat for bounded-only
//!   answers, and timing;
//! * [`VerifyError`] — the typed error hierarchy replacing the ad-hoc
//!   `String` errors of the old entry points.
//!
//! # The portfolio
//!
//! Each query kind is answered by every applicable engine in the portfolio
//! (see [`Engine`]): tree automata (unbounded, where the fragment allows)
//! for all three kinds, configurations and traces for races, traces for
//! equivalence, and bounded enumeration for validity.  With [`VerifierBuilder::parallel`]
//! enabled, the applicable engines run concurrently on worker threads —
//! but the verdict is always the one the *most authoritative* answering
//! engine produces (dispatch order, unbounded engines first), identical in
//! outcome **and witness** to the sequential portfolio's.  Losing engines
//! are cooperatively cancelled as soon as the winner is decided.
//!
//! # The serving tier
//!
//! A [`Verifier`] is `Sync` and built to be shared across serving threads
//! (the `retreet-serve` crate wraps one in a long-running NDJSON service):
//!
//! * the verdict cache is *lock-striped* over independent shards, so
//!   concurrent distinct queries contend on different locks;
//! * identical concurrent queries are *single-flighted*: one of them runs
//!   the portfolio, the rest block on that in-flight run and receive the
//!   same witness (marked [`Verdict::coalesced`]) instead of racing the
//!   engines N times;
//! * [`Verifier::verify_batch`] fans a batch out over worker threads and
//!   returns results in input order;
//! * [`Verifier::cache_stats`] / [`Verifier::serving_stats`] expose the
//!   hit/miss/collision and run/cancel/coalesce counters the service and
//!   `bench_service` report.
//!
//! # Robustness
//!
//! The serving tier is hardened for long-running multi-tenant use:
//!
//! * **Deadlines** — [`VerifierBuilder::default_deadline`] (or a per-query
//!   [`Verifier::verify_within`]) bounds every dispatch.  A process-wide
//!   watchdog thread raises the same cooperative-cancel flag the parallel
//!   portfolio already threads through every engine's enumeration loops.
//!   The answer is *fail-closed*: if an engine finished inside the budget,
//!   its verdict is returned marked [`Verdict::degraded`] (honest soundness,
//!   never cached); if none did, the typed
//!   [`VerifyError::DeadlineExceeded`] — never a truncated or wrong verdict.
//! * **Crash-safe persistence** — [`VerifierBuilder::persist`] backs the
//!   verdict cache with an append-only, checksummed record log
//!   (`retreet-store`).  Every accepted cache insert is written through;
//!   on restart every verdict ever computed is recovered (torn tails are
//!   truncated, corrupt records skipped or refused per
//!   [`CorruptionPolicy`]), and the [`Soundness`] upgrade lattice is
//!   enforced on disk exactly as in memory.
//! * **Fault isolation** — every engine run executes under `catch_unwind`:
//!   a panicking engine forfeits its slot (and is reported as a skip with
//!   its panic message) while the rest of the portfolio keeps racing;
//!   [`VerifyError::PortfolioFailed`] is returned only when *no* engine
//!   survives.  A deterministic [`FaultPlan`] can inject panics, stalls,
//!   and store failures for chaos testing.
//! * **Probing and draining** — [`Verifier::probe`] classifies a query's
//!   [`Warmth`] (cache hit / in-flight / cold) without running anything, so
//!   a server can lane-split admission; [`Verifier::abort_inflight`] raises
//!   every active dispatch's cancel flag for fast shutdown, and
//!   [`Verifier::flush_store`] durably syncs the log.
//!
//! # Example
//!
//! ```
//! use retreet_verify::{Query, Verifier};
//! use retreet_lang::corpus;
//!
//! let verifier = Verifier::builder().max_nodes(3).valuations(1).build();
//!
//! // Theorem 2: Odd(n) ‖ Even(n) is data-race-free.
//! let verdict = verifier
//!     .verify(Query::DataRace(&corpus::size_counting_parallel()))
//!     .unwrap();
//! assert!(verdict.is_race_free());
//!
//! // Theorem 3: the Fig. 6a fusion is correct.
//! let verdict = verifier
//!     .verify(Query::Equivalence(
//!         &corpus::size_counting_sequential(),
//!         &corpus::size_counting_fused(),
//!     ))
//!     .unwrap();
//! assert!(verdict.is_equivalent());
//!
//! // Repeated queries are served from the verdict cache.
//! let again = verifier
//!     .verify(Query::DataRace(&corpus::size_counting_parallel()))
//!     .unwrap();
//! assert!(again.cached);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod error;
mod persist;
mod query;
mod verdict;
mod watchdog;

pub use cache::CacheStats;
pub use engine::{Engine, EngineConfig};
pub use error::{EngineSkip, ProgramRole, VerifyError};
pub use persist::StoreStats;
pub use query::{Query, QueryKind};
pub use verdict::{Outcome, Soundness, Verdict};

// The fault-injection vocabulary and the store's corruption policy are
// re-exported so serving-tier callers configure chaos runs and persistence
// through one crate.
pub use retreet_store::fault::{
    FaultCounts, FaultPlan, FaultPlanBuilder, FaultSite, InjectedFault,
};
pub use retreet_store::CorruptionPolicy;

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

use retreet_analysis::configs::EnumOptions;
use retreet_lang::ast::Program;
use retreet_lang::validate::validate;
use retreet_mso::formula::Formula;

use cache::{CacheKey, VerdictCache};
use engine::{run_engine, EngineAnswer, NEVER_CANCELLED};
use persist::VerdictStore;
use query::OwnedQuery;

/// Builder for [`Verifier`]; obtain one with [`Verifier::builder`].
///
/// ```
/// use retreet_verify::{Engine, Verifier};
///
/// let verifier = Verifier::builder()
///     .max_nodes(4)
///     .valuations(2)
///     .engines([Engine::Configuration, Engine::Trace])
///     .parallel(true)
///     .cache_capacity(1024)
///     .build();
/// assert_eq!(verifier.engines().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct VerifierBuilder {
    config: EngineConfig,
    engines: Vec<Engine>,
    parallel: bool,
    cache_capacity: usize,
    default_deadline: Option<Duration>,
    faults: Option<Arc<FaultPlan>>,
    persist: Option<(PathBuf, CorruptionPolicy)>,
}

impl Default for VerifierBuilder {
    fn default() -> Self {
        VerifierBuilder {
            config: EngineConfig {
                race_nodes: 4,
                equiv_nodes: 5,
                validity_nodes: 5,
                valuations: 2,
                check_dependence_order: true,
                enumeration: EnumOptions::default(),
            },
            engines: Engine::ALL.to_vec(),
            parallel: false,
            cache_capacity: 4096,
            default_deadline: None,
            faults: None,
            persist: None,
        }
    }
}

impl VerifierBuilder {
    /// Sets one tree-size bound for *all* query kinds (race, equivalence
    /// and bounded validity).  Use [`Self::race_nodes`] /
    /// [`Self::equiv_nodes`] / [`Self::validity_nodes`] for per-kind bounds.
    pub fn max_nodes(mut self, nodes: usize) -> Self {
        self.config.race_nodes = nodes;
        self.config.equiv_nodes = nodes;
        self.config.validity_nodes = nodes;
        self
    }

    /// Largest tree (in nodes) enumerated for data-race queries.
    pub fn race_nodes(mut self, nodes: usize) -> Self {
        self.config.race_nodes = nodes;
        self
    }

    /// Largest tree (in nodes) enumerated for equivalence queries.
    pub fn equiv_nodes(mut self, nodes: usize) -> Self {
        self.config.equiv_nodes = nodes;
        self
    }

    /// Largest tree (in nodes) enumerated for bounded validity queries.
    pub fn validity_nodes(mut self, nodes: usize) -> Self {
        self.config.validity_nodes = nodes;
        self
    }

    /// Deterministic field valuations per tree shape.
    pub fn valuations(mut self, valuations: usize) -> Self {
        self.config.valuations = valuations;
        self
    }

    /// Enforce the Theorem 3 dependence-order condition in equivalence
    /// queries (on by default; disable to compare observable behaviour
    /// only).
    pub fn check_dependence_order(mut self, check: bool) -> Self {
        self.config.check_dependence_order = check;
        self
    }

    /// Configuration-enumeration limits (stack depth / configuration caps).
    pub fn enumeration(mut self, options: EnumOptions) -> Self {
        self.config.enumeration = options;
        self
    }

    /// Restricts the portfolio to the given engines, in dispatch-preference
    /// order (the order doubles as the *authority* order: the verdict of
    /// the earliest answering engine wins, sequentially and in parallel).
    /// Duplicates are dropped; an empty list restores the default full
    /// portfolio.
    pub fn engines(mut self, engines: impl IntoIterator<Item = Engine>) -> Self {
        let mut chosen: Vec<Engine> = Vec::new();
        for engine in engines {
            if !chosen.contains(&engine) {
                chosen.push(engine);
            }
        }
        self.engines = if chosen.is_empty() {
            Engine::ALL.to_vec()
        } else {
            chosen
        };
        self
    }

    /// Run the applicable engines concurrently on worker threads (off by
    /// default: engines run one after the other).  The verdict — outcome
    /// *and* witness — is the same either way: the most authoritative
    /// answering engine (dispatch order) wins, and losers are cooperatively
    /// cancelled once the winner is decided.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Maximum number of cached verdicts (0 disables the cache *and*
    /// single-flight coalescing).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Default per-query wall-clock budget.  When it expires the dispatch's
    /// cooperative-cancel flag is raised by the watchdog thread; engines
    /// abandon their enumerations at the next poll and the query resolves
    /// fail-closed (a [`Verdict::degraded`] best-effort verdict when one
    /// engine already finished, [`VerifyError::DeadlineExceeded`]
    /// otherwise).  Unset by default: queries run to completion.
    pub fn default_deadline(mut self, budget: Duration) -> Self {
        self.default_deadline = Some(budget);
        self
    }

    /// Installs a deterministic fault-injection plan: engine panics and
    /// stalls, and (when persistence is enabled) store write errors, torn
    /// writes and corruption.  Testing hook — never set in production.  The
    /// plan is deliberately *not* part of [`EngineConfig`], which is hashed
    /// into cache keys: injecting faults must not change what a query is.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Like [`Self::fault_plan`] with a plan that is already shared: the
    /// serving tier hands the same `Arc` to the verifier (engine and store
    /// sites) and keeps a clone for its own connection-write site, so one
    /// seed drives the whole stack's chaos run.
    pub fn shared_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Backs the verdict cache with a crash-safe append-only log at `path`
    /// (created if absent).  Every verdict the cache accepts is written
    /// through; on [`Self::try_build`] every decodable persisted verdict is
    /// loaded back into the cache, so a restarted process serves its entire
    /// prior corpus as cache hits.  Corrupt records are skipped and counted
    /// ([`CorruptionPolicy::SkipAndLog`]); use
    /// [`Self::persist_with_policy`] to refuse a corrupt store instead.
    /// Persistence rides on the cache: with `cache_capacity(0)` nothing is
    /// ever accepted, hence nothing persisted.
    pub fn persist(self, path: impl Into<PathBuf>) -> Self {
        self.persist_with_policy(path, CorruptionPolicy::SkipAndLog)
    }

    /// Like [`Self::persist`] with an explicit corruption policy.
    pub fn persist_with_policy(
        mut self,
        path: impl Into<PathBuf>,
        policy: CorruptionPolicy,
    ) -> Self {
        self.persist = Some((path.into(), policy));
        self
    }

    /// Finalizes the verifier, reporting store failures as
    /// [`VerifyError::StoreFailed`] instead of panicking.  Only the
    /// persistent store can fail to open; without [`Self::persist`] this
    /// never errors.
    pub fn try_build(self) -> Result<Verifier, VerifyError> {
        let mut cache = VerdictCache::new(self.cache_capacity);
        let mut store = None;
        if let Some((path, policy)) = &self.persist {
            let (opened, loaded) = VerdictStore::open(path.clone(), *policy, self.faults.clone())
                .map_err(|error| VerifyError::StoreFailed {
                message: error.to_string(),
            })?;
            // Warm the cache *before* attaching the store: the load must
            // not write every recovered verdict back to the log it just
            // came from.
            for (key, subjects, verdict) in loaded {
                cache.insert(key, subjects, verdict);
            }
            let opened = Arc::new(opened);
            cache.set_store(Arc::clone(&opened));
            store = Some(opened);
        }
        Ok(Verifier {
            cache,
            config: self.config,
            engines: self.engines,
            parallel: self.parallel,
            default_deadline: self.default_deadline,
            faults: self.faults,
            store,
            inflight: Mutex::new(HashMap::new()),
            active: Mutex::new(Vec::new()),
            counters: Arc::new(Counters::default()),
        })
    }

    /// Finalizes the verifier; panics if the persistent store cannot be
    /// opened (use [`Self::try_build`] to handle that as a typed error).
    pub fn build(self) -> Verifier {
        match self.try_build() {
            Ok(verifier) => verifier,
            Err(error) => panic!("verifier build failed: {error}"),
        }
    }
}

/// Portfolio-side counters of a verifier (monotonic over its lifetime);
/// see [`Verifier::serving_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServingStats {
    /// Individual engine executions started (sequential and parallel,
    /// including cancelled ones).
    pub engine_runs: u64,
    /// Engine runs that observed the cooperative cancel flag and exited
    /// early because another engine's verdict had already won.
    pub cancelled_runs: u64,
    /// Queries that were *coalesced*: they arrived while an identical query
    /// was in flight and waited on that single run instead of racing the
    /// portfolio again.
    pub coalesced: u64,
    /// Engine runs that panicked and were confined to their slot by
    /// `catch_unwind` (injected or genuine).
    pub panicked_runs: u64,
    /// Queries whose deadline expired (or that were aborted) before the
    /// authoritative engine answered — resolved as a degraded verdict or
    /// [`VerifyError::DeadlineExceeded`].
    pub deadline_hits: u64,
    /// Queries answered with a [`Verdict::degraded`] best-effort verdict.
    pub degraded: u64,
}

#[derive(Default)]
struct Counters {
    engine_runs: AtomicU64,
    cancelled_runs: AtomicU64,
    coalesced: AtomicU64,
    panicked_runs: AtomicU64,
    deadline_hits: AtomicU64,
    degraded: AtomicU64,
}

/// One in-flight engine run that concurrent identical queries wait on.
struct Flight {
    subjects: Arc<OwnedQuery>,
    result: Mutex<Option<Result<Verdict, VerifyError>>>,
    ready: Condvar,
}

impl Flight {
    fn new(subjects: Arc<OwnedQuery>) -> Self {
        Flight {
            subjects,
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, result: Result<Verdict, VerifyError>) {
        let mut slot = self.result.lock().expect("flight slot poisoned");
        if slot.is_none() {
            *slot = Some(result);
        }
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Verdict, VerifyError> {
        let mut slot = self.result.lock().expect("flight slot poisoned");
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.ready.wait(slot).expect("flight slot poisoned");
        }
    }
}

/// Leadership guard: guarantees the flight is published and deregistered
/// even if the leader's engine run panics (waiters would otherwise block
/// forever).
struct FlightLead<'a> {
    verifier: &'a Verifier,
    key: CacheKey,
    flight: &'a Arc<Flight>,
    query_kind: QueryKind,
    finished: bool,
}

impl FlightLead<'_> {
    fn finish(mut self, result: Result<Verdict, VerifyError>) {
        self.flight.publish(result);
        self.deregister();
        self.finished = true;
    }

    fn deregister(&self) {
        self.verifier
            .inflight
            .lock()
            .expect("in-flight table poisoned")
            .remove(&self.key);
    }
}

impl Drop for FlightLead<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.flight.publish(Err(VerifyError::PortfolioFailed {
                query: self.query_kind,
            }));
            self.deregister();
        }
    }
}

/// One portfolio slot: `None` while its engine is still running.
type SlotAnswer = Option<(Engine, EngineAnswer, Duration)>;

/// Why no engine produced a verdict.
struct NoAnswer {
    skipped: Vec<EngineSkip>,
    cancelled: usize,
    panicked: usize,
}

/// Scans the parallel portfolio's slots in dispatch (authority) order: the
/// first answer wins once everything before it has resolved; `None` while a
/// more authoritative engine is still running.  A *cancelled* earlier slot
/// means the deadline (or an abort) cut off a more authoritative engine
/// before it resolved — any verdict decided past that point is the best
/// answer available in budget, not the portfolio's authoritative one, and
/// is marked [`Verdict::degraded`].  Earlier skips and panics do *not*
/// degrade: those engines resolved definitively without an answer, exactly
/// as they would sequentially.
fn decide(answers: &[SlotAnswer]) -> Option<Result<Verdict, NoAnswer>> {
    let mut skipped = Vec::new();
    let mut cancelled = 0usize;
    let mut panicked = 0usize;
    let mut degraded = false;
    for entry in answers {
        match entry {
            None => return None,
            Some((engine, EngineAnswer::Verdict(outcome, soundness), elapsed)) => {
                return Some(Ok(Verdict {
                    outcome: outcome.clone(),
                    engine: *engine,
                    soundness: *soundness,
                    elapsed: *elapsed,
                    cached: false,
                    coalesced: false,
                    degraded,
                }));
            }
            Some((_, EngineAnswer::Skip(skip), _)) => skipped.push(skip.clone()),
            Some((engine, EngineAnswer::Panicked(message), _)) => {
                panicked += 1;
                skipped.push(EngineSkip {
                    engine: *engine,
                    reason: format!("engine panicked: {message}"),
                });
            }
            Some((_, EngineAnswer::Cancelled, _)) => {
                cancelled += 1;
                degraded = true;
            }
        }
    }
    Some(Err(NoAnswer {
        skipped,
        cancelled,
        panicked,
    }))
}

/// The unified verification façade: one `verify` call for all three query
/// kinds, backed by an engine portfolio, a sharded verdict cache and
/// single-flight coalescing of identical concurrent queries.  See the
/// crate docs for the full story.
pub struct Verifier {
    config: EngineConfig,
    engines: Vec<Engine>,
    parallel: bool,
    cache: VerdictCache,
    default_deadline: Option<Duration>,
    faults: Option<Arc<FaultPlan>>,
    store: Option<Arc<VerdictStore>>,
    inflight: Mutex<HashMap<CacheKey, Arc<Flight>>>,
    /// Cancel flags of every dispatch currently running, held weakly so a
    /// finished query costs nothing; [`Verifier::abort_inflight`] raises
    /// whatever is still alive.
    active: Mutex<Vec<Weak<AtomicBool>>>,
    counters: Arc<Counters>,
}

/// How warm a query is, as classified by [`Verifier::probe`]: the serving
/// tier routes [`Warmth::Hit`] and [`Warmth::InFlight`] queries down its
/// fast lane (a cached or coalesced answer never queues behind cold
/// verifications) and subjects only [`Warmth::Cold`] queries to admission
/// control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Warmth {
    /// A matching verdict is resident in the cache.
    Hit,
    /// An identical query is in flight right now; a new arrival coalesces.
    InFlight,
    /// Answering requires a fresh portfolio dispatch.
    Cold,
}

impl Verifier {
    /// Starts building a verifier.
    pub fn builder() -> VerifierBuilder {
        VerifierBuilder::default()
    }

    /// A verifier with the default budget, full portfolio and cache.
    pub fn with_defaults() -> Self {
        VerifierBuilder::default().build()
    }

    /// The engines in this verifier's portfolio, in dispatch order.
    pub fn engines(&self) -> &[Engine] {
        &self.engines
    }

    /// The resolved option set engine runs receive.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Hit/miss/collision/entry counters of the verdict cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Engine-run / cancellation / coalescing / panic / deadline counters
    /// of the portfolio.
    pub fn serving_stats(&self) -> ServingStats {
        ServingStats {
            engine_runs: self.counters.engine_runs.load(Ordering::Relaxed),
            cancelled_runs: self.counters.cancelled_runs.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            panicked_runs: self.counters.panicked_runs.load(Ordering::Relaxed),
            deadline_hits: self.counters.deadline_hits.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
        }
    }

    /// The default per-query budget, when one was configured.
    pub fn default_deadline(&self) -> Option<Duration> {
        self.default_deadline
    }

    /// Per-kind counts of injected faults, when a [`FaultPlan`] is
    /// installed.
    pub fn fault_counts(&self) -> Option<FaultCounts> {
        self.faults.as_ref().map(|plan| plan.counts())
    }

    /// The installed fault-injection plan, when one was configured — so
    /// layers above the verifier (the serving tier's connection writer) can
    /// roll against the same seeded stream.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.faults.clone()
    }

    /// Counters of the persistent verdict store, when one is attached.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|store| store.stats())
    }

    /// Durably syncs the persistent store (no-op without one).  The serving
    /// tier calls this on graceful shutdown, after draining.
    pub fn flush_store(&self) {
        if let Some(store) = &self.store {
            store.flush();
        }
    }

    /// Classifies a query without running anything: resident in the cache,
    /// identical to an in-flight dispatch, or cold.  Subjects are compared
    /// structurally (not just by hash), exactly as the cache itself does;
    /// no counters move.
    pub fn probe(&self, query: &Query<'_>) -> Warmth {
        if !self.cache.enabled() {
            return Warmth::Cold;
        }
        let key = query.cache_key(&self.config);
        if self.cache.peek(&key, query).is_some() {
            return Warmth::Hit;
        }
        let inflight = self.inflight.lock().expect("in-flight table poisoned");
        match inflight.get(&key) {
            Some(flight) if flight.subjects.matches(query) => Warmth::InFlight,
            _ => Warmth::Cold,
        }
    }

    /// Raises the cooperative-cancel flag of every dispatch currently
    /// running (engines abandon their enumerations at the next poll and
    /// those queries resolve as degraded verdicts or
    /// [`VerifyError::DeadlineExceeded`]); returns how many flags were
    /// raised.  The serving tier's hard-abort path on shutdown.
    pub fn abort_inflight(&self) -> usize {
        let mut active = self.active.lock().expect("active flag list poisoned");
        let mut raised = 0;
        for weak in active.drain(..) {
            if let Some(flag) = weak.upgrade() {
                flag.store(true, Ordering::Relaxed);
                raised += 1;
            }
        }
        raised
    }

    /// Drops every cached verdict (counters are preserved).
    pub fn clear_cache(&self) {
        self.cache.clear()
    }

    /// Answers a query: validates its subjects, consults the verdict cache,
    /// coalesces with an identical in-flight query if there is one, and
    /// otherwise dispatches to the portfolio under the builder's default
    /// deadline (if any).  This is *the* entry point;
    /// [`Self::check_data_race`], [`Self::check_equivalence`] and
    /// [`Self::check_validity`] are thin conveniences over it.
    pub fn verify(&self, query: Query<'_>) -> Result<Verdict, VerifyError> {
        self.verify_impl(query, self.default_deadline)
    }

    /// Like [`Self::verify`] with an explicit per-query budget overriding
    /// the builder default.  Cache hits and coalesced waits are not subject
    /// to the budget (they do no engine work); a dispatch that outlives it
    /// resolves fail-closed — the best verdict already resolved, marked
    /// [`Verdict::degraded`], or [`VerifyError::DeadlineExceeded`].
    pub fn verify_within(
        &self,
        query: Query<'_>,
        budget: Duration,
    ) -> Result<Verdict, VerifyError> {
        self.verify_impl(query, Some(budget))
    }

    fn verify_impl(
        &self,
        query: Query<'_>,
        deadline: Option<Duration>,
    ) -> Result<Verdict, VerifyError> {
        self.validate_subjects(&query)?;
        if !self.cache.enabled() {
            // Without a cache there is no key to coalesce on either; the
            // query goes straight to the portfolio.
            return self.dispatch(&query, None, deadline);
        }
        // The cache key is a fixed-size structural hash of the subjects and
        // options, computed once here at query construction (no per-lookup
        // re-canonicalization of program text).
        let key = query.cache_key(&self.config);
        if let Some(cached) = self.cache.get(&key, &query) {
            return Ok(cached);
        }
        // The owned subjects are cloned *before* taking the in-flight lock:
        // an O(program) clone inside that critical section would serialize
        // every cache-missing query across all serving threads on one
        // mutex.  The Arc is shared by the flight, the cache entry and the
        // parallel portfolio's workers; only the (rare) coalesced and
        // collision paths clone it for nothing.
        let owned = Arc::new(query.to_owned_query());
        enum Role {
            Lead(Arc<Flight>),
            Wait(Arc<Flight>),
            Collide,
        }
        let role = {
            let mut inflight = self.inflight.lock().expect("in-flight table poisoned");
            match inflight.get(&key) {
                // Coalescing is only sound when the in-flight *subjects*
                // match, not just the 128-bit key: a colliding query must
                // run on its own rather than adopt another query's verdict.
                Some(flight) if flight.subjects.matches(&query) => Role::Wait(Arc::clone(flight)),
                Some(_) => Role::Collide,
                None => {
                    let flight = Arc::new(Flight::new(Arc::clone(&owned)));
                    inflight.insert(key, Arc::clone(&flight));
                    Role::Lead(flight)
                }
            }
        };
        match role {
            Role::Wait(flight) => {
                self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                let mut result = flight.wait();
                if let Ok(verdict) = &mut result {
                    verdict.coalesced = true;
                }
                result
            }
            Role::Collide => {
                let result = self.dispatch(&query, Some(&owned), deadline);
                if let Ok(verdict) = &result {
                    // The insert keeps whatever the colliding leader cached
                    // and counts the collision (or takes the slot if the
                    // leader failed without caching) — the same accounting
                    // a sequential arrival of the colliding pair gets.
                    // Degraded verdicts are never cached: a retry after
                    // load subsides must get the full portfolio again.
                    if !verdict.degraded {
                        self.cache.insert(key, owned, verdict.clone());
                    }
                }
                result
            }
            Role::Lead(flight) => {
                let lead = FlightLead {
                    verifier: self,
                    key,
                    flight: &flight,
                    query_kind: query.kind(),
                    finished: false,
                };
                // Double-check after winning leadership: the previous
                // leader may have populated the cache between this query's
                // miss and its registration (peek keeps the per-query
                // hit/miss accounting exact).
                let result = match self.cache.peek(&key, &query) {
                    Some(cached) => Ok(cached),
                    None => {
                        let result = self.dispatch(&query, Some(&owned), deadline);
                        if let Ok(verdict) = &result {
                            if !verdict.degraded {
                                self.cache.insert(key, owned, verdict.clone());
                            }
                        }
                        result
                    }
                };
                lead.finish(result.clone());
                result
            }
        }
    }

    /// Answers a batch of queries, fanning them out over worker threads.
    /// `results[i]` is always the answer to `queries[i]` — the fan-out
    /// never reorders — and identical queries within (or across) batches
    /// coalesce onto a single engine run via the cache and single-flight.
    pub fn verify_batch(&self, queries: &[Query<'_>]) -> Vec<Result<Verdict, VerifyError>> {
        self.verify_batch_impl(queries, self.default_deadline)
    }

    /// Like [`Self::verify_batch`] with an explicit *per-query* budget:
    /// each query in the batch gets its own `budget`, not a shared pot.
    pub fn verify_batch_within(
        &self,
        queries: &[Query<'_>],
        budget: Duration,
    ) -> Vec<Result<Verdict, VerifyError>> {
        self.verify_batch_impl(queries, Some(budget))
    }

    fn verify_batch_impl(
        &self,
        queries: &[Query<'_>],
        deadline: Option<Duration>,
    ) -> Vec<Result<Verdict, VerifyError>> {
        let mut results: Vec<Option<Result<Verdict, VerifyError>>> = Vec::new();
        results.resize_with(queries.len(), || None);
        rayon::scope(|s| {
            for (slot, query) in results.iter_mut().zip(queries.iter()) {
                s.spawn(move |_| {
                    *slot = Some(self.verify_impl(*query, deadline));
                });
            }
        });
        results
            .into_iter()
            .map(|slot| slot.expect("every batch slot is filled before the scope joins"))
            .collect()
    }

    /// Convenience: `verify(Query::DataRace(program))`.
    pub fn check_data_race(&self, program: &Program) -> Result<Verdict, VerifyError> {
        self.verify(Query::DataRace(program))
    }

    /// Convenience: `verify(Query::Equivalence(original, transformed))`.
    pub fn check_equivalence(
        &self,
        original: &Program,
        transformed: &Program,
    ) -> Result<Verdict, VerifyError> {
        self.verify(Query::Equivalence(original, transformed))
    }

    /// Convenience: `verify(Query::Validity(formula))`.
    pub fn check_validity(&self, formula: &Formula) -> Result<Verdict, VerifyError> {
        self.verify(Query::Validity(formula))
    }

    /// Runs a *single named engine* on a query, bypassing cache and
    /// portfolio — the hook differential tests and the agreement test suite
    /// use to compare engines against each other.
    pub fn verify_with_engine(
        &self,
        engine: Engine,
        query: Query<'_>,
    ) -> Result<Verdict, VerifyError> {
        self.validate_subjects(&query)?;
        self.counters.engine_runs.fetch_add(1, Ordering::Relaxed);
        let (answer, elapsed) = run_engine(
            engine,
            &query,
            &self.config,
            &NEVER_CANCELLED,
            self.faults.as_deref(),
        );
        match answer {
            EngineAnswer::Verdict(outcome, soundness) => Ok(Verdict {
                outcome,
                engine,
                soundness,
                elapsed,
                cached: false,
                coalesced: false,
                degraded: false,
            }),
            EngineAnswer::Skip(skip) => Err(VerifyError::NoApplicableEngine {
                query: query.kind(),
                skipped: vec![skip],
            }),
            EngineAnswer::Panicked(_) => {
                // A single-engine run has no surviving portfolio member.
                self.counters.panicked_runs.fetch_add(1, Ordering::Relaxed);
                Err(VerifyError::PortfolioFailed {
                    query: query.kind(),
                })
            }
            EngineAnswer::Cancelled => unreachable!("the never-raised flag cannot cancel a run"),
        }
    }

    fn validate_subjects(&self, query: &Query<'_>) -> Result<(), VerifyError> {
        let check = |role: ProgramRole, program: &Program| -> Result<(), VerifyError> {
            let errors = validate(program);
            match errors.first() {
                Some(first) => Err(VerifyError::InvalidProgram {
                    role,
                    message: first.to_string(),
                }),
                None => Ok(()),
            }
        };
        match query {
            Query::DataRace(program) => check(ProgramRole::Queried, program),
            Query::Equivalence(original, transformed) => {
                check(ProgramRole::Original, original)?;
                check(ProgramRole::Transformed, transformed)
            }
            Query::Validity(_) => Ok(()),
        }
    }

    /// Routes a cache-missed query to the applicable engines.  `owned` is
    /// the already-cloned subjects when the caller has them (the
    /// single-flight paths), so the parallel portfolio can reuse the Arc
    /// instead of cloning the ASTs again.
    ///
    /// Every dispatch owns one cooperative-cancel flag, raised by the
    /// deadline watchdog (when `deadline` is set), by
    /// [`Self::abort_inflight`], or by the parallel portfolio itself once a
    /// winner is decided.  Finished dispatches drop their `Arc`, so stale
    /// registrations cost nothing.
    fn dispatch(
        &self,
        query: &Query<'_>,
        owned: Option<&Arc<OwnedQuery>>,
        deadline: Option<Duration>,
    ) -> Result<Verdict, VerifyError> {
        let applicable: Vec<Engine> = self
            .engines
            .iter()
            .copied()
            .filter(|engine| engine.supports(query.kind()))
            .collect();
        if applicable.is_empty() {
            return Err(VerifyError::NoApplicableEngine {
                query: query.kind(),
                skipped: Vec::new(),
            });
        }
        let cancel = Arc::new(AtomicBool::new(false));
        if let Some(budget) = deadline {
            watchdog::watch(Instant::now() + budget, &cancel);
        }
        {
            let mut active = self.active.lock().expect("active flag list poisoned");
            active.retain(|weak| weak.strong_count() > 0);
            active.push(Arc::downgrade(&cancel));
        }
        let result = if self.parallel && applicable.len() > 1 {
            let owned = match owned {
                Some(owned) => Arc::clone(owned),
                None => Arc::new(query.to_owned_query()),
            };
            self.run_portfolio_parallel(query, &applicable, owned, Arc::clone(&cancel))
        } else {
            self.run_portfolio_sequential(query, &applicable, &cancel)
        };
        match &result {
            Err(VerifyError::DeadlineExceeded { .. }) => {
                self.counters.deadline_hits.fetch_add(1, Ordering::Relaxed);
            }
            Ok(verdict) if verdict.degraded => {
                self.counters.deadline_hits.fetch_add(1, Ordering::Relaxed);
                self.counters.degraded.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        result
    }

    /// Engines run one after the other in dispatch order; the first one
    /// that produces an answer wins.  A panicking engine forfeits its turn
    /// (reported as a skip with the panic message); a cancelled run means
    /// the deadline expired or the dispatch was aborted — and since the
    /// raised flag would cancel every remaining engine too, the portfolio
    /// resolves [`VerifyError::DeadlineExceeded`] immediately.  (Degraded
    /// verdicts only arise in the parallel portfolio, where a less
    /// authoritative engine may already have finished; sequentially the
    /// authoritative engine runs first, so there is never a resolved verdict
    /// to fall back on.)
    fn run_portfolio_sequential(
        &self,
        query: &Query<'_>,
        engines: &[Engine],
        cancel: &AtomicBool,
    ) -> Result<Verdict, VerifyError> {
        let mut skipped = Vec::new();
        let mut panicked = 0usize;
        for &engine in engines {
            self.counters.engine_runs.fetch_add(1, Ordering::Relaxed);
            let (answer, elapsed) =
                run_engine(engine, query, &self.config, cancel, self.faults.as_deref());
            match answer {
                EngineAnswer::Verdict(outcome, soundness) => {
                    return Ok(Verdict {
                        outcome,
                        engine,
                        soundness,
                        elapsed,
                        cached: false,
                        coalesced: false,
                        degraded: false,
                    })
                }
                EngineAnswer::Skip(skip) => skipped.push(skip),
                EngineAnswer::Panicked(message) => {
                    self.counters.panicked_runs.fetch_add(1, Ordering::Relaxed);
                    panicked += 1;
                    skipped.push(EngineSkip {
                        engine,
                        reason: format!("engine panicked: {message}"),
                    });
                }
                EngineAnswer::Cancelled => {
                    self.counters.cancelled_runs.fetch_add(1, Ordering::Relaxed);
                    return Err(VerifyError::DeadlineExceeded {
                        query: query.kind(),
                    });
                }
            }
        }
        if panicked > 0 && panicked == engines.len() {
            return Err(VerifyError::PortfolioFailed {
                query: query.kind(),
            });
        }
        Err(VerifyError::NoApplicableEngine {
            query: query.kind(),
            skipped,
        })
    }

    /// Engines run concurrently on worker threads, but the verdict is
    /// decided by *authority*, not by arrival: engine `i`'s answer wins
    /// exactly when every engine before it in dispatch order has resolved
    /// without an answer (skip) — the verdict, witness included, is
    /// therefore identical to [`Self::run_portfolio_sequential`]'s on every
    /// run, on any thread count.
    ///
    /// Earlier revisions returned the *first* definitive verdict to arrive,
    /// holding bounded positives back only while `Engine::Automata` was
    /// pending.  Automata only answers validity queries, so for race and
    /// equivalence queries a fast engine's bounded positive could pre-empt
    /// a pending engine's unbounded refutation (or another engine's
    /// differently-phrased witness) and the weaker nondeterministic verdict
    /// was then cached.  Deciding by authority under a shared lock removes
    /// both the soundness race and the nondeterminism.
    ///
    /// The decision is made *by the workers themselves* (under the slot
    /// lock) rather than by the caller draining a channel: the moment the
    /// decision exists the shared cancel flag is raised, so losing engines
    /// abandon their enumerations cooperatively — even when the `rayon`
    /// shim runs the spawns inline on a single-core host, where a
    /// caller-side decision would only happen after every engine had
    /// already run to completion.
    fn run_portfolio_parallel(
        &self,
        query: &Query<'_>,
        engines: &[Engine],
        owned: Arc<OwnedQuery>,
        cancel: Arc<AtomicBool>,
    ) -> Result<Verdict, VerifyError> {
        struct PortfolioState {
            slots: Mutex<PortfolioSlots>,
            cancel: Arc<AtomicBool>,
        }
        struct PortfolioSlots {
            answers: Vec<SlotAnswer>,
            decided: bool,
        }

        let engine_count = engines.len();
        let config = Arc::new(self.config.clone());
        let state = Arc::new(PortfolioState {
            slots: Mutex::new(PortfolioSlots {
                answers: vec![None; engines.len()],
                decided: false,
            }),
            cancel,
        });
        let (sender, receiver) = mpsc::channel();
        for (slot, &engine) in engines.iter().enumerate() {
            let owned = Arc::clone(&owned);
            let config = Arc::clone(&config);
            let state = Arc::clone(&state);
            let counters = Arc::clone(&self.counters);
            let faults = self.faults.clone();
            let sender = sender.clone();
            rayon::spawn(move || {
                counters.engine_runs.fetch_add(1, Ordering::Relaxed);
                let (answer, elapsed) = run_engine(
                    engine,
                    &owned.as_query(),
                    &config,
                    &state.cancel,
                    faults.as_deref(),
                );
                match &answer {
                    EngineAnswer::Cancelled => {
                        counters.cancelled_runs.fetch_add(1, Ordering::Relaxed);
                    }
                    EngineAnswer::Panicked(_) => {
                        counters.panicked_runs.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                let decision = {
                    let mut slots = state.slots.lock().expect("portfolio slots poisoned");
                    if slots.decided {
                        None
                    } else {
                        slots.answers[slot] = Some((engine, answer, elapsed));
                        let decision = decide(&slots.answers);
                        slots.decided = decision.is_some();
                        decision
                    }
                };
                if let Some(decision) = decision {
                    state.cancel.store(true, Ordering::Relaxed);
                    // The caller may have given up (worker panic elsewhere);
                    // a failed send is fine.
                    let _ = sender.send(decision);
                }
            });
        }
        drop(sender);
        match receiver.recv() {
            Ok(Ok(verdict)) => Ok(verdict),
            // The deadline (or an abort) cancelled at least one engine and
            // none of the others had a verdict to fall back on: fail closed
            // with the typed deadline error, never a partial answer.
            Ok(Err(no_answer)) if no_answer.cancelled > 0 => Err(VerifyError::DeadlineExceeded {
                query: query.kind(),
            }),
            // Every applicable engine panicked: no survivor, the portfolio
            // itself failed.
            Ok(Err(no_answer)) if no_answer.panicked == engine_count => {
                Err(VerifyError::PortfolioFailed {
                    query: query.kind(),
                })
            }
            Ok(Err(no_answer)) if !no_answer.skipped.is_empty() => {
                Err(VerifyError::NoApplicableEngine {
                    query: query.kind(),
                    skipped: no_answer.skipped,
                })
            }
            // Every worker terminated without producing a decision, or the
            // decision carried no skip reports: nothing to report beyond
            // the portfolio failure itself.
            Ok(Err(_)) | Err(_) => Err(VerifyError::PortfolioFailed {
                query: query.kind(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;
    use retreet_mso::formula::FoVar;

    fn small_verifier() -> Verifier {
        Verifier::builder().max_nodes(3).valuations(1).build()
    }

    /// A closed formula that is bounded-Valid up to 2 nodes but Invalid in
    /// general: "there do not exist three pairwise-distinct nodes".
    fn three_node_formula() -> Formula {
        let three_nodes = Formula::exists_fo(
            "x",
            Formula::exists_fo(
                "y",
                Formula::exists_fo(
                    "z",
                    Formula::conj(vec![
                        Formula::not(Formula::Eq(FoVar::new("x"), FoVar::new("y"))),
                        Formula::not(Formula::Eq(FoVar::new("y"), FoVar::new("z"))),
                        Formula::not(Formula::Eq(FoVar::new("x"), FoVar::new("z"))),
                    ]),
                ),
            ),
        );
        Formula::not(three_nodes)
    }

    #[test]
    fn all_three_query_kinds_are_answered_with_provenance() {
        let verifier = small_verifier();

        let race = verifier
            .verify(Query::DataRace(&corpus::size_counting_parallel()))
            .unwrap();
        assert!(race.is_race_free());
        assert_eq!(race.engine, Engine::Automata);
        assert_eq!(race.soundness, Soundness::Unbounded);

        let equiv = verifier
            .verify(Query::Equivalence(
                &corpus::size_counting_sequential(),
                &corpus::size_counting_fused(),
            ))
            .unwrap();
        assert!(equiv.is_equivalent());
        assert_eq!(equiv.engine, Engine::Automata);
        assert_eq!(equiv.soundness, Soundness::Unbounded);

        let formula = Formula::exists_fo("x", Formula::Root(FoVar::new("x")));
        let valid = verifier.verify(Query::Validity(&formula)).unwrap();
        assert!(valid.is_valid());
        assert_eq!(valid.engine, Engine::Automata);
        assert_eq!(valid.soundness, Soundness::Unbounded);
    }

    #[test]
    fn negative_verdicts_carry_structured_witnesses() {
        let verifier = small_verifier();

        let race = verifier
            .verify(Query::DataRace(&corpus::cycletree_parallel()))
            .unwrap();
        let witness = race.race_witness().expect("race witness");
        assert_eq!(witness.field, "num");
        assert_eq!(race.soundness, Soundness::Unbounded);

        let equiv = verifier
            .verify(Query::Equivalence(
                &corpus::size_counting_sequential(),
                &corpus::size_counting_fused_invalid(),
            ))
            .unwrap();
        assert!(equiv.counterexample().is_some());
    }

    #[test]
    fn cache_hit_returns_identical_witness() {
        let verifier = small_verifier();
        let program = corpus::cycletree_parallel();
        let first = verifier.verify(Query::DataRace(&program)).unwrap();
        assert!(!first.cached);
        let second = verifier.verify(Query::DataRace(&program)).unwrap();
        assert!(second.cached);
        assert_eq!(
            format!("{:?}", first.race_witness().unwrap()),
            format!("{:?}", second.race_witness().unwrap()),
        );
        let stats = verifier.cache_stats();
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn parallel_portfolio_agrees_with_sequential() {
        let sequential = Verifier::builder().max_nodes(3).valuations(1).build();
        let parallel = Verifier::builder()
            .max_nodes(3)
            .valuations(1)
            .parallel(true)
            .build();
        for (_, program) in corpus::all() {
            let a = sequential.verify(Query::DataRace(&program));
            let b = parallel.verify(Query::DataRace(&program));
            match (a, b) {
                (Ok(a), Ok(b)) => assert_eq!(a.is_race_free(), b.is_race_free()),
                (a, b) => panic!("sequential {a:?} vs parallel {b:?}"),
            }
        }
    }

    #[test]
    fn parallel_portfolio_verdicts_equal_sequential_engine_witness_and_all() {
        // Regression for the soundness-priority race: the parallel verdict
        // must carry the *same engine provenance and witness* as the
        // sequential (authoritative-first) portfolio's, not whichever
        // engine happened to finish first.
        let sequential = Verifier::builder()
            .max_nodes(3)
            .valuations(1)
            .cache_capacity(0)
            .build();
        let parallel = Verifier::builder()
            .max_nodes(3)
            .valuations(1)
            .parallel(true)
            .cache_capacity(0)
            .build();
        for (name, program) in corpus::all() {
            let a = sequential.verify(Query::DataRace(&program)).unwrap();
            let b = parallel.verify(Query::DataRace(&program)).unwrap();
            assert_eq!(a.engine, b.engine, "{name}: engine provenance differs");
            assert_eq!(a.soundness, b.soundness, "{name}: soundness differs");
            assert_eq!(
                format!("{:?}", a.outcome),
                format!("{:?}", b.outcome),
                "{name}: outcome/witness differs"
            );
        }
    }

    #[test]
    fn bounded_positive_cannot_preempt_a_pending_refuting_engine() {
        // Regression for the headline bugfix, with bound-skewed engines:
        // the bounded enumerator exhausts every tree up to 2 nodes almost
        // instantly and answers Valid, while the automata engine holds the
        // unbounded refutation (Invalid).  The bounded positive must stay
        // provisional while the more authoritative engine is pending — on
        // *every* run — and the sequential and parallel verdicts must agree.
        let formula = three_node_formula();
        let sequential = Verifier::builder()
            .validity_nodes(2)
            .cache_capacity(0)
            .build();
        let parallel = Verifier::builder()
            .validity_nodes(2)
            .parallel(true)
            .cache_capacity(0)
            .build();
        let expected = sequential.verify(Query::Validity(&formula)).unwrap();
        assert!(!expected.is_valid());
        for run in 0..100 {
            let verdict = parallel.verify(Query::Validity(&formula)).unwrap();
            assert!(
                !verdict.is_valid(),
                "run {run}: bounded Valid pre-empted the automata Invalid"
            );
            assert_eq!(verdict.engine, Engine::Automata, "run {run}");
            assert_eq!(verdict.soundness, Soundness::Unbounded, "run {run}");
        }
    }

    #[test]
    fn user_supplied_engine_order_is_the_authority_order() {
        // With the bounded engine deliberately placed first, its bounded
        // Valid *is* the sequential verdict — and the parallel portfolio
        // must reproduce it rather than "upgrade" to the automata answer.
        let formula = three_node_formula();
        let order = [Engine::BoundedEnumeration, Engine::Automata];
        let sequential = Verifier::builder()
            .validity_nodes(2)
            .engines(order)
            .cache_capacity(0)
            .build();
        let parallel = Verifier::builder()
            .validity_nodes(2)
            .engines(order)
            .parallel(true)
            .cache_capacity(0)
            .build();
        let a = sequential.verify(Query::Validity(&formula)).unwrap();
        let b = parallel.verify(Query::Validity(&formula)).unwrap();
        assert_eq!(a.engine, Engine::BoundedEnumeration);
        assert_eq!(b.engine, Engine::BoundedEnumeration);
        assert!(a.is_valid() && b.is_valid());
    }

    #[test]
    fn losing_engines_observe_the_cancel_flag() {
        // The automata engine answers the validity query instantly and
        // authoritatively; the bounded enumerator faces a Catalan-sized
        // corpus (~3.3e5 trees up to 12 nodes) it could never finish
        // quickly.  Once the winner is decided the cancel flag is raised,
        // and the loser must abandon its enumeration — it checks the flag
        // before running, per tree-size tranche during corpus
        // materialization, and per evaluated model — and count itself
        // cancelled.
        let verifier = Verifier::builder()
            .validity_nodes(12)
            .parallel(true)
            .cache_capacity(0)
            .build();
        let formula = Formula::exists_fo("x", Formula::Root(FoVar::new("x")));
        let verdict = verifier.verify(Query::Validity(&formula)).unwrap();
        assert_eq!(verdict.engine, Engine::Automata);
        // The loser finishes asynchronously on multi-core hosts; its worst
        // case is finishing the size tranche it was materializing when the
        // flag was raised, so poll generously.
        for _ in 0..3000 {
            if verifier.serving_stats().cancelled_runs >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let stats = verifier.serving_stats();
        assert_eq!(stats.cancelled_runs, 1, "loser did not observe the flag");
        assert_eq!(stats.engine_runs, 2);
    }

    #[test]
    fn verify_batch_preserves_input_order() {
        let verifier = small_verifier();
        let race_free = corpus::size_counting_parallel();
        let racy = corpus::cycletree_parallel();
        let formula = Formula::exists_fo("x", Formula::Root(FoVar::new("x")));
        let queries = [
            Query::DataRace(&racy),
            Query::Validity(&formula),
            Query::DataRace(&race_free),
            Query::DataRace(&racy),
        ];
        let results = verifier.verify_batch(&queries);
        assert_eq!(results.len(), 4);
        assert!(!results[0].as_ref().unwrap().is_race_free());
        assert!(results[1].as_ref().unwrap().is_valid());
        assert!(results[2].as_ref().unwrap().is_race_free());
        assert!(!results[3].as_ref().unwrap().is_race_free());
        // The duplicate query was answered by cache or coalescing, not by a
        // second portfolio dispatch.
        let dup = results[3].as_ref().unwrap();
        assert!(dup.cached || dup.coalesced);
    }

    #[test]
    fn verify_batch_reports_errors_in_place() {
        let verifier = small_verifier();
        let ok = corpus::size_counting_parallel();
        let no_main = retreet_lang::parse_program("fn F(n) { return 0; }").unwrap();
        let queries = [Query::DataRace(&no_main), Query::DataRace(&ok)];
        let results = verifier.verify_batch(&queries);
        assert!(matches!(
            results[0],
            Err(VerifyError::InvalidProgram { .. })
        ));
        assert!(results[1].as_ref().unwrap().is_race_free());
    }

    #[test]
    fn invalid_programs_are_rejected_with_typed_errors() {
        let verifier = small_verifier();
        let no_main = retreet_lang::parse_program("fn F(n) { return 0; }").unwrap();
        match verifier.verify(Query::DataRace(&no_main)) {
            Err(VerifyError::InvalidProgram { role, .. }) => {
                assert_eq!(role, ProgramRole::Queried)
            }
            other => panic!("expected InvalidProgram, got {other:?}"),
        }
        match verifier.verify(Query::Equivalence(
            &corpus::size_counting_sequential(),
            &no_main,
        )) {
            Err(VerifyError::InvalidProgram { role, .. }) => {
                assert_eq!(role, ProgramRole::Transformed)
            }
            other => panic!("expected InvalidProgram, got {other:?}"),
        }
    }

    #[test]
    fn restricted_portfolio_reports_no_applicable_engine() {
        let verifier = Verifier::builder()
            .engines([Engine::BoundedEnumeration])
            .build();
        match verifier.verify(Query::DataRace(&corpus::size_counting_parallel())) {
            Err(VerifyError::NoApplicableEngine { query, .. }) => {
                assert_eq!(query, QueryKind::DataRace)
            }
            other => panic!("expected NoApplicableEngine, got {other:?}"),
        }
    }

    #[test]
    fn parallel_portfolio_waits_for_the_unbounded_engine_on_validity() {
        // "There do not exist three pairwise-distinct nodes" holds on every
        // tree up to 2 nodes but fails on larger trees.  With a tiny bounded
        // budget and the parallel portfolio, the fast bounded enumerator
        // answers Valid first — but the automata engine's unbounded Invalid
        // must win, not be pre-empted and cached over.
        let formula = three_node_formula();
        let verifier = Verifier::builder().validity_nodes(2).parallel(true).build();
        let verdict = verifier.verify(Query::Validity(&formula)).unwrap();
        assert!(
            !verdict.is_valid(),
            "bounded Valid must not pre-empt the automata Invalid"
        );
        assert_eq!(verdict.engine, Engine::Automata);
        assert_eq!(verdict.soundness, Soundness::Unbounded);
    }

    #[test]
    fn oversized_formula_falls_back_to_bounded_enumeration() {
        // 20 nested SO quantifiers exceed the automata compiler's 16-bit
        // alphabet; the portfolio answers with the bounded engine instead.
        let mut formula = Formula::True;
        for i in 0..20 {
            formula = Formula::exists_so(format!("X{i}"), formula);
        }
        let verifier = Verifier::builder().validity_nodes(2).build();
        let verdict = verifier.verify(Query::Validity(&formula)).unwrap();
        assert_eq!(verdict.engine, Engine::BoundedEnumeration);
        assert!(matches!(
            verdict.soundness,
            Soundness::BoundedUpTo { max_nodes: 2 }
        ));
    }

    fn temp_store_path(tag: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "retreet-verify-{tag}-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn deadline_exceeded_when_no_engine_answers_in_budget() {
        // Every engine run is stalled far past the budget; the watchdog
        // raises the cancel flag, the stall polls it and exits, and the
        // portfolio fails closed with the typed deadline error — never a
        // truncated verdict.
        let verifier = Verifier::builder()
            .max_nodes(3)
            .valuations(1)
            .fault_plan(FaultPlan::builder(7).engine_stall(1.0, 60_000).build())
            .build();
        let program = corpus::size_counting_parallel();
        let result = verifier.verify_within(Query::DataRace(&program), Duration::from_millis(60));
        match result {
            Err(VerifyError::DeadlineExceeded { query }) => {
                assert_eq!(query, QueryKind::DataRace)
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let stats = verifier.serving_stats();
        assert_eq!(stats.deadline_hits, 1);
        assert!(stats.cancelled_runs >= 1, "the stalled run was cancelled");
        // The deadline error is an engine-side failure, not a cacheable
        // verdict: a retry goes back to the portfolio.
        assert_eq!(verifier.cache_stats().entries, 0);
    }

    #[test]
    fn deadline_resolves_fail_closed_never_a_wrong_verdict() {
        // Authority order puts the bounded enumerator (facing a Catalan-
        // sized 12-node corpus it cannot finish in budget) ahead of the
        // instant automata engine.  When the deadline cuts the enumerator
        // off, the portfolio falls back to the automata verdict *if it
        // resolved in time* — marked degraded, with its honest soundness.
        // On a single-core host the rayon shim runs the spawns inline in
        // authority order, so the automata engine may only get the CPU
        // after the flag is already raised; then the typed deadline error
        // is the correct fail-closed answer.  Either way: never a wrong,
        // partial or unmarked verdict.  (The degradation decision itself is
        // pinned deterministically in `decide_marks_degradation_*` below.)
        let verifier = Verifier::builder()
            .validity_nodes(12)
            .engines([Engine::BoundedEnumeration, Engine::Automata])
            .parallel(true)
            .default_deadline(Duration::from_millis(150))
            .build();
        let formula = Formula::exists_fo("x", Formula::Root(FoVar::new("x")));
        match verifier.verify(Query::Validity(&formula)) {
            Ok(verdict) => {
                assert!(
                    verdict.degraded,
                    "an in-budget fallback must carry the caveat"
                );
                assert_eq!(verdict.engine, Engine::Automata);
                assert!(verdict.is_valid());
                assert_eq!(verifier.serving_stats().degraded, 1);
                // Degraded verdicts are never cached.
                assert_eq!(verifier.cache_stats().entries, 0);
            }
            Err(VerifyError::DeadlineExceeded { query }) => {
                assert_eq!(query, QueryKind::Validity);
            }
            other => panic!("expected a degraded verdict or DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(verifier.serving_stats().deadline_hits, 1);
    }

    fn slot(engine: Engine, answer: EngineAnswer) -> SlotAnswer {
        Some((engine, answer, Duration::from_millis(1)))
    }

    fn valid_answer() -> EngineAnswer {
        EngineAnswer::Verdict(Outcome::Valid { trees_checked: 4 }, Soundness::Unbounded)
    }

    #[test]
    fn decide_marks_degradation_only_past_a_cancelled_authority() {
        // A cancelled more-authoritative slot degrades the winning verdict…
        let answers = [
            slot(Engine::BoundedEnumeration, EngineAnswer::Cancelled),
            slot(Engine::Automata, valid_answer()),
        ];
        match decide(&answers) {
            Some(Ok(verdict)) => {
                assert!(verdict.degraded);
                assert_eq!(verdict.engine, Engine::Automata);
            }
            other => panic!("expected a degraded verdict, got {:?}", other.is_some()),
        }
        // …but a skip or a panic does not: those slots resolved
        // definitively without an answer, exactly as sequentially.
        for answer in [
            EngineAnswer::Skip(EngineSkip {
                engine: Engine::BoundedEnumeration,
                reason: "fragment".into(),
            }),
            EngineAnswer::Panicked("boom".into()),
        ] {
            let answers = [
                slot(Engine::BoundedEnumeration, answer),
                slot(Engine::Automata, valid_answer()),
            ];
            match decide(&answers) {
                Some(Ok(verdict)) => assert!(!verdict.degraded),
                other => panic!("expected a verdict, got {:?}", other.is_some()),
            }
        }
    }

    #[test]
    fn decide_waits_on_pending_authorities_and_fails_closed() {
        // No decision while a more authoritative engine is still running,
        // even though a less authoritative verdict is already in.
        let answers = [None, slot(Engine::Automata, valid_answer())];
        assert!(decide(&answers).is_none());
        // All engines cancelled: the deadline verdict-less case.
        let answers = [
            slot(Engine::BoundedEnumeration, EngineAnswer::Cancelled),
            slot(Engine::Automata, EngineAnswer::Cancelled),
        ];
        match decide(&answers) {
            Some(Err(no_answer)) => {
                assert_eq!(no_answer.cancelled, 2);
                assert_eq!(no_answer.panicked, 0);
            }
            _ => panic!("expected NoAnswer"),
        }
        // All engines panicked: portfolio failure, with the panic messages
        // preserved as skip reports.
        let answers = [
            slot(
                Engine::BoundedEnumeration,
                EngineAnswer::Panicked("a".into()),
            ),
            slot(Engine::Automata, EngineAnswer::Panicked("b".into())),
        ];
        match decide(&answers) {
            Some(Err(no_answer)) => {
                assert_eq!(no_answer.panicked, 2);
                assert_eq!(no_answer.skipped.len(), 2);
                assert!(no_answer.skipped[0].reason.contains("engine panicked"));
            }
            _ => panic!("expected NoAnswer"),
        }
    }

    #[test]
    fn panicking_engines_are_confined_to_their_slot() {
        // Every engine run panics (injected); the unwind never crosses
        // `run_engine`, the serving thread survives, and the portfolio
        // reports the typed failure only because *no* engine survived.
        let verifier = Verifier::builder()
            .max_nodes(3)
            .valuations(1)
            .fault_plan(FaultPlan::builder(3).engine_panic(1.0).build())
            .build();
        let program = corpus::size_counting_parallel();
        match verifier.verify(Query::DataRace(&program)) {
            Err(VerifyError::PortfolioFailed { query }) => {
                assert_eq!(query, QueryKind::DataRace)
            }
            other => panic!("expected PortfolioFailed, got {other:?}"),
        }
        let stats = verifier.serving_stats();
        assert!(stats.panicked_runs >= 1);
        assert_eq!(stats.panicked_runs, stats.engine_runs);
    }

    #[test]
    fn persisted_verdicts_survive_a_restart_with_identical_witnesses() {
        let path = temp_store_path("restart");
        let racy = corpus::cycletree_parallel();
        let formula = Formula::exists_fo("x", Formula::Root(FoVar::new("x")));
        let first_witness;
        {
            let verifier = Verifier::builder()
                .max_nodes(3)
                .valuations(1)
                .persist(&path)
                .build();
            let race = verifier.verify(Query::DataRace(&racy)).unwrap();
            first_witness = format!("{:?}", race.race_witness().unwrap());
            verifier.verify(Query::Validity(&formula)).unwrap();
            let stats = verifier.store_stats().expect("store attached");
            assert_eq!(stats.appends, 2);
            verifier.flush_store();
        }
        // "Restart": a fresh verifier over the same path serves the entire
        // prior corpus as cache hits, witnesses byte-identical.
        let verifier = Verifier::builder()
            .max_nodes(3)
            .valuations(1)
            .persist(&path)
            .build();
        let stats = verifier.store_stats().expect("store attached");
        assert_eq!(stats.loaded, 2, "every persisted verdict is recovered");
        assert_eq!(stats.skipped, 0);
        let race = verifier.verify(Query::DataRace(&racy)).unwrap();
        assert!(race.cached, "recovered verdict served from cache");
        assert_eq!(format!("{:?}", race.race_witness().unwrap()), first_witness);
        let valid = verifier.verify(Query::Validity(&formula)).unwrap();
        assert!(valid.cached);
        assert_eq!(
            verifier.serving_stats().engine_runs,
            0,
            "no engine ran after the restart"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_write_through_keeps_exact_accounting() {
        // Satellite: 8 threads hammer the same 3 queries through a
        // persisting verifier; the hit/miss ledger must balance exactly
        // (hits + misses == lookups) and the store must end up with exactly
        // one record per distinct query.
        let path = temp_store_path("concurrent");
        let verifier = std::sync::Arc::new(
            Verifier::builder()
                .max_nodes(3)
                .valuations(1)
                .persist(&path)
                .build(),
        );
        let threads = 8;
        let rounds = 4;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let verifier = std::sync::Arc::clone(&verifier);
                std::thread::spawn(move || {
                    let race_free = corpus::size_counting_parallel();
                    let racy = corpus::cycletree_parallel();
                    let formula = Formula::exists_fo("x", Formula::Root(FoVar::new("x")));
                    for _ in 0..rounds {
                        assert!(verifier
                            .verify(Query::DataRace(&race_free))
                            .unwrap()
                            .is_race_free());
                        assert!(!verifier
                            .verify(Query::DataRace(&racy))
                            .unwrap()
                            .is_race_free());
                        assert!(verifier
                            .verify(Query::Validity(&formula))
                            .unwrap()
                            .is_valid());
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("worker thread panicked");
        }
        let lookups = (threads * rounds * 3) as u64;
        let stats = verifier.cache_stats();
        assert_eq!(
            stats.hits + stats.misses,
            lookups,
            "every lookup is exactly one hit or one miss"
        );
        assert_eq!(stats.entries, 3);
        let store = verifier.store_stats().expect("store attached");
        assert_eq!(store.entries, 3, "one persisted record per distinct query");
        assert_eq!(store.write_errors, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn probe_classifies_cache_warmth() {
        let verifier = small_verifier();
        let program = corpus::size_counting_parallel();
        let query = Query::DataRace(&program);
        assert_eq!(verifier.probe(&query), Warmth::Cold);
        verifier.verify(query).unwrap();
        assert_eq!(verifier.probe(&query), Warmth::Hit);
        // Probing never moves the hit/miss counters.
        let stats = verifier.cache_stats();
        assert_eq!(stats.hits + stats.misses, 1);
    }

    #[test]
    fn abort_inflight_cancels_a_running_dispatch() {
        // A 12-node bounded-validity dispatch takes far longer than this
        // test; abort_inflight raises its cancel flag and the query
        // resolves with the typed deadline error instead of running on.
        let verifier = std::sync::Arc::new(
            Verifier::builder()
                .validity_nodes(12)
                .engines([Engine::BoundedEnumeration])
                .cache_capacity(0)
                .build(),
        );
        let worker = {
            let verifier = std::sync::Arc::clone(&verifier);
            std::thread::spawn(move || {
                let formula = Formula::exists_fo("x", Formula::Root(FoVar::new("x")));
                verifier.verify(Query::Validity(&formula))
            })
        };
        // Wait until the dispatch has registered its flag (the engine-run
        // counter moves strictly after registration), then abort.
        for _ in 0..3000 {
            if verifier.serving_stats().engine_runs >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(verifier.abort_inflight() >= 1, "one flag was raised");
        match worker.join().expect("worker panicked") {
            Err(VerifyError::DeadlineExceeded { query }) => {
                assert_eq!(query, QueryKind::Validity)
            }
            other => panic!("expected DeadlineExceeded after abort, got {other:?}"),
        }
        assert_eq!(verifier.serving_stats().cancelled_runs, 1);
    }

    #[test]
    fn serving_stats_count_runs_and_coalescing() {
        let verifier = small_verifier();
        let program = corpus::size_counting_parallel();
        verifier.verify(Query::DataRace(&program)).unwrap();
        let stats = verifier.serving_stats();
        assert_eq!(stats.engine_runs, 1, "sequential portfolio stops at one");
        assert_eq!(stats.cancelled_runs, 0);
        assert_eq!(stats.coalesced, 0);
        // A cache hit does not touch the portfolio.
        verifier.verify(Query::DataRace(&program)).unwrap();
        assert_eq!(verifier.serving_stats().engine_runs, 1);
    }
}
