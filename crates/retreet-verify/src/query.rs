//! The typed query surface of the façade.
//!
//! The three dependence questions of the paper — data race (Theorem 2),
//! transformation equivalence (Theorem 3) and MSO validity (the substrate
//! both encode into) — were previously exposed as three disconnected entry
//! points.  [`Query`] makes them one type, so a single [`crate::Verifier`]
//! can dispatch, cache and report all of them uniformly.

use std::fmt;
use std::hash::{Hash, Hasher};

use retreet_lang::ast::Program;
use retreet_mso::formula::Formula;

use crate::cache::CacheKey;
use crate::engine::EngineConfig;

/// One verification question, borrowing its subject(s) from the caller.
#[derive(Debug, Clone, Copy)]
pub enum Query<'a> {
    /// Is the (parallel composition in the) program data-race-free?
    /// The paper's `DataRace⟦P⟧` query, Theorem 2.
    DataRace(&'a Program),
    /// Is the transformed program equivalent to the original?  The paper's
    /// `Conflict⟦P, P′⟧` query, Theorem 3 (original first, transformed
    /// second).
    Equivalence(&'a Program, &'a Program),
    /// Does the closed MSO formula hold on every finite binary tree?
    Validity(&'a Formula),
}

/// The kind of a query, without its subjects (used in errors, stats and
/// engine-applicability tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// A [`Query::DataRace`] query.
    DataRace,
    /// A [`Query::Equivalence`] query.
    Equivalence,
    /// A [`Query::Validity`] query.
    Validity,
}

impl fmt::Display for QueryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryKind::DataRace => write!(f, "data-race"),
            QueryKind::Equivalence => write!(f, "equivalence"),
            QueryKind::Validity => write!(f, "validity"),
        }
    }
}

impl Query<'_> {
    /// The kind of this query.
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::DataRace(_) => QueryKind::DataRace,
            Query::Equivalence(_, _) => QueryKind::Equivalence,
            Query::Validity(_) => QueryKind::Validity,
        }
    }

    /// An owned copy of this query (used by the verdict cache to verify
    /// key hits by full subject equality, and by the parallel portfolio so
    /// worker threads can outlive the caller's borrow).
    pub(crate) fn to_owned_query(self) -> OwnedQuery {
        match self {
            Query::DataRace(p) => OwnedQuery::DataRace((*p).clone()),
            Query::Equivalence(a, b) => OwnedQuery::Equivalence((*a).clone(), (*b).clone()),
            Query::Validity(f) => OwnedQuery::Validity((*f).clone()),
        }
    }

    /// The verdict-cache key of this query under `config`: a 128-bit
    /// structural hash of the query subjects (two independently seeded
    /// 64-bit hashes over the ASTs) combined with the query kind and the
    /// option set.
    ///
    /// Earlier revisions keyed the cache on the *pretty-printed program
    /// text*, re-canonicalizing every subject on every lookup; hashing the
    /// AST directly at query construction is allocation-free and O(subject)
    /// with a far smaller constant, and the stored key is a fixed-size
    /// value instead of the whole program text.  The key remains
    /// construction-independent: parsed, built and cloned subjects hash
    /// identically because the hash walks the AST, not the source.
    pub(crate) fn cache_key(&self, config: &EngineConfig) -> CacheKey {
        let digest = |domain: u8| -> u64 {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            domain.hash(&mut hasher);
            config.hash(&mut hasher);
            match self {
                Query::DataRace(program) => program.hash(&mut hasher),
                Query::Equivalence(original, transformed) => {
                    original.hash(&mut hasher);
                    transformed.hash(&mut hasher);
                }
                Query::Validity(formula) => formula.hash(&mut hasher),
            }
            hasher.finish()
        };
        CacheKey {
            kind: self.kind(),
            h1: digest(0),
            h2: digest(1),
        }
    }
}

/// An owned copy of a [`Query`]'s subjects.
pub(crate) enum OwnedQuery {
    /// Owned [`Query::DataRace`].
    DataRace(Program),
    /// Owned [`Query::Equivalence`].
    Equivalence(Program, Program),
    /// Owned [`Query::Validity`].
    Validity(Formula),
}

impl OwnedQuery {
    /// The borrowed view of the owned subjects.
    pub(crate) fn as_query(&self) -> Query<'_> {
        match self {
            OwnedQuery::DataRace(p) => Query::DataRace(p),
            OwnedQuery::Equivalence(a, b) => Query::Equivalence(a, b),
            OwnedQuery::Validity(f) => Query::Validity(f),
        }
    }

    /// Full structural equality of the subjects — the collision guard the
    /// verdict cache runs on every key hit (a 128-bit hash hit alone is not
    /// proof the queries are the same).
    pub(crate) fn matches(&self, query: &Query<'_>) -> bool {
        match (self, query) {
            (OwnedQuery::DataRace(p), Query::DataRace(q)) => p == *q,
            (OwnedQuery::Equivalence(a, b), Query::Equivalence(c, d)) => a == *c && b == *d,
            (OwnedQuery::Validity(f), Query::Validity(g)) => f == *g,
            _ => false,
        }
    }
}
