//! The typed query surface of the façade.
//!
//! The three dependence questions of the paper — data race (Theorem 2),
//! transformation equivalence (Theorem 3) and MSO validity (the substrate
//! both encode into) — were previously exposed as three disconnected entry
//! points.  [`Query`] makes them one type, so a single [`crate::Verifier`]
//! can dispatch, cache and report all of them uniformly.

use std::fmt;

use retreet_lang::ast::Program;
use retreet_lang::pretty;
use retreet_mso::formula::Formula;

/// One verification question, borrowing its subject(s) from the caller.
#[derive(Debug, Clone, Copy)]
pub enum Query<'a> {
    /// Is the (parallel composition in the) program data-race-free?
    /// The paper's `DataRace⟦P⟧` query, Theorem 2.
    DataRace(&'a Program),
    /// Is the transformed program equivalent to the original?  The paper's
    /// `Conflict⟦P, P′⟧` query, Theorem 3 (original first, transformed
    /// second).
    Equivalence(&'a Program, &'a Program),
    /// Does the closed MSO formula hold on every finite binary tree?
    Validity(&'a Formula),
}

/// The kind of a query, without its subjects (used in errors, stats and
/// engine-applicability tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// A [`Query::DataRace`] query.
    DataRace,
    /// A [`Query::Equivalence`] query.
    Equivalence,
    /// A [`Query::Validity`] query.
    Validity,
}

impl fmt::Display for QueryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryKind::DataRace => write!(f, "data-race"),
            QueryKind::Equivalence => write!(f, "equivalence"),
            QueryKind::Validity => write!(f, "validity"),
        }
    }
}

impl Query<'_> {
    /// The kind of this query.
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::DataRace(_) => QueryKind::DataRace,
            Query::Equivalence(_, _) => QueryKind::Equivalence,
            Query::Validity(_) => QueryKind::Validity,
        }
    }

    /// A canonical textual key for this query, independent of how the
    /// subject was constructed (parsed, built programmatically, cloned):
    /// programs are keyed by their pretty-printed source, formulas by their
    /// structural debug rendering.  Combined with the verifier's option
    /// fingerprint this is the verdict-cache key.
    pub(crate) fn canonical_key(&self) -> String {
        match self {
            Query::DataRace(program) => {
                format!("race\u{1}{}", pretty::print_program(program))
            }
            Query::Equivalence(original, transformed) => format!(
                "equiv\u{1}{}\u{1}{}",
                pretty::print_program(original),
                pretty::print_program(transformed)
            ),
            Query::Validity(formula) => format!("valid\u{1}{formula:?}"),
        }
    }
}
