//! The deadline watchdog: one process-wide timer thread that raises
//! cooperative-cancel flags when per-query budgets expire.
//!
//! Every deadline-carrying dispatch registers `(expiry, Weak<AtomicBool>)`
//! here.  The watchdog thread sleeps until the earliest expiry, raises the
//! flag (the same `AtomicBool` the PR-5 parallel portfolio already threads
//! through every engine's enumeration loops), and moves on.  Queries that
//! finish in time simply drop their `Arc`; the weak reference then upgrades
//! to nothing and the expiry is a no-op — no deregistration bookkeeping on
//! the fast path.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::time::Instant;

struct Entry {
    when: Instant,
    flag: Weak<AtomicBool>,
}

// `BinaryHeap` is a max-heap; order entries by *reversed* time so the
// earliest expiry surfaces first.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.when == other.when
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other.when.cmp(&self.when)
    }
}

struct Watchdog {
    heap: Mutex<BinaryHeap<Entry>>,
    wake: Condvar,
}

static WATCHDOG: OnceLock<Arc<Watchdog>> = OnceLock::new();

fn watchdog() -> &'static Arc<Watchdog> {
    WATCHDOG.get_or_init(|| {
        let state = Arc::new(Watchdog {
            heap: Mutex::new(BinaryHeap::new()),
            wake: Condvar::new(),
        });
        let thread_state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("retreet-deadline-watchdog".into())
            .spawn(move || run(thread_state))
            .expect("spawn deadline watchdog");
        state
    })
}

fn run(state: Arc<Watchdog>) {
    let mut heap = state.heap.lock().expect("watchdog heap poisoned");
    loop {
        let now = Instant::now();
        match heap.peek() {
            None => {
                heap = state.wake.wait(heap).expect("watchdog heap poisoned");
            }
            Some(entry) if entry.when <= now => {
                let entry = heap.pop().expect("peeked entry present");
                if let Some(flag) = entry.flag.upgrade() {
                    flag.store(true, Ordering::Relaxed);
                }
            }
            Some(entry) => {
                let timeout = entry.when.duration_since(now);
                heap = state
                    .wake
                    .wait_timeout(heap, timeout)
                    .expect("watchdog heap poisoned")
                    .0;
            }
        }
    }
}

/// Arrange for `flag` to be raised at `when` (unless every strong `Arc` to
/// it is dropped first — i.e. the query finished inside its budget).
pub(crate) fn watch(when: Instant, flag: &Arc<AtomicBool>) {
    let state = watchdog();
    {
        let mut heap = state.heap.lock().expect("watchdog heap poisoned");
        heap.push(Entry {
            when,
            flag: Arc::downgrade(flag),
        });
    }
    state.wake.notify_one();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn expired_deadline_raises_the_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        watch(Instant::now() + Duration::from_millis(20), &flag);
        assert!(!flag.load(Ordering::Relaxed), "not raised early");
        for _ in 0..500 {
            if flag.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("watchdog never raised the flag");
    }

    #[test]
    fn finished_queries_are_not_tracked_after_drop() {
        let flag = Arc::new(AtomicBool::new(false));
        let observer = Arc::downgrade(&flag);
        watch(Instant::now() + Duration::from_millis(30), &flag);
        drop(flag); // query finished: the only strong ref is gone
        std::thread::sleep(Duration::from_millis(80));
        assert!(observer.upgrade().is_none(), "watchdog kept the flag alive");
    }

    #[test]
    fn multiple_deadlines_fire_in_order_without_blocking_each_other() {
        let early = Arc::new(AtomicBool::new(false));
        let late = Arc::new(AtomicBool::new(false));
        // Register the late one first: the watchdog must still fire the
        // earlier expiry on time.
        watch(Instant::now() + Duration::from_millis(200), &late);
        watch(Instant::now() + Duration::from_millis(20), &early);
        for _ in 0..500 {
            if early.load(Ordering::Relaxed) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(early.load(Ordering::Relaxed), "early deadline fired");
        for _ in 0..500 {
            if late.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("late deadline never fired");
    }
}
