//! The engine portfolio: which decision procedures can answer which query
//! kinds, and the adapter that runs one engine on one query.
//!
//! The paper answers every query through one MONA pipeline; the
//! reproduction has three complementary procedures instead, and this module
//! is where they are normalized into interchangeable portfolio members:
//!
//! * [`Engine::Configuration`] — the §3 stack-configuration abstraction
//!   (race queries),
//! * [`Engine::Trace`] — the reference interpreter (race queries
//!   dynamically; equivalence queries differentially, including the
//!   Theorem 3 dependence-order condition),
//! * [`Engine::Automata`] — the Thatcher–Wright compilation to tree
//!   automata, *unbounded* on the fragment it covers (all three query
//!   kinds: validity directly, races via the structural access-summary
//!   analysis, equivalence via the fusion-correspondence matcher — each
//!   delegating to a bounded witness search when outside its fragment),
//! * [`Engine::BoundedEnumeration`] — exhaustive model enumeration up to a
//!   node bound (validity queries).

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use retreet_analysis::corresp::check_fusion_correspondence;
use retreet_analysis::equiv::{check_equivalence_cancellable, EquivOptions, EquivVerdict};
use retreet_analysis::race::{
    check_data_race_cancellable, check_data_race_dynamic_cancellable, RaceOptions, RaceVerdict,
};
use retreet_analysis::summary::{structural_race_analysis, StructuralRaceAnalysis};
use retreet_mso::bounded::{check_validity_cancellable, BoundedVerdict};
use retreet_mso::compile;
use retreet_store::fault::{FaultPlan, FaultSite, InjectedFault};

use crate::error::EngineSkip;
use crate::query::{Query, QueryKind};
use crate::verdict::{Outcome, Soundness};

/// One member of the verification portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The configuration-enumeration engine of §3 (race queries).
    Configuration,
    /// The trace (reference-interpreter) engine (race and equivalence
    /// queries).
    Trace,
    /// The unbounded tree-automata engine — the reproduction's stand-in
    /// for MONA.  Answers validity queries on the core fragment directly,
    /// race queries through the structural access-summary analysis, and
    /// equivalence queries through the fusion-correspondence matcher; when
    /// a query falls outside the decidable fragment it either delegates to
    /// a bounded witness search (negative answers stay unbounded) or skips.
    Automata,
    /// Bounded validity by exhaustive model enumeration.
    BoundedEnumeration,
}

impl Engine {
    /// Every engine, in the façade's preferred dispatch order (most
    /// authoritative first).
    pub const ALL: [Engine; 4] = [
        Engine::Automata,
        Engine::Configuration,
        Engine::Trace,
        Engine::BoundedEnumeration,
    ];

    /// The engine's stable lower-case name (also its `Display` rendering).
    pub const fn name(self) -> &'static str {
        match self {
            Engine::Configuration => "configuration",
            Engine::Trace => "trace",
            Engine::Automata => "automata",
            Engine::BoundedEnumeration => "bounded-enumeration",
        }
    }

    /// Whether this engine can answer queries of the given kind at all.
    pub fn supports(self, kind: QueryKind) -> bool {
        matches!(
            (self, kind),
            (Engine::Automata, _)
                | (Engine::Configuration, QueryKind::DataRace)
                | (Engine::Trace, QueryKind::DataRace | QueryKind::Equivalence)
                | (Engine::BoundedEnumeration, QueryKind::Validity)
        )
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The resolved option set an engine run receives (built by
/// [`crate::VerifierBuilder`]).
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct EngineConfig {
    /// Largest tree (in nodes) for race queries.
    pub race_nodes: usize,
    /// Largest tree (in nodes) for equivalence queries.
    pub equiv_nodes: usize,
    /// Largest tree (in nodes) for bounded validity queries.
    pub validity_nodes: usize,
    /// Deterministic field valuations per tree shape.
    pub valuations: usize,
    /// Enforce the Theorem 3 dependence-order condition in equivalence
    /// queries.
    pub check_dependence_order: bool,
    /// Configuration-enumeration limits (depth / configuration caps).
    pub enumeration: retreet_analysis::configs::EnumOptions,
}

impl EngineConfig {
    /// The race-engine options this configuration induces.
    pub fn race_options(&self) -> RaceOptions {
        RaceOptions::builder()
            .max_nodes(self.race_nodes)
            .valuations(self.valuations)
            .enumeration(self.enumeration.clone())
            .build()
    }

    /// The equivalence-engine options this configuration induces.
    pub fn equiv_options(&self) -> EquivOptions {
        EquivOptions::builder()
            .max_nodes(self.equiv_nodes)
            .valuations(self.valuations)
            .check_dependence_order(self.check_dependence_order)
            .build()
    }
}

/// What one engine produced for one query.
#[derive(Debug, Clone)]
pub(crate) enum EngineAnswer {
    /// The engine produced a verdict.
    Verdict(Outcome, Soundness),
    /// The engine declined the query (fragment restriction, unsupported
    /// kind); other portfolio members may still answer.
    Skip(EngineSkip),
    /// The engine observed the cooperative cancel flag and abandoned its
    /// enumeration: a winner was already decided (or the query's deadline
    /// expired), so no verdict may (or needs to) be derived from the
    /// partial run.
    Cancelled,
    /// The engine panicked.  `catch_unwind` confines the unwind to the
    /// engine's own slot — the connection/worker thread survives and the
    /// other portfolio members keep racing; only when *no* engine answers
    /// does the portfolio report failure.
    Panicked(String),
}

/// A cancel flag that is never raised, for the sequential portfolio and
/// single-engine runs (nothing can out-race them).
pub(crate) static NEVER_CANCELLED: AtomicBool = AtomicBool::new(false);

/// Runs `engine` on `query` under `config`, returning the outcome with its
/// soundness caveat, a skip report when the engine does not apply,
/// [`EngineAnswer::Cancelled`] when `cancel` was observed raised, or
/// [`EngineAnswer::Panicked`] when the engine's own code (or an injected
/// fault) panicked — the unwind never escapes this function.  Also reports
/// the engine's own wall-clock time.
///
/// `faults`, when set, may inject an engine panic (exercising the
/// `catch_unwind` isolation) or a pre-run stall (exercising the deadline
/// watchdog; the stall polls `cancel` so a cancelled stall still exits
/// promptly).
pub(crate) fn run_engine(
    engine: Engine,
    query: &Query<'_>,
    config: &EngineConfig,
    cancel: &AtomicBool,
    faults: Option<&FaultPlan>,
) -> (EngineAnswer, std::time::Duration) {
    let start = Instant::now();
    let answer = catch_unwind(AssertUnwindSafe(|| {
        if let Some(plan) = faults {
            match plan.roll(FaultSite::EngineRun) {
                Some(InjectedFault::EnginePanic) => {
                    panic!("injected fault: {engine} engine panicked")
                }
                Some(InjectedFault::EngineStall { millis }) => {
                    let stall_until = Instant::now() + Duration::from_millis(millis);
                    while Instant::now() < stall_until {
                        if cancel.load(Ordering::Relaxed) {
                            return EngineAnswer::Cancelled;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                _ => {}
            }
        }
        run_engine_inner(engine, query, config, cancel)
    }))
    .unwrap_or_else(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        EngineAnswer::Panicked(message)
    });
    (answer, start.elapsed())
}

fn skip(engine: Engine, reason: impl Into<String>) -> EngineAnswer {
    EngineAnswer::Skip(EngineSkip {
        engine,
        reason: reason.into(),
    })
}

fn run_engine_inner(
    engine: Engine,
    query: &Query<'_>,
    config: &EngineConfig,
    cancel: &AtomicBool,
) -> EngineAnswer {
    if !engine.supports(query.kind()) {
        return skip(engine, format!("does not answer {} queries", query.kind()));
    }
    // A losing engine whose portfolio already has a winner skips the whole
    // run, not just the remaining loop iterations.
    if cancel.load(Ordering::Relaxed) {
        return EngineAnswer::Cancelled;
    }
    match (engine, query) {
        (Engine::Automata, Query::DataRace(program)) => {
            match structural_race_analysis(program) {
                StructuralRaceAnalysis::RaceFree { .. } => answer((
                    Outcome::RaceFree {
                        trees_checked: 0,
                        configurations: 0,
                    },
                    Soundness::Unbounded,
                )),
                // A candidate pair survived the structural analysis: hand
                // the program to the bounded search for a concrete witness.
                // A found race is definitive (hence unbounded); a bounded
                // all-clear is *not* an automata-grade answer, so skip and
                // let the bounded engines claim it at their own soundness.
                StructuralRaceAnalysis::Candidate { description, .. } => {
                    match check_data_race_cancellable(program, &config.race_options(), cancel) {
                        Some(RaceVerdict::Race(witness)) => {
                            answer((Outcome::Race(Box::new(witness)), Soundness::Unbounded))
                        }
                        Some(RaceVerdict::RaceFree { .. }) => skip(
                            engine,
                            format!("structural candidate not discharged: {description}"),
                        ),
                        None => EngineAnswer::Cancelled,
                    }
                }
            }
        }
        (Engine::Automata, Query::Equivalence(original, transformed)) => {
            let fused_forward = check_fusion_correspondence(original, transformed);
            let established = fused_forward.is_established()
                || check_fusion_correspondence(transformed, original).is_established();
            if established {
                return answer((
                    Outcome::Equivalent { trees_checked: 0 },
                    Soundness::Unbounded,
                ));
            }
            // No correspondence either way: search for a counterexample
            // (definitive when found); a bounded agreement is left to the
            // bounded engines.
            match check_equivalence_cancellable(
                original,
                transformed,
                &config.equiv_options(),
                cancel,
            ) {
                Some(EquivVerdict::CounterExample(ce)) => {
                    answer((Outcome::NotEquivalent(ce), Soundness::Unbounded))
                }
                Some(EquivVerdict::Equivalent { .. }) => skip(
                    engine,
                    "no fusion correspondence established in either direction",
                ),
                None => EngineAnswer::Cancelled,
            }
        }
        (Engine::Configuration, Query::DataRace(program)) => {
            match check_data_race_cancellable(program, &config.race_options(), cancel) {
                Some(verdict) => answer(race_outcome(verdict, config.race_nodes)),
                None => EngineAnswer::Cancelled,
            }
        }
        (Engine::Trace, Query::DataRace(program)) => {
            match check_data_race_dynamic_cancellable(program, &config.race_options(), cancel) {
                Some(verdict) => answer(race_outcome(verdict, config.race_nodes)),
                None => EngineAnswer::Cancelled,
            }
        }
        (Engine::Trace, Query::Equivalence(original, transformed)) => {
            match check_equivalence_cancellable(
                original,
                transformed,
                &config.equiv_options(),
                cancel,
            ) {
                Some(EquivVerdict::Equivalent { trees_checked }) => answer((
                    Outcome::Equivalent { trees_checked },
                    Soundness::BoundedUpTo {
                        max_nodes: config.equiv_nodes,
                    },
                )),
                Some(EquivVerdict::CounterExample(ce)) => {
                    answer((Outcome::NotEquivalent(ce), Soundness::Unbounded))
                }
                None => EngineAnswer::Cancelled,
            }
        }
        (Engine::Automata, Query::Validity(formula)) => match compile::compile(formula) {
            Ok(compiled) => {
                let counterexamples = compiled.automaton.complement();
                if counterexamples.is_empty() {
                    answer((Outcome::Valid { trees_checked: 0 }, Soundness::Unbounded))
                } else {
                    // The complement is nonempty: extract a falsifying tree
                    // from it so the unbounded engine's negative verdicts
                    // carry a model just like the bounded engine's.
                    answer((
                        Outcome::Invalid(counterexamples.example_tree().map(Box::new)),
                        Soundness::Unbounded,
                    ))
                }
            }
            // Outside the compiler's fragment (too many variables, duplicate
            // binders): let the bounded engine answer instead.
            Err(err) => skip(engine, err.to_string()),
        },
        (Engine::BoundedEnumeration, Query::Validity(formula)) => {
            if !formula.free_fo_vars().is_empty() || !formula.free_so_vars().is_empty() {
                return skip(engine, "bounded validity requires a closed formula");
            }
            match check_validity_cancellable(formula, config.validity_nodes, cancel) {
                Some(BoundedVerdict::ValidUpTo {
                    max_nodes,
                    trees_checked,
                }) => answer((
                    Outcome::Valid { trees_checked },
                    Soundness::BoundedUpTo { max_nodes },
                )),
                Some(BoundedVerdict::CounterExample(tree)) => {
                    answer((Outcome::Invalid(Some(Box::new(tree))), Soundness::Unbounded))
                }
                None => EngineAnswer::Cancelled,
            }
        }
        _ => skip(engine, "engine/query pairing not implemented"),
    }
}

fn answer((outcome, soundness): (Outcome, Soundness)) -> EngineAnswer {
    EngineAnswer::Verdict(outcome, soundness)
}

/// Negative race/equivalence verdicts carry a concrete witness and are
/// therefore sound unconditionally; positive ones are bounded.
fn race_outcome(verdict: RaceVerdict, max_nodes: usize) -> (Outcome, Soundness) {
    match verdict {
        RaceVerdict::RaceFree {
            trees_checked,
            configurations,
        } => (
            Outcome::RaceFree {
                trees_checked,
                configurations,
            },
            Soundness::BoundedUpTo { max_nodes },
        ),
        RaceVerdict::Race(witness) => (Outcome::Race(Box::new(witness)), Soundness::Unbounded),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applicability_table_is_exact() {
        use QueryKind::*;
        assert!(Engine::Configuration.supports(DataRace));
        assert!(!Engine::Configuration.supports(Equivalence));
        assert!(!Engine::Configuration.supports(Validity));
        assert!(Engine::Trace.supports(DataRace));
        assert!(Engine::Trace.supports(Equivalence));
        assert!(!Engine::Trace.supports(Validity));
        assert!(Engine::Automata.supports(Validity));
        assert!(Engine::Automata.supports(DataRace));
        assert!(Engine::Automata.supports(Equivalence));
        assert!(Engine::BoundedEnumeration.supports(Validity));
        assert!(!Engine::BoundedEnumeration.supports(DataRace));
        assert!(!Engine::BoundedEnumeration.supports(Equivalence));
    }
}
