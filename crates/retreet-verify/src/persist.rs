//! Crash-safe verdict persistence: the write-through layer under the
//! verdict cache.
//!
//! Every verdict the portfolio computes is appended (key, subjects,
//! verdict — witness included) to a [`retreet_store::LogStore`].  On the
//! next build with the same store path, every persisted verdict is
//! replayed into the cache before the first query arrives: restart
//! recovery generalizes the old 18-query `--warm-start` to *every verdict
//! ever computed*, witnesses byte-identical.
//!
//! Three invariants the layer maintains:
//!
//! * **Upgrade lattice** — a persisted entry is only superseded when the
//!   incoming verdict's [`Soundness::covers`] the resident one's, exactly
//!   mirroring the in-memory cache: a later bounded re-run never
//!   downgrades a persisted `Unbounded` verdict, so latest-wins replay
//!   reconstructs the lattice maximum.
//! * **Failure isolation** — a store write error is counted, never
//!   propagated: serving keeps answering from memory, and the next
//!   compaction rewrites the full live set (transient errors self-heal).
//! * **No degraded persistence** — deadline-degraded verdicts are neither
//!   cached nor persisted; a restart retries them at full budget.
//!
//! The on-disk value encoding is a small hand-rolled binary format.
//! Programs are stored as pretty-printed source (the PR-3 round-trip
//! property `parse(print(p)) == p` makes that exact); formulas, value
//! trees and labeled trees get direct codecs.  Trees are replayed in
//! node-id order, which is valid because both tree types only grow by
//! `add_left`/`add_right` — a parent's id is always smaller than its
//! children's.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use retreet_analysis::equiv::{Disagreement, EquivCounterExample};
use retreet_analysis::race::RaceWitness;
use retreet_analysis::vtree::{NodeId, ValueTree};
use retreet_lang::parse_program;
use retreet_lang::pretty::print_program;
use retreet_mso::formula::{FoVar, Formula, SoVar};
use retreet_mso::tree::LabeledTree;
use retreet_store::fault::FaultPlan;
use retreet_store::{CorruptionPolicy, LogStore};

use crate::cache::CacheKey;
use crate::engine::Engine;
use crate::query::{OwnedQuery, QueryKind};
use crate::verdict::{Outcome, Soundness, Verdict};

/// Version byte leading every persisted verdict value.
const VALUE_VERSION: u8 = 1;
/// Recursion guard for the formula decoder (well past anything the MSO
/// compiler accepts, but a corrupt file must not blow the stack).
const MAX_FORMULA_DEPTH: usize = 4096;

/// Counters of the persistent verdict store; surfaced through
/// [`crate::Verifier::store_stats`] and the service's `stats` response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Verdicts currently live in the store (distinct keys).
    pub entries: usize,
    /// Verdicts recovered from disk when the store was opened.
    pub loaded: u64,
    /// Records dropped at open: checksum-corrupt or undecodable.
    pub skipped: u64,
    /// Bytes cut from the end of the log at open (torn tail).
    pub truncated_bytes: u64,
    /// Successful write-through appends since open.
    pub appends: u64,
    /// Write-through appends that failed (counted, never propagated).
    pub write_errors: u64,
    /// Compactions run since open.
    pub compactions: u64,
}

struct Inner {
    log: LogStore,
    /// Soundness of the live persisted entry per key — the disk-side
    /// upgrade-lattice guard.
    soundness: HashMap<[u8; 17], Soundness>,
}

/// One recovered entry: cache key, query subjects, verdict.
pub(crate) type RecoveredEntry = (CacheKey, Arc<OwnedQuery>, Verdict);

/// The disk-backed verdict store wired under the verdict cache.
pub(crate) struct VerdictStore {
    inner: Mutex<Inner>,
    loaded: u64,
    skipped: u64,
    truncated_bytes: u64,
    appends: AtomicU64,
    write_errors: AtomicU64,
}

impl VerdictStore {
    /// Open (or create) the store at `path` and decode every recovered
    /// verdict.  Undecodable records are dropped under
    /// [`CorruptionPolicy::SkipAndLog`] and refused under
    /// [`CorruptionPolicy::FailOpen`].
    pub(crate) fn open(
        path: impl Into<PathBuf>,
        policy: CorruptionPolicy,
        faults: Option<Arc<FaultPlan>>,
    ) -> io::Result<(VerdictStore, Vec<RecoveredEntry>)> {
        let (mut log, report) = LogStore::open(path, policy)?;
        let mut loaded = Vec::new();
        let mut soundness = HashMap::new();
        let mut skipped = report.skipped_corrupt as u64;
        for (key_bytes, value) in log.iter() {
            match decode_entry(key_bytes, value) {
                Ok((key, subjects, verdict)) => {
                    soundness.insert(key_bytes_of(&key), verdict.soundness);
                    loaded.push((key, Arc::new(subjects), verdict));
                }
                Err(reason) if policy == CorruptionPolicy::FailOpen => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("verdict store: undecodable entry: {reason}"),
                    ));
                }
                Err(_) => skipped += 1,
            }
        }
        if let Some(plan) = faults {
            log.set_fault_plan(plan);
        }
        let store = VerdictStore {
            loaded: loaded.len() as u64,
            skipped,
            truncated_bytes: report.truncated_bytes,
            appends: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            inner: Mutex::new(Inner { log, soundness }),
        };
        Ok((store, loaded))
    }

    /// Persist one verdict the cache accepted.  Respects the soundness
    /// lattice against the *persisted* resident entry; failures are
    /// counted, never propagated.
    pub(crate) fn write_through(&self, key: &CacheKey, subjects: &OwnedQuery, verdict: &Verdict) {
        if verdict.degraded {
            return; // deadline-degraded verdicts are never persisted
        }
        let key_bytes = key_bytes_of(key);
        let mut inner = self.inner.lock().expect("verdict store poisoned");
        if let Some(resident) = inner.soundness.get(&key_bytes) {
            if !verdict.soundness.covers(resident) {
                return; // never downgrade a persisted stronger verdict
            }
        }
        let value = encode_entry(subjects, verdict);
        match inner.log.put(&key_bytes, &value) {
            Ok(()) => {
                inner.soundness.insert(key_bytes, verdict.soundness);
                self.appends.fetch_add(1, Ordering::Relaxed);
                if inner.log.maybe_compact().is_err() {
                    self.write_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                // Memory (and the in-memory cache) keep the verdict; the
                // next successful compaction rewrites the live set.
                inner.soundness.insert(key_bytes, verdict.soundness);
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Durably flush the log (called on graceful shutdown).
    pub(crate) fn flush(&self) {
        let mut inner = self.inner.lock().expect("verdict store poisoned");
        if inner.log.sync().is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("verdict store poisoned");
        StoreStats {
            entries: inner.log.len(),
            loaded: self.loaded,
            skipped: self.skipped,
            truncated_bytes: self.truncated_bytes,
            appends: self.appends.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            compactions: inner.log.compactions(),
        }
    }
}

fn key_bytes_of(key: &CacheKey) -> [u8; 17] {
    let mut bytes = [0u8; 17];
    bytes[0] = match key.kind {
        QueryKind::DataRace => 0,
        QueryKind::Equivalence => 1,
        QueryKind::Validity => 2,
    };
    bytes[1..9].copy_from_slice(&key.h1.to_le_bytes());
    bytes[9..17].copy_from_slice(&key.h2.to_le_bytes());
    bytes
}

fn key_of_bytes(bytes: &[u8]) -> Result<CacheKey, String> {
    if bytes.len() != 17 {
        return Err(format!("key is {} bytes, want 17", bytes.len()));
    }
    let kind = match bytes[0] {
        0 => QueryKind::DataRace,
        1 => QueryKind::Equivalence,
        2 => QueryKind::Validity,
        other => return Err(format!("unknown query-kind tag {other}")),
    };
    Ok(CacheKey {
        kind,
        h1: u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes")),
        h2: u64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes")),
    })
}

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.bytes.len() {
            return Err(format!(
                "short read: want {n} bytes at {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            ));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("bad utf8 string: {e}"))
    }

    fn finish(&self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after decoded value",
                self.bytes.len() - self.pos
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Tree codecs
// ---------------------------------------------------------------------------

fn put_value_tree(buf: &mut Vec<u8>, tree: &ValueTree) {
    put_u32(buf, tree.len() as u32);
    for id in tree.nodes().skip(1) {
        let parent = tree.parent(id).expect("non-root node has a parent");
        put_u32(buf, parent.0);
        put_u8(buf, u8::from(tree.left(parent) != Some(id)));
    }
    let snapshot = tree.field_snapshot();
    put_u32(buf, snapshot.len() as u32);
    for ((node, field), value) in snapshot {
        put_u32(buf, node.0);
        put_str(buf, &field);
        put_i64(buf, value);
    }
}

fn read_value_tree(r: &mut Reader<'_>) -> Result<ValueTree, String> {
    let n = r.u32()?;
    if n == 0 {
        return Err("value tree with zero nodes".into());
    }
    let mut tree = ValueTree::single();
    for id in 1..n {
        let parent = r.u32()?;
        let side = r.u8()?;
        if parent >= id {
            return Err(format!("node {id} claims later parent {parent}"));
        }
        let parent = NodeId(parent);
        let child = match side {
            0 if tree.left(parent).is_none() => tree.add_left(parent),
            1 if tree.right(parent).is_none() => tree.add_right(parent),
            0 | 1 => return Err(format!("node {id}: parent slot already taken")),
            other => return Err(format!("bad child side {other}")),
        };
        if child.0 != id {
            return Err(format!("replay produced id {} for node {id}", child.0));
        }
    }
    let fields = r.u32()?;
    for _ in 0..fields {
        let node = r.u32()?;
        if node >= n {
            return Err(format!("field on unknown node {node}"));
        }
        let field = r.str()?;
        let value = r.i64()?;
        tree.set_field(NodeId(node), &field, value);
    }
    Ok(tree)
}

fn put_labeled_tree(buf: &mut Vec<u8>, tree: &LabeledTree) {
    put_u32(buf, tree.len() as u32);
    for id in tree.nodes().skip(1) {
        let parent = tree.parent(id).expect("non-root node has a parent");
        put_u32(buf, parent.0);
        put_u8(buf, u8::from(tree.left(parent) != Some(id)));
    }
    for id in tree.nodes() {
        let labels = tree.labels(id);
        put_u32(buf, labels.len() as u32);
        for &label in labels {
            put_u32(buf, label);
        }
    }
}

fn read_labeled_tree(r: &mut Reader<'_>) -> Result<LabeledTree, String> {
    use retreet_mso::tree::NodeId as MsoNodeId;
    let n = r.u32()?;
    if n == 0 {
        return Err("labeled tree with zero nodes".into());
    }
    let mut tree = LabeledTree::single();
    for id in 1..n {
        let parent = r.u32()?;
        let side = r.u8()?;
        if parent >= id {
            return Err(format!("node {id} claims later parent {parent}"));
        }
        let parent = MsoNodeId(parent);
        let child = match side {
            0 if tree.left(parent).is_none() => tree.add_left(parent),
            1 if tree.right(parent).is_none() => tree.add_right(parent),
            0 | 1 => return Err(format!("node {id}: parent slot already taken")),
            other => return Err(format!("bad child side {other}")),
        };
        if child.0 != id {
            return Err(format!("replay produced id {} for node {id}", child.0));
        }
    }
    for id in 0..n {
        let count = r.u32()?;
        for _ in 0..count {
            tree.add_label(MsoNodeId(id), r.u32()?);
        }
    }
    Ok(tree)
}

// ---------------------------------------------------------------------------
// Formula codec
// ---------------------------------------------------------------------------

fn put_formula(buf: &mut Vec<u8>, formula: &Formula) {
    match formula {
        Formula::True => put_u8(buf, 0),
        Formula::False => put_u8(buf, 1),
        Formula::Eq(a, b) => {
            put_u8(buf, 2);
            put_str(buf, &a.0);
            put_str(buf, &b.0);
        }
        Formula::Root(a) => {
            put_u8(buf, 3);
            put_str(buf, &a.0);
        }
        Formula::Left(a, b) => {
            put_u8(buf, 4);
            put_str(buf, &a.0);
            put_str(buf, &b.0);
        }
        Formula::Right(a, b) => {
            put_u8(buf, 5);
            put_str(buf, &a.0);
            put_str(buf, &b.0);
        }
        Formula::Reach(a, b) => {
            put_u8(buf, 6);
            put_str(buf, &a.0);
            put_str(buf, &b.0);
        }
        Formula::Leaf(a) => {
            put_u8(buf, 7);
            put_str(buf, &a.0);
        }
        Formula::In(a, set) => {
            put_u8(buf, 8);
            put_str(buf, &a.0);
            put_str(buf, &set.0);
        }
        Formula::Subset(a, b) => {
            put_u8(buf, 9);
            put_str(buf, &a.0);
            put_str(buf, &b.0);
        }
        Formula::Not(inner) => {
            put_u8(buf, 10);
            put_formula(buf, inner);
        }
        Formula::And(lhs, rhs) => {
            put_u8(buf, 11);
            put_formula(buf, lhs);
            put_formula(buf, rhs);
        }
        Formula::Or(lhs, rhs) => {
            put_u8(buf, 12);
            put_formula(buf, lhs);
            put_formula(buf, rhs);
        }
        Formula::Implies(lhs, rhs) => {
            put_u8(buf, 13);
            put_formula(buf, lhs);
            put_formula(buf, rhs);
        }
        Formula::Iff(lhs, rhs) => {
            put_u8(buf, 14);
            put_formula(buf, lhs);
            put_formula(buf, rhs);
        }
        Formula::ExistsFo(var, body) => {
            put_u8(buf, 15);
            put_str(buf, &var.0);
            put_formula(buf, body);
        }
        Formula::ForallFo(var, body) => {
            put_u8(buf, 16);
            put_str(buf, &var.0);
            put_formula(buf, body);
        }
        Formula::ExistsSo(var, body) => {
            put_u8(buf, 17);
            put_str(buf, &var.0);
            put_formula(buf, body);
        }
        Formula::ForallSo(var, body) => {
            put_u8(buf, 18);
            put_str(buf, &var.0);
            put_formula(buf, body);
        }
    }
}

fn read_formula(r: &mut Reader<'_>, depth: usize) -> Result<Formula, String> {
    if depth > MAX_FORMULA_DEPTH {
        return Err("formula nests too deep".into());
    }
    let tag = r.u8()?;
    let fo = |s: String| FoVar(s);
    let so = |s: String| SoVar(s);
    Ok(match tag {
        0 => Formula::True,
        1 => Formula::False,
        2 => Formula::Eq(fo(r.str()?), fo(r.str()?)),
        3 => Formula::Root(fo(r.str()?)),
        4 => Formula::Left(fo(r.str()?), fo(r.str()?)),
        5 => Formula::Right(fo(r.str()?), fo(r.str()?)),
        6 => Formula::Reach(fo(r.str()?), fo(r.str()?)),
        7 => Formula::Leaf(fo(r.str()?)),
        8 => Formula::In(fo(r.str()?), so(r.str()?)),
        9 => Formula::Subset(so(r.str()?), so(r.str()?)),
        10 => Formula::Not(Box::new(read_formula(r, depth + 1)?)),
        11 => Formula::And(
            Box::new(read_formula(r, depth + 1)?),
            Box::new(read_formula(r, depth + 1)?),
        ),
        12 => Formula::Or(
            Box::new(read_formula(r, depth + 1)?),
            Box::new(read_formula(r, depth + 1)?),
        ),
        13 => Formula::Implies(
            Box::new(read_formula(r, depth + 1)?),
            Box::new(read_formula(r, depth + 1)?),
        ),
        14 => Formula::Iff(
            Box::new(read_formula(r, depth + 1)?),
            Box::new(read_formula(r, depth + 1)?),
        ),
        15 => Formula::ExistsFo(fo(r.str()?), Box::new(read_formula(r, depth + 1)?)),
        16 => Formula::ForallFo(fo(r.str()?), Box::new(read_formula(r, depth + 1)?)),
        17 => Formula::ExistsSo(so(r.str()?), Box::new(read_formula(r, depth + 1)?)),
        18 => Formula::ForallSo(so(r.str()?), Box::new(read_formula(r, depth + 1)?)),
        other => return Err(format!("unknown formula tag {other}")),
    })
}

// ---------------------------------------------------------------------------
// Subjects / outcome / verdict codecs
// ---------------------------------------------------------------------------

fn put_subjects(buf: &mut Vec<u8>, subjects: &OwnedQuery) {
    match subjects {
        OwnedQuery::DataRace(program) => {
            put_str(buf, &print_program(program));
        }
        OwnedQuery::Equivalence(original, transformed) => {
            put_str(buf, &print_program(original));
            put_str(buf, &print_program(transformed));
        }
        OwnedQuery::Validity(formula) => put_formula(buf, formula),
    }
}

fn read_subjects(r: &mut Reader<'_>, kind: QueryKind) -> Result<OwnedQuery, String> {
    let parse = |source: String| {
        parse_program(&source).map_err(|e| format!("persisted program fails to parse: {e}"))
    };
    Ok(match kind {
        QueryKind::DataRace => OwnedQuery::DataRace(parse(r.str()?)?),
        QueryKind::Equivalence => OwnedQuery::Equivalence(parse(r.str()?)?, parse(r.str()?)?),
        QueryKind::Validity => OwnedQuery::Validity(read_formula(r, 0)?),
    })
}

fn put_outcome(buf: &mut Vec<u8>, outcome: &Outcome) {
    match outcome {
        Outcome::RaceFree {
            trees_checked,
            configurations,
        } => {
            put_u8(buf, 0);
            put_u64(buf, *trees_checked as u64);
            put_u64(buf, *configurations as u64);
        }
        Outcome::Race(witness) => {
            put_u8(buf, 1);
            put_value_tree(buf, &witness.tree);
            put_str(buf, &witness.first);
            put_str(buf, &witness.second);
            put_u32(buf, witness.node.0);
            put_str(buf, &witness.field);
        }
        Outcome::Equivalent { trees_checked } => {
            put_u8(buf, 2);
            put_u64(buf, *trees_checked as u64);
        }
        Outcome::NotEquivalent(ce) => {
            put_u8(buf, 3);
            put_value_tree(buf, &ce.tree);
            match &ce.disagreement {
                Disagreement::Returns { first, second } => {
                    put_u8(buf, 0);
                    put_u32(buf, first.len() as u32);
                    for v in first {
                        put_i64(buf, *v);
                    }
                    put_u32(buf, second.len() as u32);
                    for v in second {
                        put_i64(buf, *v);
                    }
                }
                Disagreement::Fields { detail } => {
                    put_u8(buf, 1);
                    put_str(buf, detail);
                }
                Disagreement::DependenceOrder { detail } => {
                    put_u8(buf, 2);
                    put_str(buf, detail);
                }
                Disagreement::ExecutionError { message } => {
                    put_u8(buf, 3);
                    put_str(buf, message);
                }
            }
        }
        Outcome::Valid { trees_checked } => {
            put_u8(buf, 4);
            put_u64(buf, *trees_checked as u64);
        }
        Outcome::Invalid(None) => put_u8(buf, 5),
        Outcome::Invalid(Some(tree)) => {
            put_u8(buf, 6);
            put_labeled_tree(buf, tree);
        }
    }
}

fn read_outcome(r: &mut Reader<'_>) -> Result<Outcome, String> {
    Ok(match r.u8()? {
        0 => Outcome::RaceFree {
            trees_checked: r.u64()? as usize,
            configurations: r.u64()? as usize,
        },
        1 => Outcome::Race(Box::new(RaceWitness {
            tree: read_value_tree(r)?,
            first: r.str()?,
            second: r.str()?,
            node: NodeId(r.u32()?),
            field: r.str()?,
        })),
        2 => Outcome::Equivalent {
            trees_checked: r.u64()? as usize,
        },
        3 => {
            let tree = read_value_tree(r)?;
            let disagreement = match r.u8()? {
                0 => {
                    let n = r.u32()? as usize;
                    let first = (0..n).map(|_| r.i64()).collect::<Result<Vec<_>, _>>()?;
                    let m = r.u32()? as usize;
                    let second = (0..m).map(|_| r.i64()).collect::<Result<Vec<_>, _>>()?;
                    Disagreement::Returns { first, second }
                }
                1 => Disagreement::Fields { detail: r.str()? },
                2 => Disagreement::DependenceOrder { detail: r.str()? },
                3 => Disagreement::ExecutionError { message: r.str()? },
                other => return Err(format!("unknown disagreement tag {other}")),
            };
            Outcome::NotEquivalent(Box::new(EquivCounterExample { tree, disagreement }))
        }
        4 => Outcome::Valid {
            trees_checked: r.u64()? as usize,
        },
        5 => Outcome::Invalid(None),
        6 => Outcome::Invalid(Some(Box::new(read_labeled_tree(r)?))),
        other => return Err(format!("unknown outcome tag {other}")),
    })
}

fn put_engine(buf: &mut Vec<u8>, engine: Engine) {
    put_u8(
        buf,
        match engine {
            Engine::Automata => 0,
            Engine::Configuration => 1,
            Engine::Trace => 2,
            Engine::BoundedEnumeration => 3,
        },
    );
}

fn read_engine(r: &mut Reader<'_>) -> Result<Engine, String> {
    Ok(match r.u8()? {
        0 => Engine::Automata,
        1 => Engine::Configuration,
        2 => Engine::Trace,
        3 => Engine::BoundedEnumeration,
        other => return Err(format!("unknown engine tag {other}")),
    })
}

fn put_soundness(buf: &mut Vec<u8>, soundness: Soundness) {
    match soundness {
        Soundness::Unbounded => put_u8(buf, 0),
        Soundness::BoundedUpTo { max_nodes } => {
            put_u8(buf, 1);
            put_u64(buf, max_nodes as u64);
        }
    }
}

fn read_soundness(r: &mut Reader<'_>) -> Result<Soundness, String> {
    Ok(match r.u8()? {
        0 => Soundness::Unbounded,
        1 => Soundness::BoundedUpTo {
            max_nodes: r.u64()? as usize,
        },
        other => return Err(format!("unknown soundness tag {other}")),
    })
}

fn encode_entry(subjects: &OwnedQuery, verdict: &Verdict) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u8(&mut buf, VALUE_VERSION);
    put_subjects(&mut buf, subjects);
    put_engine(&mut buf, verdict.engine);
    put_soundness(&mut buf, verdict.soundness);
    put_u64(&mut buf, verdict.elapsed.as_nanos() as u64);
    put_outcome(&mut buf, &verdict.outcome);
    buf
}

fn decode_entry(key_bytes: &[u8], value: &[u8]) -> Result<(CacheKey, OwnedQuery, Verdict), String> {
    let key = key_of_bytes(key_bytes)?;
    let mut r = Reader::new(value);
    let version = r.u8()?;
    if version != VALUE_VERSION {
        return Err(format!("unknown value version {version}"));
    }
    let subjects = read_subjects(&mut r, key.kind)?;
    let engine = read_engine(&mut r)?;
    let soundness = read_soundness(&mut r)?;
    let elapsed = Duration::from_nanos(r.u64()?);
    let outcome = read_outcome(&mut r)?;
    r.finish()?;
    let verdict = Verdict {
        outcome,
        engine,
        soundness,
        elapsed,
        cached: false,
        coalesced: false,
        degraded: false,
    };
    Ok((key, subjects, verdict))
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;

    fn sample_value_tree() -> ValueTree {
        let mut tree = ValueTree::single();
        let left = tree.add_left(tree.root());
        let right = tree.add_right(tree.root());
        let deep = tree.add_right(left);
        tree.set_field(left, "num", 7);
        tree.set_field(deep, "sum", -3);
        tree.set_field(right, "num", 0);
        tree
    }

    #[test]
    fn value_tree_roundtrips_exactly() {
        let tree = sample_value_tree();
        let mut buf = Vec::new();
        put_value_tree(&mut buf, &tree);
        let mut r = Reader::new(&buf);
        let back = read_value_tree(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(tree, back);
    }

    #[test]
    fn labeled_tree_roundtrips_exactly() {
        use retreet_mso::tree::NodeId as MsoNodeId;
        let mut tree = LabeledTree::single();
        let left = tree.add_left(MsoNodeId(0));
        let _right = tree.add_right(MsoNodeId(0));
        let deep = tree.add_left(left);
        tree.add_label(MsoNodeId(0), 1);
        tree.add_label(deep, 3);
        tree.add_label(deep, 9);
        let mut buf = Vec::new();
        put_labeled_tree(&mut buf, &tree);
        let mut r = Reader::new(&buf);
        let back = read_labeled_tree(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(tree, back);
    }

    #[test]
    fn formula_roundtrips_exactly() {
        let formula = Formula::forall_fo(
            "x",
            Formula::exists_so(
                "X",
                Formula::implies(
                    Formula::In(FoVar::new("x"), SoVar::new("X")),
                    Formula::or(
                        Formula::Leaf(FoVar::new("x")),
                        Formula::not(Formula::Root(FoVar::new("x"))),
                    ),
                ),
            ),
        );
        let mut buf = Vec::new();
        put_formula(&mut buf, &formula);
        let mut r = Reader::new(&buf);
        let back = read_formula(&mut r, 0).unwrap();
        r.finish().unwrap();
        assert_eq!(formula, back);
    }

    #[test]
    fn full_entries_roundtrip_for_every_outcome_shape() {
        let program = corpus::size_counting_parallel();
        let entries: Vec<(OwnedQuery, Outcome)> = vec![
            (
                OwnedQuery::DataRace(program.clone()),
                Outcome::RaceFree {
                    trees_checked: 12,
                    configurations: 99,
                },
            ),
            (
                OwnedQuery::DataRace(program.clone()),
                Outcome::Race(Box::new(RaceWitness {
                    tree: sample_value_tree(),
                    first: "iter A".into(),
                    second: "iter B".into(),
                    node: NodeId(2),
                    field: "num".into(),
                })),
            ),
            (
                OwnedQuery::Equivalence(program.clone(), corpus::size_counting_fused()),
                Outcome::NotEquivalent(Box::new(EquivCounterExample {
                    tree: sample_value_tree(),
                    disagreement: Disagreement::Returns {
                        first: vec![1, -2],
                        second: vec![3],
                    },
                })),
            ),
            (
                OwnedQuery::Validity(Formula::True),
                Outcome::Valid { trees_checked: 4 },
            ),
            (OwnedQuery::Validity(Formula::False), Outcome::Invalid(None)),
        ];
        for (i, (subjects, outcome)) in entries.into_iter().enumerate() {
            let verdict = Verdict {
                outcome,
                engine: Engine::Trace,
                soundness: Soundness::BoundedUpTo { max_nodes: 5 },
                elapsed: Duration::from_micros(1234),
                cached: false,
                coalesced: false,
                degraded: false,
            };
            let key = subjects
                .as_query()
                .cache_key(&crate::VerifierBuilder::default().config);
            let value = encode_entry(&subjects, &verdict);
            let (back_key, back_subjects, back_verdict) = decode_entry(&key_bytes_of(&key), &value)
                .unwrap_or_else(|e| {
                    panic!("entry {i} failed to decode: {e}");
                });
            assert_eq!(back_key, key, "entry {i}");
            assert!(back_subjects.matches(&subjects.as_query()), "entry {i}");
            assert_eq!(
                format!("{:?}", back_verdict.outcome),
                format!("{:?}", verdict.outcome),
                "entry {i}: witness must be byte-identical"
            );
            assert_eq!(back_verdict.engine, verdict.engine);
            assert_eq!(back_verdict.soundness, verdict.soundness);
            assert_eq!(back_verdict.elapsed, verdict.elapsed);
        }
    }

    #[test]
    fn truncated_value_is_a_decode_error_not_a_panic() {
        let subjects = OwnedQuery::Validity(Formula::True);
        let verdict = Verdict {
            outcome: Outcome::Valid { trees_checked: 1 },
            engine: Engine::Automata,
            soundness: Soundness::Unbounded,
            elapsed: Duration::from_nanos(5),
            cached: false,
            coalesced: false,
            degraded: false,
        };
        let key = subjects
            .as_query()
            .cache_key(&crate::VerifierBuilder::default().config);
        let value = encode_entry(&subjects, &verdict);
        for cut in 0..value.len() {
            assert!(
                decode_entry(&key_bytes_of(&key), &value[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }
}
