//! Analysis-gated transformations: the runtime side of "check, then
//! transform".
//!
//! A downstream user describes their traversals as Retreet programs (the
//! original composition and the transformed one), asks the unified
//! [`Verifier`] façade for a verdict, and only receives a capability value —
//! [`VerifiedFusion`] or [`VerifiedParallelization`] — when the
//! transformation is justified.  The capability then unlocks the
//! corresponding execution schedule from [`crate::visit`].  This mirrors how
//! the paper envisions the framework being used by compilers: Retreet
//! answers the legality question, the execution substrate applies the
//! schedule.
//!
//! Use [`VerifiedFusion::verify_with`] / [`VerifiedParallelization::verify_with`]
//! with a shared [`Verifier`] so repeated legality questions hit its verdict
//! cache; the option-struct entry points ([`VerifiedFusion::verify`],
//! [`VerifiedParallelization::verify`]) remain as deprecated shims over the
//! façade.

use retreet_analysis::equiv::{EquivCounterExample, EquivOptions};
use retreet_analysis::race::{RaceOptions, RaceWitness};
use retreet_lang::ast::Program;
use retreet_verify::{Engine, Outcome, Query, Verdict, Verifier, VerifyError};

use crate::tree::TreeNode;
use crate::visit::{self, NodeVisitor};

/// Why a transformation was refused.
#[derive(Debug, Clone)]
pub enum TransformError {
    /// The façade rejected the query before any engine ran (malformed
    /// program, empty portfolio, …).
    Rejected(VerifyError),
    /// The equivalence check found a counterexample (fusion refused).
    NotEquivalent(Box<EquivCounterExample>),
    /// The race check found a potential data race (parallelization refused).
    DataRace(Box<RaceWitness>),
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::Rejected(err) => write!(f, "verification rejected: {err}"),
            TransformError::NotEquivalent(ce) => write!(
                f,
                "the transformed program is not equivalent: {:?}",
                ce.disagreement
            ),
            TransformError::DataRace(witness) => write!(
                f,
                "the parallelization has a data race: {} and {} conflict on {}.{}",
                witness.first, witness.second, witness.node, witness.field
            ),
        }
    }
}

impl std::error::Error for TransformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransformError::Rejected(err) => Some(err),
            _ => None,
        }
    }
}

impl From<VerifyError> for TransformError {
    fn from(err: VerifyError) -> Self {
        TransformError::Rejected(err)
    }
}

/// A certificate that a fused schedule may replace the original sequence of
/// traversals.
#[derive(Debug, Clone)]
pub struct VerifiedFusion {
    trees_checked: usize,
    engine: Engine,
}

impl VerifiedFusion {
    /// Checks through `verifier` that `fused` is equivalent to `original`
    /// and returns the capability on success.  Repeated calls with the same
    /// programs are answered from the verifier's verdict cache.
    pub fn verify_with(
        verifier: &Verifier,
        original: &Program,
        fused: &Program,
    ) -> Result<Self, TransformError> {
        let verdict = verifier.verify(Query::Equivalence(original, fused))?;
        Self::from_verdict(verdict)
    }

    /// Deprecated shim over [`Self::verify_with`]: builds a throwaway
    /// single-query [`Verifier`] from the option struct.
    #[deprecated(
        since = "0.2.0",
        note = "build a shared retreet_verify::Verifier and use VerifiedFusion::verify_with"
    )]
    pub fn verify(
        original: &Program,
        fused: &Program,
        options: &EquivOptions,
    ) -> Result<Self, TransformError> {
        let verifier = Verifier::builder()
            .equiv_nodes(options.max_nodes)
            .valuations(options.valuations)
            .check_dependence_order(options.check_dependence_order)
            .cache_capacity(0)
            .build();
        Self::verify_with(&verifier, original, fused)
    }

    fn from_verdict(verdict: Verdict) -> Result<Self, TransformError> {
        match verdict.outcome {
            Outcome::Equivalent { trees_checked } => Ok(VerifiedFusion {
                trees_checked,
                engine: verdict.engine,
            }),
            Outcome::NotEquivalent(ce) => Err(TransformError::NotEquivalent(ce)),
            other => Err(TransformError::Rejected(VerifyError::NoApplicableEngine {
                query: retreet_verify::QueryKind::Equivalence,
                skipped: vec![retreet_verify::EngineSkip {
                    engine: verdict.engine,
                    reason: format!("unexpected outcome {other:?} for an equivalence query"),
                }],
            })),
        }
    }

    /// How many (tree, valuation) models the verdict rests on.
    pub fn trees_checked(&self) -> usize {
        self.trees_checked
    }

    /// Which portfolio engine certified the fusion.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Runs the fused pair of visitors in a single post-order traversal —
    /// only reachable through a successful verification.
    pub fn run_fused2<T>(
        &self,
        tree: &mut TreeNode<T>,
        first: &dyn NodeVisitor<T>,
        second: &dyn NodeVisitor<T>,
    ) {
        let fused = visit::fuse2(first, second);
        visit::postorder_mut(tree, &fused);
    }

    /// Runs three fused visitors in a single post-order traversal.
    pub fn run_fused3<T>(
        &self,
        tree: &mut TreeNode<T>,
        first: &dyn NodeVisitor<T>,
        second: &dyn NodeVisitor<T>,
        third: &dyn NodeVisitor<T>,
    ) {
        let fused = visit::fuse3(first, second, third);
        visit::postorder_mut(tree, &fused);
    }
}

/// A certificate that a program's parallel composition is data-race-free.
#[derive(Debug, Clone)]
pub struct VerifiedParallelization {
    trees_checked: usize,
    configurations: usize,
    engine: Engine,
}

impl VerifiedParallelization {
    /// Checks through `verifier` that `program` (which should contain the
    /// parallel composition in `Main`) is data-race-free and returns the
    /// capability on success.
    pub fn verify_with(verifier: &Verifier, program: &Program) -> Result<Self, TransformError> {
        let verdict = verifier.verify(Query::DataRace(program))?;
        Self::from_verdict(verdict)
    }

    /// Deprecated shim over [`Self::verify_with`]: builds a throwaway
    /// single-query [`Verifier`] from the option struct.
    #[deprecated(
        since = "0.2.0",
        note = "build a shared retreet_verify::Verifier and use VerifiedParallelization::verify_with"
    )]
    pub fn verify(program: &Program, options: &RaceOptions) -> Result<Self, TransformError> {
        let verifier = Verifier::builder()
            .race_nodes(options.max_nodes)
            .valuations(options.valuations)
            .enumeration(options.enumeration.clone())
            .cache_capacity(0)
            .build();
        Self::verify_with(&verifier, program)
    }

    fn from_verdict(verdict: Verdict) -> Result<Self, TransformError> {
        match verdict.outcome {
            Outcome::RaceFree {
                trees_checked,
                configurations,
            } => Ok(VerifiedParallelization {
                trees_checked,
                configurations,
                engine: verdict.engine,
            }),
            Outcome::Race(witness) => Err(TransformError::DataRace(witness)),
            other => Err(TransformError::Rejected(VerifyError::NoApplicableEngine {
                query: retreet_verify::QueryKind::DataRace,
                skipped: vec![retreet_verify::EngineSkip {
                    engine: verdict.engine,
                    reason: format!("unexpected outcome {other:?} for a race query"),
                }],
            })),
        }
    }

    /// How many trees the verdict rests on.
    pub fn trees_checked(&self) -> usize {
        self.trees_checked
    }

    /// How many configurations were enumerated in total.
    pub fn configurations(&self) -> usize {
        self.configurations
    }

    /// Which portfolio engine certified the parallelization.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Runs a visitor over the tree with the rayon-parallel post-order
    /// schedule — only reachable after a successful race check.
    pub fn run_parallel<T: Send>(
        &self,
        tree: &mut TreeNode<T>,
        visitor: &impl NodeVisitor<T>,
        seq_threshold: usize,
    ) {
        visit::par_postorder_mut(tree, visitor, seq_threshold);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::complete_tree;
    use retreet_lang::corpus;

    fn verifier() -> Verifier {
        Verifier::builder()
            .equiv_nodes(4)
            .race_nodes(3)
            .valuations(2)
            .build()
    }

    #[test]
    fn valid_fusion_grants_a_capability() {
        let verifier = verifier();
        let fusion = VerifiedFusion::verify_with(
            &verifier,
            &corpus::size_counting_sequential(),
            &corpus::size_counting_fused(),
        )
        .expect("the Fig. 6a fusion is valid");
        assert!(fusion.trees_checked() > 0);
        assert_eq!(fusion.engine(), Engine::Trace);

        // Use the capability to actually fuse two runtime passes.
        #[derive(Clone, Default, PartialEq, Debug)]
        struct P {
            v: i64,
            a: i64,
            b: i64,
        }
        let pass_a = |p: &mut P, _: Option<&P>, _: Option<&P>| p.a = p.v + 1;
        let pass_b = |p: &mut P, _: Option<&P>, _: Option<&P>| p.b = p.a * 2;
        let mut tree = complete_tree(4, &|i| P {
            v: i as i64,
            a: 0,
            b: 0,
        });
        fusion.run_fused2(&mut tree, &pass_a, &pass_b);
        assert!(tree.preorder().iter().all(|p| p.b == (p.v + 1) * 2));
    }

    #[test]
    fn invalid_fusion_is_refused() {
        let result = VerifiedFusion::verify_with(
            &verifier(),
            &corpus::size_counting_sequential(),
            &corpus::size_counting_fused_invalid(),
        );
        assert!(matches!(result, Err(TransformError::NotEquivalent(_))));
    }

    #[test]
    fn race_free_parallelization_grants_a_capability() {
        let verifier = verifier();
        let capability =
            VerifiedParallelization::verify_with(&verifier, &corpus::size_counting_parallel())
                .expect("Odd ‖ Even is race-free");
        assert!(capability.configurations() > 0);

        let mut tree = complete_tree(8, &|i| i as i64);
        let visitor = |v: &mut i64, _: Option<&i64>, _: Option<&i64>| *v += 1;
        capability.run_parallel(&mut tree, &visitor, 16);
        assert_eq!(tree.value, 1);
    }

    #[test]
    fn racy_parallelization_is_refused_with_a_witness() {
        let result =
            VerifiedParallelization::verify_with(&verifier(), &corpus::cycletree_parallel());
        match result {
            Err(TransformError::DataRace(witness)) => assert_eq!(witness.field, "num"),
            other => panic!("expected a data-race refusal, got {other:?}"),
        }
    }

    #[test]
    fn invalid_programs_are_rejected_up_front() {
        let verifier = verifier();
        let no_main = retreet_lang::parse_program("fn F(n) { return 0; }").unwrap();
        assert!(matches!(
            VerifiedParallelization::verify_with(&verifier, &no_main),
            Err(TransformError::Rejected(VerifyError::InvalidProgram { .. }))
        ));
        assert!(matches!(
            VerifiedFusion::verify_with(&verifier, &no_main, &no_main),
            Err(TransformError::Rejected(VerifyError::InvalidProgram { .. }))
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_option_struct_shims_still_work() {
        let fusion = VerifiedFusion::verify(
            &corpus::size_counting_sequential(),
            &corpus::size_counting_fused(),
            &EquivOptions::builder().max_nodes(4).valuations(2).build(),
        );
        assert!(fusion.is_ok());
        let parallelization = VerifiedParallelization::verify(
            &corpus::size_counting_parallel(),
            &RaceOptions::builder().max_nodes(3).valuations(1).build(),
        );
        assert!(parallelization.is_ok());
    }

    #[test]
    fn capability_reuses_the_verifier_cache() {
        let verifier = verifier();
        let program = corpus::size_counting_parallel();
        VerifiedParallelization::verify_with(&verifier, &program).unwrap();
        VerifiedParallelization::verify_with(&verifier, &program).unwrap();
        assert_eq!(verifier.cache_stats().hits, 1);
    }
}
