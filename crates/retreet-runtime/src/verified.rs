//! Transformation capabilities: the runtime side of "certify, then run".
//!
//! This module is a thin wrapper over the `retreet-transform` layer.  A
//! downstream user obtains a [`CertifiedTransform`] — either by certifying
//! their own candidate ([`VerifiedFusion::verify_with`] /
//! [`VerifiedParallelization::verify_with`]) or by letting the transform
//! layer synthesize one (`retreet_transform::fuse_main_passes`,
//! `retreet_transform::synthesize_parallel_main`) — and exchanges it here
//! for a capability value that unlocks the matching execution schedule from
//! [`crate::visit`]: [`VerifiedFusion::run_fused`] runs any number of
//! passes in one traversal, [`VerifiedParallelization::run_parallel`] runs
//! the rayon-parallel schedule.  The certificate (with engine provenance
//! and soundness) rides along on the capability.
//!
//! Capabilities are only constructible from a certificate of the right
//! kind, which keeps the paper's story intact: the verifier answers the
//! legality question, the transform layer produces the certified program,
//! and the execution substrate applies the schedule.

use retreet_lang::ast::Program;
use retreet_transform::{
    certify_fusion, certify_parallelization, Certificate, CertificateKind, CertifiedTransform,
};
use retreet_verify::{Engine, Outcome, Verifier};

pub use retreet_transform::TransformError;

use crate::tree::TreeNode;
use crate::visit::{self, NodeVisitor};

/// A capability certifying that a fused schedule may replace the original
/// sequence of traversals, carrying the equivalence certificate.
#[derive(Debug, Clone)]
pub struct VerifiedFusion {
    certificate: Certificate,
}

impl VerifiedFusion {
    /// Checks through `verifier` that `fused` is equivalent to `original`
    /// and returns the capability on success.  Repeated calls with the same
    /// programs and a shared verifier are answered from its verdict cache.
    pub fn verify_with(
        verifier: &Verifier,
        original: &Program,
        fused: &Program,
    ) -> Result<Self, TransformError> {
        certify_fusion(verifier, original, fused).and_then(|t| Self::from_certified(&t))
    }

    /// Exchanges a certified transform for the fusion capability.  Refuses
    /// certificates of the wrong kind (a race-freedom certificate does not
    /// license fusion).
    pub fn from_certified(transform: &CertifiedTransform) -> Result<Self, TransformError> {
        match transform.certificate.kind {
            CertificateKind::Equivalence => Ok(VerifiedFusion {
                certificate: transform.certificate.clone(),
            }),
            other => Err(TransformError::UnsupportedShape(format!(
                "a {other} certificate does not license fusion"
            ))),
        }
    }

    /// The equivalence certificate backing this capability.
    pub fn certificate(&self) -> &Certificate {
        &self.certificate
    }

    /// How many (tree, valuation) models the verdict rests on.
    pub fn trees_checked(&self) -> usize {
        self.certificate.trees_checked()
    }

    /// Which portfolio engine certified the fusion.
    pub fn engine(&self) -> Engine {
        self.certificate.engine()
    }

    /// Runs any number of fused passes in a single post-order traversal —
    /// the arity-generic replacement for the old `run_fused2`/`run_fused3`
    /// pair, only reachable through a successful certification.
    pub fn run_fused<T>(&self, tree: &mut TreeNode<T>, passes: &[&dyn NodeVisitor<T>]) {
        let fused = visit::fuse_all(passes);
        visit::postorder_mut(tree, &fused);
    }
}

/// A capability certifying that a program's parallel composition is
/// data-race-free, carrying the race-freedom certificate.
#[derive(Debug, Clone)]
pub struct VerifiedParallelization {
    certificate: Certificate,
}

impl VerifiedParallelization {
    /// Checks through `verifier` that `program` (which should contain the
    /// parallel composition in `Main`) is data-race-free and returns the
    /// capability on success.
    pub fn verify_with(verifier: &Verifier, program: &Program) -> Result<Self, TransformError> {
        certify_parallelization(verifier, program, program).and_then(|t| Self::from_certified(&t))
    }

    /// Exchanges a certified transform for the parallelization capability.
    /// Refuses certificates of the wrong kind.
    pub fn from_certified(transform: &CertifiedTransform) -> Result<Self, TransformError> {
        match transform.certificate.kind {
            CertificateKind::RaceFreedom => Ok(VerifiedParallelization {
                certificate: transform.certificate.clone(),
            }),
            other => Err(TransformError::UnsupportedShape(format!(
                "a {other} certificate does not license parallelization"
            ))),
        }
    }

    /// The race-freedom certificate backing this capability.
    pub fn certificate(&self) -> &Certificate {
        &self.certificate
    }

    /// How many trees the verdict rests on.
    pub fn trees_checked(&self) -> usize {
        self.certificate.trees_checked()
    }

    /// How many configurations were enumerated in total.
    pub fn configurations(&self) -> usize {
        match &self.certificate.verdict.outcome {
            Outcome::RaceFree { configurations, .. } => *configurations,
            _ => 0,
        }
    }

    /// Which portfolio engine certified the parallelization.
    pub fn engine(&self) -> Engine {
        self.certificate.engine()
    }

    /// Runs a visitor over the tree with the rayon-parallel post-order
    /// schedule — only reachable after a successful race check.
    pub fn run_parallel<T: Send>(
        &self,
        tree: &mut TreeNode<T>,
        visitor: &impl NodeVisitor<T>,
        seq_threshold: usize,
    ) {
        visit::par_postorder_mut(tree, visitor, seq_threshold);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::complete_tree;
    use retreet_lang::corpus;
    use retreet_verify::VerifyError;

    fn verifier() -> Verifier {
        Verifier::builder()
            .equiv_nodes(4)
            .race_nodes(3)
            .valuations(2)
            .build()
    }

    #[test]
    fn valid_fusion_grants_a_capability() {
        let verifier = verifier();
        let fusion = VerifiedFusion::verify_with(
            &verifier,
            &corpus::size_counting_sequential(),
            &corpus::size_counting_fused(),
        )
        .expect("the Fig. 6a fusion is valid");
        // The automata tier establishes the fusion correspondence without
        // enumerating models, so the certificate is unbounded and rests on
        // zero bounded models.
        assert_eq!(fusion.trees_checked(), 0);
        assert_eq!(fusion.engine(), Engine::Automata);

        // Use the capability to actually fuse two runtime passes.
        #[derive(Clone, Default, PartialEq, Debug)]
        struct P {
            v: i64,
            a: i64,
            b: i64,
        }
        let pass_a = |p: &mut P, _: Option<&P>, _: Option<&P>| p.a = p.v + 1;
        let pass_b = |p: &mut P, _: Option<&P>, _: Option<&P>| p.b = p.a * 2;
        let mut tree = complete_tree(4, &|i| P {
            v: i as i64,
            a: 0,
            b: 0,
        });
        fusion.run_fused(&mut tree, &[&pass_a, &pass_b]);
        assert!(tree.preorder().iter().all(|p| p.b == (p.v + 1) * 2));
    }

    #[test]
    fn synthesized_transforms_grant_capabilities_too() {
        let verifier = verifier();
        let certified =
            retreet_transform::fuse_main_passes(&verifier, &corpus::css_minify_original())
                .expect("the CSS fusion is synthesizable");
        let fusion = VerifiedFusion::from_certified(&certified).expect("equivalence certificate");

        // Three passes, one traversal.
        let inc = |v: &mut i64, _: Option<&i64>, _: Option<&i64>| *v += 1;
        let dbl = |v: &mut i64, _: Option<&i64>, _: Option<&i64>| *v *= 2;
        let dec = |v: &mut i64, _: Option<&i64>, _: Option<&i64>| *v -= 1;
        let mut tree = complete_tree(4, &|_| 1i64);
        fusion.run_fused(&mut tree, &[&inc, &dbl, &dec]);
        assert!(tree.preorder().iter().all(|&&v| v == 3));

        // The wrong certificate kind is refused on both sides.
        assert!(VerifiedParallelization::from_certified(&certified).is_err());
        let parallel = retreet_transform::synthesize_parallel_main(
            &verifier,
            &corpus::size_counting_sequential(),
        )
        .expect("Odd ‖ Even synthesizes");
        assert!(VerifiedFusion::from_certified(&parallel).is_err());
        assert!(VerifiedParallelization::from_certified(&parallel).is_ok());
    }

    #[test]
    fn invalid_fusion_is_refused() {
        let result = VerifiedFusion::verify_with(
            &verifier(),
            &corpus::size_counting_sequential(),
            &corpus::size_counting_fused_invalid(),
        );
        assert!(matches!(result, Err(TransformError::NotEquivalent(_))));
    }

    #[test]
    fn race_free_parallelization_grants_a_capability() {
        let verifier = verifier();
        let capability =
            VerifiedParallelization::verify_with(&verifier, &corpus::size_counting_parallel())
                .expect("Odd ‖ Even is race-free");
        // Certified structurally by the automata tier: no configurations
        // were enumerated to establish race freedom.
        assert_eq!(capability.configurations(), 0);
        assert_eq!(capability.engine(), Engine::Automata);

        let mut tree = complete_tree(8, &|i| i as i64);
        let visitor = |v: &mut i64, _: Option<&i64>, _: Option<&i64>| *v += 1;
        capability.run_parallel(&mut tree, &visitor, 16);
        assert_eq!(tree.value, 1);
    }

    #[test]
    fn racy_parallelization_is_refused_with_a_witness() {
        let result =
            VerifiedParallelization::verify_with(&verifier(), &corpus::cycletree_parallel());
        match result {
            Err(TransformError::DataRace(witness)) => assert_eq!(witness.field, "num"),
            other => panic!("expected a data-race refusal, got {other:?}"),
        }
    }

    #[test]
    fn invalid_programs_are_rejected_up_front() {
        let verifier = verifier();
        let no_main = retreet_lang::parse_program("fn F(n) { return 0; }").unwrap();
        assert!(matches!(
            VerifiedParallelization::verify_with(&verifier, &no_main),
            Err(TransformError::Rejected(VerifyError::InvalidProgram { .. }))
        ));
        assert!(matches!(
            VerifiedFusion::verify_with(&verifier, &no_main, &no_main),
            Err(TransformError::Rejected(VerifyError::InvalidProgram { .. }))
        ));
    }

    #[test]
    fn capability_reuses_the_verifier_cache() {
        let verifier = verifier();
        let program = corpus::size_counting_parallel();
        VerifiedParallelization::verify_with(&verifier, &program).unwrap();
        VerifiedParallelization::verify_with(&verifier, &program).unwrap();
        assert_eq!(verifier.cache_stats().hits, 1);
    }
}
