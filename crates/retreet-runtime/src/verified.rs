//! Analysis-gated transformations: the runtime side of "check, then
//! transform".
//!
//! A downstream user describes their traversals as Retreet programs (the
//! original composition and the transformed one), asks the analysis for a
//! verdict, and only receives a capability value — [`VerifiedFusion`] or
//! [`VerifiedParallelization`] — when the transformation is justified.  The
//! capability then unlocks the corresponding execution schedule from
//! [`crate::visit`].  This mirrors how the paper envisions the framework
//! being used by compilers: Retreet answers the legality question, the
//! execution substrate applies the schedule.

use retreet_analysis::equiv::{check_equivalence, EquivOptions, EquivVerdict};
use retreet_analysis::race::{check_data_race, RaceOptions, RaceVerdict};
use retreet_lang::ast::Program;
use retreet_lang::validate::validate;

use crate::tree::TreeNode;
use crate::visit::{self, NodeVisitor};

/// Why a transformation was refused.
#[derive(Debug, Clone)]
pub enum TransformError {
    /// One of the programs is not a well-formed Retreet program.
    InvalidProgram(String),
    /// The equivalence check found a counterexample (fusion refused).
    NotEquivalent(String),
    /// The race check found a potential data race (parallelization refused).
    DataRace(String),
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::InvalidProgram(msg) => write!(f, "invalid Retreet program: {msg}"),
            TransformError::NotEquivalent(msg) => {
                write!(f, "the transformed program is not equivalent: {msg}")
            }
            TransformError::DataRace(msg) => write!(f, "the parallelization has a data race: {msg}"),
        }
    }
}

impl std::error::Error for TransformError {}

/// A certificate that a fused schedule may replace the original sequence of
/// traversals.
#[derive(Debug, Clone)]
pub struct VerifiedFusion {
    trees_checked: usize,
}

impl VerifiedFusion {
    /// Checks (with `retreet-analysis`) that `fused` is equivalent to
    /// `original` and returns the capability on success.
    pub fn verify(
        original: &Program,
        fused: &Program,
        options: &EquivOptions,
    ) -> Result<Self, TransformError> {
        for (name, program) in [("original", original), ("fused", fused)] {
            let errors = validate(program);
            if !errors.is_empty() {
                return Err(TransformError::InvalidProgram(format!(
                    "{name}: {}",
                    errors[0]
                )));
            }
        }
        match check_equivalence(original, fused, options) {
            EquivVerdict::Equivalent { trees_checked } => Ok(VerifiedFusion { trees_checked }),
            EquivVerdict::CounterExample(ce) => {
                Err(TransformError::NotEquivalent(format!("{:?}", ce.disagreement)))
            }
        }
    }

    /// How many (tree, valuation) models the verdict rests on.
    pub fn trees_checked(&self) -> usize {
        self.trees_checked
    }

    /// Runs the fused pair of visitors in a single post-order traversal —
    /// only reachable through a successful [`VerifiedFusion::verify`].
    pub fn run_fused2<T>(
        &self,
        tree: &mut TreeNode<T>,
        first: &dyn NodeVisitor<T>,
        second: &dyn NodeVisitor<T>,
    ) {
        let fused = visit::fuse2(first, second);
        visit::postorder_mut(tree, &fused);
    }

    /// Runs three fused visitors in a single post-order traversal.
    pub fn run_fused3<T>(
        &self,
        tree: &mut TreeNode<T>,
        first: &dyn NodeVisitor<T>,
        second: &dyn NodeVisitor<T>,
        third: &dyn NodeVisitor<T>,
    ) {
        let fused = visit::fuse3(first, second, third);
        visit::postorder_mut(tree, &fused);
    }
}

/// A certificate that a program's parallel composition is data-race-free.
#[derive(Debug, Clone)]
pub struct VerifiedParallelization {
    trees_checked: usize,
    configurations: usize,
}

impl VerifiedParallelization {
    /// Checks data-race-freedom of `program` (which should contain the
    /// parallel composition in `Main`) and returns the capability on success.
    pub fn verify(program: &Program, options: &RaceOptions) -> Result<Self, TransformError> {
        let errors = validate(program);
        if !errors.is_empty() {
            return Err(TransformError::InvalidProgram(errors[0].to_string()));
        }
        match check_data_race(program, options) {
            RaceVerdict::RaceFree {
                trees_checked,
                configurations,
            } => Ok(VerifiedParallelization {
                trees_checked,
                configurations,
            }),
            RaceVerdict::Race(witness) => Err(TransformError::DataRace(format!(
                "{} and {} conflict on {}.{}",
                witness.first, witness.second, witness.node, witness.field
            ))),
        }
    }

    /// How many trees the verdict rests on.
    pub fn trees_checked(&self) -> usize {
        self.trees_checked
    }

    /// How many configurations were enumerated in total.
    pub fn configurations(&self) -> usize {
        self.configurations
    }

    /// Runs a visitor over the tree with the rayon-parallel post-order
    /// schedule — only reachable after a successful race check.
    pub fn run_parallel<T: Send>(
        &self,
        tree: &mut TreeNode<T>,
        visitor: &(impl NodeVisitor<T> + Sync),
        seq_threshold: usize,
    ) {
        visit::par_postorder_mut(tree, visitor, seq_threshold);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::complete_tree;
    use retreet_lang::corpus;

    fn equiv_options() -> EquivOptions {
        EquivOptions {
            max_nodes: 4,
            valuations: 2,
            check_dependence_order: true,
        }
    }

    fn race_options() -> RaceOptions {
        RaceOptions {
            max_nodes: 3,
            valuations: 1,
            ..RaceOptions::default()
        }
    }

    #[test]
    fn valid_fusion_grants_a_capability() {
        let fusion = VerifiedFusion::verify(
            &corpus::size_counting_sequential(),
            &corpus::size_counting_fused(),
            &equiv_options(),
        )
        .expect("the Fig. 6a fusion is valid");
        assert!(fusion.trees_checked() > 0);

        // Use the capability to actually fuse two runtime passes.
        #[derive(Clone, Default, PartialEq, Debug)]
        struct P {
            v: i64,
            a: i64,
            b: i64,
        }
        let pass_a = |p: &mut P, _: Option<&P>, _: Option<&P>| p.a = p.v + 1;
        let pass_b = |p: &mut P, _: Option<&P>, _: Option<&P>| p.b = p.a * 2;
        let mut tree = complete_tree(4, &|i| P { v: i as i64, a: 0, b: 0 });
        fusion.run_fused2(&mut tree, &pass_a, &pass_b);
        assert!(tree.preorder().iter().all(|p| p.b == (p.v + 1) * 2));
    }

    #[test]
    fn invalid_fusion_is_refused() {
        let result = VerifiedFusion::verify(
            &corpus::size_counting_sequential(),
            &corpus::size_counting_fused_invalid(),
            &equiv_options(),
        );
        assert!(matches!(result, Err(TransformError::NotEquivalent(_))));
    }

    #[test]
    fn race_free_parallelization_grants_a_capability() {
        let capability =
            VerifiedParallelization::verify(&corpus::size_counting_parallel(), &race_options())
                .expect("Odd ‖ Even is race-free");
        assert!(capability.configurations() > 0);

        let mut tree = complete_tree(8, &|i| i as i64);
        let visitor = |v: &mut i64, _: Option<&i64>, _: Option<&i64>| *v += 1;
        capability.run_parallel(&mut tree, &visitor, 16);
        assert_eq!(tree.value, 1);
    }

    #[test]
    fn racy_parallelization_is_refused() {
        let result =
            VerifiedParallelization::verify(&corpus::cycletree_parallel(), &race_options());
        match result {
            Err(TransformError::DataRace(message)) => assert!(message.contains("num")),
            other => panic!("expected a data-race refusal, got {other:?}"),
        }
    }

    #[test]
    fn invalid_programs_are_rejected_up_front() {
        let no_main = retreet_lang::parse_program("fn F(n) { return 0; }").unwrap();
        assert!(matches!(
            VerifiedParallelization::verify(&no_main, &race_options()),
            Err(TransformError::InvalidProgram(_))
        ));
        assert!(matches!(
            VerifiedFusion::verify(&no_main, &no_main, &equiv_options()),
            Err(TransformError::InvalidProgram(_))
        ));
    }
}
