//! Program execution with tier selection: compiled bytecode first, the
//! reference interpreter as fallback.
//!
//! A [`ProgramExecutor`] is built once per program and reused across trees:
//! it holds the compiled [`CompiledProgram`] (when compilation succeeded), a
//! pooled [`Vm`] behind a mutex, and the interpreter's prebuilt
//! [`BlockTable`] for the fallback path.  Construction through
//! [`ProgramExecutor::with_verifier`] additionally runs the certified
//! iterative-lowering pipeline of `retreet-codegen`, so self-recursive
//! traversals execute as explicit-worklist loops — but only when the
//! verifier certified the lowering equivalent to the recursion.
//!
//! Runtime errors (nil dereference, depth exhaustion) are *program* errors
//! the interpreter would raise identically, so they are reported, not used
//! as a reason to fall back.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use retreet_analysis::interp::{self, InterpError};
use retreet_analysis::vtree::ValueTree;
use retreet_codegen::{
    compile, compile_with_lowering, CompiledProgram, LoweringCertificate, Vm, VmError,
};
use retreet_lang::ast::Program;
use retreet_lang::blocks::BlockTable;
use retreet_transform::CertifiedTransform;
use retreet_verify::Verifier;

/// Which execution tier ran (or would run) a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecTier {
    /// Compiled bytecode on the VM.
    Vm,
    /// The reference tree-walking interpreter.
    Interpreter,
}

impl fmt::Display for ExecTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecTier::Vm => write!(f, "vm"),
            ExecTier::Interpreter => write!(f, "interpreter"),
        }
    }
}

/// The result of one run: `Main`'s values, the post-run tree, and which
/// tier produced them.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Values returned by `Main`.
    pub returns: Vec<i64>,
    /// The tree after all field writes.
    pub tree: ValueTree,
    /// The tier that executed the program.
    pub tier: ExecTier,
}

/// A runtime failure, from whichever tier ran.
#[derive(Debug, Clone)]
pub enum ExecError {
    /// The VM failed.
    Vm(VmError),
    /// The interpreter failed.
    Interp(InterpError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Vm(err) => write!(f, "vm: {err}"),
            ExecError::Interp(err) => write!(f, "interpreter: {err}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A reusable executor for one program.
#[derive(Debug)]
pub struct ProgramExecutor {
    table: BlockTable,
    compiled: Option<CompiledProgram>,
    vm: Mutex<Vm>,
    vm_runs: AtomicU64,
    interp_runs: AtomicU64,
}

impl ProgramExecutor {
    /// Builds an executor with plain compilation (no iterative lowering).
    /// A program the bytecode compiler rejects — e.g. a call to an unknown
    /// function, which the interpreter only faults on lazily — still gets
    /// an executor; it just runs on the interpreter tier.
    pub fn new(program: &Program) -> Self {
        Self::build(program, compile(program).ok())
    }

    /// Builds an executor whose compilation includes the certified
    /// iterative-lowering pass: lowerable traversals are submitted to
    /// `verifier` and run as worklist loops when (and only when) the
    /// equivalence verdict is positive.
    pub fn with_verifier(verifier: &Verifier, program: &Program) -> Self {
        Self::build(program, compile_with_lowering(verifier, program).ok())
    }

    fn build(program: &Program, compiled: Option<CompiledProgram>) -> Self {
        ProgramExecutor {
            table: BlockTable::build(program),
            compiled,
            vm: Mutex::new(Vm::new()),
            vm_runs: AtomicU64::new(0),
            interp_runs: AtomicU64::new(0),
        }
    }

    /// The tier [`Self::run`] will use.
    pub fn tier(&self) -> ExecTier {
        if self.compiled.is_some() {
            ExecTier::Vm
        } else {
            ExecTier::Interpreter
        }
    }

    /// The equivalence certificates of the iterative lowerings baked into
    /// the compiled program (empty without [`Self::with_verifier`], or when
    /// nothing was lowerable).
    pub fn lowerings(&self) -> &[LoweringCertificate] {
        self.compiled
            .as_ref()
            .map(|c| c.lowerings.as_slice())
            .unwrap_or(&[])
    }

    /// Runs the program on `tree`, preferring the compiled tier.
    pub fn run(&self, tree: &ValueTree) -> Result<ExecOutcome, ExecError> {
        match &self.compiled {
            Some(compiled) => {
                let result = self
                    .vm
                    .lock()
                    .expect("vm lock")
                    .run(compiled, tree)
                    .map_err(ExecError::Vm)?;
                self.vm_runs.fetch_add(1, Ordering::Relaxed);
                Ok(ExecOutcome {
                    returns: result.returns,
                    tree: result.tree,
                    tier: ExecTier::Vm,
                })
            }
            None => self.run_interpreted(tree),
        }
    }

    /// Runs the program on the interpreter tier unconditionally (the
    /// differential baseline).
    pub fn run_interpreted(&self, tree: &ValueTree) -> Result<ExecOutcome, ExecError> {
        let result = interp::run_with_table(&self.table, tree).map_err(ExecError::Interp)?;
        self.interp_runs.fetch_add(1, Ordering::Relaxed);
        Ok(ExecOutcome {
            returns: result.returns,
            tree: result.tree,
            tier: ExecTier::Interpreter,
        })
    }

    /// How many runs the VM tier has served.
    pub fn vm_runs(&self) -> u64 {
        self.vm_runs.load(Ordering::Relaxed)
    }

    /// How many runs the interpreter tier has served.
    pub fn interp_runs(&self) -> u64 {
        self.interp_runs.load(Ordering::Relaxed)
    }
}

/// One-shot convenience: compile (without lowering) and run `program` on
/// `tree`, preferring the compiled tier.
pub fn run_compiled(program: &Program, tree: &ValueTree) -> Result<ExecOutcome, ExecError> {
    ProgramExecutor::new(program).run(tree)
}

/// One-shot convenience for a certified transform: compile the transformed
/// program — with certified lowering — and run it.
pub fn run_compiled_certified(
    verifier: &Verifier,
    transform: &CertifiedTransform,
    tree: &ValueTree,
) -> Result<ExecOutcome, ExecError> {
    ProgramExecutor::with_verifier(verifier, &transform.transformed).run(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;

    #[test]
    fn executor_prefers_vm_and_matches_interpreter() {
        let program = corpus::size_counting_sequential();
        let executor = ProgramExecutor::new(&program);
        assert_eq!(executor.tier(), ExecTier::Vm);
        let mut tree = ValueTree::complete(8, &[], |_, _| 0);
        tree.fill_fields(&[], 3);
        let fast = executor.run(&tree).expect("vm run");
        let slow = executor.run_interpreted(&tree).expect("interp run");
        assert_eq!(fast.tier, ExecTier::Vm);
        assert_eq!(slow.tier, ExecTier::Interpreter);
        assert_eq!(fast.returns, slow.returns);
        assert_eq!(executor.vm_runs(), 1);
        assert_eq!(executor.interp_runs(), 1);
    }

    #[test]
    fn uncompilable_program_falls_back_to_interpreter() {
        let program = retreet_lang::parser::parse_program("fn Main(n) { x = Ghost(n); return x; }")
            .expect("parse");
        let executor = ProgramExecutor::new(&program);
        assert_eq!(executor.tier(), ExecTier::Interpreter);
        let result = executor.run(&ValueTree::single());
        assert!(
            matches!(
                result,
                Err(ExecError::Interp(InterpError::UnknownFunction(_)))
            ),
            "interpreter surfaces the unknown callee at run time"
        );
    }

    #[test]
    fn with_verifier_carries_lowering_certificates() {
        let verifier = Verifier::builder().build();
        let program = corpus::tree_mutation_original();
        let executor = ProgramExecutor::with_verifier(&verifier, &program);
        assert!(!executor.lowerings().is_empty());
        let mut tree = ValueTree::complete(5, &["v"], |_, _| 0);
        tree.fill_fields(&["v"], 9);
        let fast = executor.run(&tree).expect("vm");
        let slow = executor.run_interpreted(&tree).expect("interp");
        assert_eq!(fast.returns, slow.returns);
        assert!(retreet_codegen::trees_agree(&fast.tree, &slow.tree));
    }
}
