//! The VM-backed side of the schedule autotuner: wire
//! `retreet_transform::tune`'s search to the real execution tier.
//!
//! `retreet-transform` cannot name the VM (the codegen crate depends on it
//! for [`CertifiedTransform`](retreet_transform::CertifiedTransform)), so
//! its [`tune`] entry point takes a cost
//! closure.  [`tune_and_compile`] supplies the canonical one:
//!
//! * every candidate is compiled **once** through
//!   [`ProgramExecutor::with_verifier`], so certified iterative lowering
//!   applies exactly as it would in production;
//! * a candidate that would fall back to the interpreter tier is *not
//!   measured* — interpreter timings would poison the comparison, so the
//!   cost model reports the tier refusal and the candidate cannot win;
//! * before any timing, the candidate runs once against the original
//!   program's interpreter reference on the measurement tree — returns and
//!   post-run trees must agree (a drift here would mean a certified
//!   candidate disagrees with its certificate, and aborts the measurement
//!   rather than timing a wrong program);
//! * the cost is the best of `batches` batches of `per_batch` VM runs on
//!   the seeded measurement tree, per [`TuneOptions`].
//!
//! The winner comes back compiled: [`TunedProgram`] pairs the
//! [`TunedSchedule`] with a ready [`ProgramExecutor`] for the winning
//! program.

use std::time::Instant;

use retreet_analysis::vtree::ValueTree;
use retreet_codegen::{program_fields, trees_agree};
use retreet_lang::ast::Program;
use retreet_transform::tune::{tune, TuneOptions, TunedSchedule};
use retreet_transform::TransformError;
use retreet_verify::Verifier;

use crate::exec::{ExecTier, ProgramExecutor};

/// A tuned schedule together with the compiled executor for its winner.
#[derive(Debug)]
pub struct TunedProgram {
    /// The search result: winner, baselines, full candidate table.
    pub schedule: TunedSchedule,
    /// An executor for the winning program, compiled with certified
    /// lowering — ready to run.
    pub executor: ProgramExecutor,
}

/// Builds the measurement tree the cost model times candidates on: a
/// complete tree of `options.tree_height` whose fields are the original
/// program's field set, seeded from `options.seed`.  The tree's arity is
/// `options.tree_arity` clamped up to the program's declared arity, so a
/// k-ary program is always measured with all its child axes populated.
fn measurement_tree(program: &Program, options: &TuneOptions) -> ValueTree {
    let fields = program_fields(program);
    let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
    let arity = options.tree_arity.max(program.arity).max(2);
    let mut tree = ValueTree::complete_kary(arity, options.tree_height, &field_refs, |_, _| 0);
    tree.fill_fields(&field_refs, options.seed);
    tree
}

/// Times `executor` on `tree`: best of `batches` batches of `per_batch`
/// runs, in seconds per run.
fn best_of_vm(
    executor: &ProgramExecutor,
    tree: &ValueTree,
    batches: usize,
    per_batch: usize,
) -> Result<f64, String> {
    let batches = batches.max(1);
    let per_batch = per_batch.max(1);
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..per_batch {
            executor.run(tree).map_err(|err| err.to_string())?;
        }
        let per_run = start.elapsed().as_secs_f64() / per_batch as f64;
        if per_run < best {
            best = per_run;
        }
    }
    Ok(best)
}

/// Runs the schedule autotuner for `program` with the VM-backed cost model
/// and compiles the winner.
///
/// See the [module docs](self) for the cost model's tier and drift gates,
/// and [`mod@retreet_transform::tune`] for the search space and the
/// never-slower-than-baseline guarantee.
///
/// Errors: everything [`tune`] can refuse,
/// plus [`TransformError::UnsupportedShape`] when the original program
/// cannot run on the interpreter (no reference to measure drift against).
pub fn tune_and_compile(
    verifier: &Verifier,
    program: &Program,
    options: &TuneOptions,
) -> Result<TunedProgram, TransformError> {
    let tree = measurement_tree(program, options);

    // The drift reference: the original program through the reference
    // interpreter, computed once.
    let reference = ProgramExecutor::new(program)
        .run_interpreted(&tree)
        .map_err(|err| {
            TransformError::UnsupportedShape(format!(
                "the original program cannot run on the measurement tree: {err}"
            ))
        })?;

    let mut cost = |candidate: &Program| -> Result<f64, String> {
        let executor = ProgramExecutor::with_verifier(verifier, candidate);
        if executor.tier() != ExecTier::Vm {
            return Err(String::from(
                "candidate does not compile to the VM tier; refusing to time the interpreter",
            ));
        }
        let probe = executor.run(&tree).map_err(|err| err.to_string())?;
        if probe.returns != reference.returns {
            return Err(format!(
                "drift: candidate returned {:?}, original returned {:?}",
                probe.returns, reference.returns
            ));
        }
        if !trees_agree(&probe.tree, &reference.tree) {
            return Err(String::from(
                "drift: candidate's post-run tree disagrees with the original",
            ));
        }
        best_of_vm(&executor, &tree, options.batches, options.per_batch)
    };

    let schedule = tune(verifier, program, options, &mut cost)?;
    let executor = ProgramExecutor::with_verifier(verifier, &schedule.winner.transformed);
    Ok(TunedProgram { schedule, executor })
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;
    use retreet_transform::CandidateStatus;

    fn verifier() -> Verifier {
        Verifier::builder()
            .equiv_nodes(4)
            .race_nodes(3)
            .valuations(1)
            .build()
    }

    #[test]
    fn tunes_size_counting_end_to_end_on_the_vm() {
        let verifier = verifier();
        let program = corpus::size_counting_sequential();
        let tuned = tune_and_compile(&verifier, &program, &TuneOptions::quick())
            .expect("E1 tunes end to end");
        // The winner compiled, is certified, and respects the baseline bound.
        assert_eq!(tuned.executor.tier(), ExecTier::Vm);
        assert!(tuned.schedule.winner_seconds <= tuned.schedule.baseline_original_seconds);
        assert!(tuned.schedule.speedup() >= 1.0);
        assert!(tuned.schedule.certified_count() >= 1);
        // Every certified candidate either carries a VM cost or a typed
        // refusal-to-measure; no silent drops.
        for candidate in &tuned.schedule.candidates {
            if let CandidateStatus::Certified { cost, .. } = &candidate.status {
                match cost {
                    Ok(seconds) => assert!(*seconds > 0.0),
                    Err(reason) => assert!(!reason.is_empty()),
                }
            }
        }
        // The winner actually runs and agrees with the original.
        let tree = measurement_tree(&program, &TuneOptions::quick());
        let fast = tuned.executor.run(&tree).expect("winner runs");
        let slow = ProgramExecutor::new(&program)
            .run_interpreted(&tree)
            .expect("reference runs");
        assert_eq!(fast.returns, slow.returns);
        assert!(trees_agree(&fast.tree, &slow.tree));
    }

    #[test]
    fn cycletree_refusals_survive_into_the_table() {
        let verifier = verifier();
        let tuned = tune_and_compile(
            &verifier,
            &corpus::cycletree_original(),
            &TuneOptions::quick(),
        )
        .expect("E4 tunes");
        // The racy parallel-passes schedule is in the table as a refusal.
        assert!(tuned.schedule.refused_count() >= 1);
        assert!(tuned.schedule.winner.certificate.verdict.is_equivalent());
    }
}
