//! Traversal schedules: sequential, fused, and rayon-parallel execution of
//! per-node visitors.
//!
//! The paper's motivation is that composing traversals (fusion) and running
//! them on disjoint subtrees (parallelization) are profitable *when legal*.
//! This module provides the execution side of that story:
//!
//! * [`postorder_mut`] / [`preorder_mut`] — the sequential schedules,
//! * [`fuse_all`] — the arity-generic fusion combinator that runs any
//!   number of visitors at each node of a single traversal (one pass over
//!   the tree instead of several),
//! * [`par_postorder_mut`] / [`par_preorder_mut`] — parallel schedules that
//!   recurse into the two subtrees with `rayon::join`, falling back to the
//!   sequential schedule below a size threshold.
//!
//! The legality question — may these schedules replace the original program?
//! — is answered by `retreet-analysis`; the [`crate::verified`] module ties
//! the two together.

use rayon::join;

use crate::tree::TreeNode;

/// A per-node visitor with mutable access to the payload of the current node
/// and shared access to its children's payloads (the shape the paper's
/// post-order case studies need: `ComputeRouting`, `IncrmLeft`, …).
pub trait NodeVisitor<T>: Sync {
    /// Visit one node.  `left`/`right` are the payloads of the children
    /// (already visited for post-order schedules).
    fn visit(&self, value: &mut T, left: Option<&T>, right: Option<&T>);
}

impl<T, F> NodeVisitor<T> for F
where
    F: Fn(&mut T, Option<&T>, Option<&T>) + Sync,
{
    fn visit(&self, value: &mut T, left: Option<&T>, right: Option<&T>) {
        self(value, left, right)
    }
}

/// Post-order sequential traversal: children first, then the node.
pub fn postorder_mut<T>(node: &mut TreeNode<T>, visitor: &impl NodeVisitor<T>) {
    if let Some(left) = node.left.as_deref_mut() {
        postorder_mut(left, visitor);
    }
    if let Some(right) = node.right.as_deref_mut() {
        postorder_mut(right, visitor);
    }
    visit_node(node, visitor);
}

fn visit_node<T>(node: &mut TreeNode<T>, visitor: &impl NodeVisitor<T>) {
    let TreeNode { value, left, right } = node;
    visitor.visit(
        value,
        left.as_deref().map(|n| &n.value),
        right.as_deref().map(|n| &n.value),
    );
}

/// Pre-order sequential traversal: the node first, then its children.
pub fn preorder_mut<T>(node: &mut TreeNode<T>, visitor: &impl NodeVisitor<T>) {
    visit_node(node, visitor);
    if let Some(left) = node.left.as_deref_mut() {
        preorder_mut(left, visitor);
    }
    if let Some(right) = node.right.as_deref_mut() {
        preorder_mut(right, visitor);
    }
}

/// Runs several independent traversals one after the other (the *unfused*
/// baseline: one full pass per visitor).
pub fn run_passes<T>(node: &mut TreeNode<T>, visitors: &[&dyn NodeVisitor<T>]) {
    for visitor in visitors {
        postorder_seq_dyn(node, *visitor);
    }
}

fn postorder_seq_dyn<T>(node: &mut TreeNode<T>, visitor: &dyn NodeVisitor<T>) {
    if let Some(left) = node.left.as_deref_mut() {
        postorder_seq_dyn(left, visitor);
    }
    if let Some(right) = node.right.as_deref_mut() {
        postorder_seq_dyn(right, visitor);
    }
    let TreeNode { value, left, right } = node;
    visitor.visit(
        value,
        left.as_deref().map(|n| &n.value),
        right.as_deref().map(|n| &n.value),
    );
}

/// Fuses any number of visitors into a single visitor that applies them in
/// order at each node — one traversal instead of N.  This is the
/// arity-generic replacement for the old `fuse2`/`fuse3` pair.
pub fn fuse_all<'a, T>(visitors: &'a [&'a dyn NodeVisitor<T>]) -> impl NodeVisitor<T> + 'a {
    move |value: &mut T, left: Option<&T>, right: Option<&T>| {
        for visitor in visitors {
            visitor.visit(value, left, right);
        }
    }
}

/// Parallel post-order traversal: the two subtrees are processed by
/// `rayon::join`; subtrees smaller than `seq_threshold` nodes fall back to
/// the sequential schedule to amortize task overhead.
pub fn par_postorder_mut<T: Send>(
    node: &mut TreeNode<T>,
    visitor: &impl NodeVisitor<T>,
    seq_threshold: usize,
) {
    if node.len() <= seq_threshold {
        postorder_mut(node, visitor);
        return;
    }
    {
        let TreeNode { left, right, .. } = node;
        join(
            || {
                if let Some(left) = left.as_deref_mut() {
                    par_postorder_mut(left, visitor, seq_threshold);
                }
            },
            || {
                if let Some(right) = right.as_deref_mut() {
                    par_postorder_mut(right, visitor, seq_threshold);
                }
            },
        );
    }
    visit_node(node, visitor);
}

/// Parallel pre-order traversal (node first, subtrees in parallel).
pub fn par_preorder_mut<T: Send>(
    node: &mut TreeNode<T>,
    visitor: &impl NodeVisitor<T>,
    seq_threshold: usize,
) {
    if node.len() <= seq_threshold {
        preorder_mut(node, visitor);
        return;
    }
    visit_node(node, visitor);
    let TreeNode { left, right, .. } = node;
    join(
        || {
            if let Some(left) = left.as_deref_mut() {
                par_preorder_mut(left, visitor, seq_threshold);
            }
        },
        || {
            if let Some(right) = right.as_deref_mut() {
                par_preorder_mut(right, visitor, seq_threshold);
            }
        },
    );
}

/// A parallel fold over the tree: computes `combine(node, fold(left),
/// fold(right))` bottom-up, with the two subtrees folded by `rayon::join`.
/// This is the shape of the `Odd`/`Even` size-counting traversals.
pub fn par_fold<T: Sync, R: Send>(
    node: &TreeNode<T>,
    seq_threshold: usize,
    leaf_value: &(impl Fn() -> R + Sync),
    combine: &(impl Fn(&T, R, R) -> R + Sync),
) -> R {
    if node.len() <= seq_threshold {
        return seq_fold(node, leaf_value, combine);
    }
    let (left, right) = join(
        || {
            node.left
                .as_deref()
                .map(|n| par_fold(n, seq_threshold, leaf_value, combine))
                .unwrap_or_else(leaf_value)
        },
        || {
            node.right
                .as_deref()
                .map(|n| par_fold(n, seq_threshold, leaf_value, combine))
                .unwrap_or_else(leaf_value)
        },
    );
    combine(&node.value, left, right)
}

/// Sequential fold (the baseline for [`par_fold`]).
pub fn seq_fold<T, R>(
    node: &TreeNode<T>,
    leaf_value: &impl Fn() -> R,
    combine: &impl Fn(&T, R, R) -> R,
) -> R {
    let left = node
        .left
        .as_deref()
        .map(|n| seq_fold(n, leaf_value, combine))
        .unwrap_or_else(leaf_value);
    let right = node
        .right
        .as_deref()
        .map(|n| seq_fold(n, leaf_value, combine))
        .unwrap_or_else(leaf_value);
    combine(&node.value, left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::complete_tree;

    #[derive(Debug, Clone, Default, PartialEq)]
    struct Payload {
        v: i64,
        sum: i64,
    }

    fn sum_visitor() -> impl NodeVisitor<Payload> {
        |value: &mut Payload, left: Option<&Payload>, right: Option<&Payload>| {
            value.sum = value.v + left.map_or(0, |l| l.sum) + right.map_or(0, |r| r.sum);
        }
    }

    #[test]
    fn postorder_computes_subtree_sums() {
        let mut tree = complete_tree(3, &|i| Payload {
            v: i as i64,
            sum: 0,
        });
        postorder_mut(&mut tree, &sum_visitor());
        // Sum over all nodes 0..7 = 21.
        assert_eq!(tree.value.sum, 21);
    }

    #[test]
    fn parallel_postorder_matches_sequential() {
        let mut seq = complete_tree(10, &|i| Payload {
            v: i as i64,
            sum: 0,
        });
        let mut par = seq.clone();
        postorder_mut(&mut seq, &sum_visitor());
        par_postorder_mut(&mut par, &sum_visitor(), 8);
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_preorder_matches_sequential() {
        let inc = |value: &mut Payload, _: Option<&Payload>, _: Option<&Payload>| {
            value.v += 1;
        };
        let mut seq = complete_tree(9, &|i| Payload {
            v: i as i64,
            sum: 0,
        });
        let mut par = seq.clone();
        preorder_mut(&mut seq, &inc);
        par_preorder_mut(&mut par, &inc, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn fused_passes_match_separate_passes() {
        let scale = |value: &mut Payload, _: Option<&Payload>, _: Option<&Payload>| {
            value.v *= 2;
        };
        let shift = |value: &mut Payload, _: Option<&Payload>, _: Option<&Payload>| {
            value.v += 3;
        };
        let mut unfused = complete_tree(6, &|i| Payload {
            v: i as i64,
            sum: 0,
        });
        let mut fused = unfused.clone();
        run_passes(&mut unfused, &[&scale, &shift]);
        let passes: [&dyn NodeVisitor<Payload>; 2] = [&scale, &shift];
        let combined = fuse_all(&passes);
        postorder_mut(&mut fused, &combined);
        assert_eq!(unfused, fused);
    }

    #[test]
    fn fuse_all_applies_in_order_at_any_arity() {
        let a = |value: &mut i64, _: Option<&i64>, _: Option<&i64>| *value += 1;
        let b = |value: &mut i64, _: Option<&i64>, _: Option<&i64>| *value *= 10;
        let c = |value: &mut i64, _: Option<&i64>, _: Option<&i64>| *value -= 2;
        let mut tree = complete_tree(2, &|_| 0i64);
        let passes: [&dyn NodeVisitor<i64>; 3] = [&a, &b, &c];
        let fused = fuse_all(&passes);
        postorder_mut(&mut tree, &fused);
        // (0 + 1) * 10 - 2 = 8 at every node.
        assert!(tree.preorder().iter().all(|&&v| v == 8));

        // A single-visitor fusion degenerates to the visitor itself, and an
        // empty fusion is the identity pass.
        let mut one = complete_tree(2, &|_| 1i64);
        postorder_mut(&mut one, &fuse_all(&[&a as &dyn NodeVisitor<i64>]));
        assert!(one.preorder().iter().all(|&&v| v == 2));
        let empty: [&dyn NodeVisitor<i64>; 0] = [];
        postorder_mut(&mut one, &fuse_all(&empty));
        assert!(one.preorder().iter().all(|&&v| v == 2));
    }

    #[test]
    fn par_fold_counts_odd_and_even_layers() {
        // The runtime equivalent of the running example: fold computing both
        // counts in one pass (the Fig. 6a fusion).
        let tree = complete_tree(5, &|_| ());
        let (odd, even) = par_fold(
            &tree,
            4,
            &|| (0i64, 0i64),
            &|_, (lo, le): (i64, i64), (ro, re): (i64, i64)| (le + re + 1, lo + ro),
        );
        // Complete tree of height 5: layers 1..=5 have 1,2,4,8,16 nodes.
        assert_eq!(odd, 1 + 4 + 16);
        assert_eq!(even, 2 + 8);
        let seq = seq_fold(
            &tree,
            &|| (0i64, 0i64),
            &|_, (lo, le): (i64, i64), (ro, re): (i64, i64)| (le + re + 1, lo + ro),
        );
        assert_eq!(seq, (odd, even));
    }
}
