//! # retreet-runtime — executing (verified) tree-traversal schedules
//!
//! The Retreet paper answers the *legality* question for traversal
//! transformations; this crate provides the *execution* side a downstream
//! user needs once a transformation is known to be legal:
//!
//! * [`tree`] — owned binary trees ([`tree::TreeNode`]) whose disjoint
//!   subtrees can be handed to different rayon workers,
//! * [`visit`] — sequential, fused (the arity-generic [`visit::fuse_all`])
//!   and rayon-parallel traversal schedules, plus parallel folds,
//! * [`verified`] — capability types ([`verified::VerifiedFusion`],
//!   [`verified::VerifiedParallelization`]) that are only constructible
//!   from a `retreet-transform` certificate of the right kind, tying the
//!   verifier's verdicts to the schedules that rely on them,
//! * [`exec`] — tiered execution of Retreet programs proper: a
//!   [`exec::ProgramExecutor`] compiles a program to `retreet-codegen`
//!   bytecode (with certified iterative lowering when built from a
//!   verifier) and runs it on the VM, keeping the reference interpreter as
//!   the fallback tier and differential baseline,
//! * [`tune`] — the VM-backed cost model for `retreet-transform`'s
//!   certified schedule autotuner: [`tune_and_compile`] measures every
//!   certified candidate on the compiled tier (never the interpreter) and
//!   returns the winning schedule with a ready executor.
//!
//! # Example
//!
//! ```
//! use retreet_runtime::tree::complete_tree;
//! use retreet_runtime::visit::{par_fold, seq_fold};
//!
//! // The running example of the paper as a runtime fold: count nodes on odd
//! // and even layers in one (parallelizable) pass.
//! let tree = complete_tree(10, &|_| ());
//! let combine = |_: &(), (lo, le): (u64, u64), (ro, re): (u64, u64)| (le + re + 1, lo + ro);
//! let seq = seq_fold(&tree, &|| (0, 0), &combine);
//! let par = par_fold(&tree, 64, &|| (0, 0), &combine);
//! assert_eq!(seq, par);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod tree;
pub mod tune;
pub mod verified;
pub mod visit;

pub use exec::{
    run_compiled, run_compiled_certified, ExecError, ExecOutcome, ExecTier, ProgramExecutor,
};
pub use tree::{complete_tree, random_tree, TreeNode};
pub use tune::{tune_and_compile, TunedProgram};
pub use verified::{TransformError, VerifiedFusion, VerifiedParallelization};
pub use visit::{
    fuse_all, par_fold, par_postorder_mut, par_preorder_mut, postorder_mut, preorder_mut,
    run_passes, seq_fold, NodeVisitor,
};
