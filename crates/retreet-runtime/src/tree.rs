//! Owned binary trees for traversal execution.
//!
//! The runtime uses a `Box`-based representation ([`TreeNode`]) rather than an
//! arena: the left and right subtrees are disjoint owned values, which is
//! exactly what lets rayon's `join` hand `&mut` references to both halves to
//! two worker threads without any synchronization — the same data-race-freedom
//! argument the paper's `Parallel` relation captures for iterations on
//! disjoint subtrees.

use std::fmt;

/// A node of an owned binary tree carrying a payload of type `T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode<T> {
    /// The payload stored at this node.
    pub value: T,
    /// Left subtree.
    pub left: Option<Box<TreeNode<T>>>,
    /// Right subtree.
    pub right: Option<Box<TreeNode<T>>>,
}

impl<T> TreeNode<T> {
    /// A leaf node.
    pub fn leaf(value: T) -> Self {
        TreeNode {
            value,
            left: None,
            right: None,
        }
    }

    /// A node with the given subtrees.
    pub fn new(value: T, left: Option<TreeNode<T>>, right: Option<TreeNode<T>>) -> Self {
        TreeNode {
            value,
            left: left.map(Box::new),
            right: right.map(Box::new),
        }
    }

    /// Number of nodes in the subtree rooted here.
    pub fn len(&self) -> usize {
        1 + self.left.as_ref().map_or(0, |n| n.len()) + self.right.as_ref().map_or(0, |n| n.len())
    }

    /// Always false (a node exists).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Height of the subtree rooted here (a leaf has height 1).
    pub fn height(&self) -> usize {
        1 + self
            .left
            .as_ref()
            .map_or(0, |n| n.height())
            .max(self.right.as_ref().map_or(0, |n| n.height()))
    }

    /// True when the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.left.is_none() && self.right.is_none()
    }

    /// Applies `f` to every payload, building a structurally identical tree.
    pub fn map<U>(&self, f: &impl Fn(&T) -> U) -> TreeNode<U> {
        TreeNode {
            value: f(&self.value),
            left: self.left.as_ref().map(|n| Box::new(n.map(f))),
            right: self.right.as_ref().map(|n| Box::new(n.map(f))),
        }
    }

    /// Collects references to the payloads in pre-order.
    pub fn preorder(&self) -> Vec<&T> {
        let mut out = Vec::with_capacity(self.len());
        self.preorder_into(&mut out);
        out
    }

    fn preorder_into<'a>(&'a self, out: &mut Vec<&'a T>) {
        out.push(&self.value);
        if let Some(left) = &self.left {
            left.preorder_into(out);
        }
        if let Some(right) = &self.right {
            right.preorder_into(out);
        }
    }

    /// Collects references to the payloads in post-order.
    pub fn postorder(&self) -> Vec<&T> {
        let mut out = Vec::with_capacity(self.len());
        self.postorder_into(&mut out);
        out
    }

    fn postorder_into<'a>(&'a self, out: &mut Vec<&'a T>) {
        if let Some(left) = &self.left {
            left.postorder_into(out);
        }
        if let Some(right) = &self.right {
            right.postorder_into(out);
        }
        out.push(&self.value);
    }
}

impl<T: fmt::Display> TreeNode<T> {
    /// A compact single-line rendering `value(left, right)`.
    pub fn render(&self) -> String {
        match (&self.left, &self.right) {
            (None, None) => format!("{}", self.value),
            (l, r) => format!(
                "{}({}, {})",
                self.value,
                l.as_ref().map_or_else(|| "·".to_string(), |n| n.render()),
                r.as_ref().map_or_else(|| "·".to_string(), |n| n.render()),
            ),
        }
    }
}

/// Builds a complete binary tree of the given height, with payloads produced
/// by `make(index)` where `index` is a breadth-first position (root = 0).
pub fn complete_tree<T>(height: usize, make: &impl Fn(usize) -> T) -> TreeNode<T> {
    assert!(height >= 1, "height must be at least 1");
    build_complete(0, height, make)
}

fn build_complete<T>(index: usize, height: usize, make: &impl Fn(usize) -> T) -> TreeNode<T> {
    let mut node = TreeNode::leaf(make(index));
    if height > 1 {
        node.left = Some(Box::new(build_complete(2 * index + 1, height - 1, make)));
        node.right = Some(Box::new(build_complete(2 * index + 2, height - 1, make)));
    }
    node
}

/// Builds a deterministic "random-shaped" tree with exactly `nodes` nodes,
/// using a splitmix-style generator seeded by `seed`.  Useful for benchmark
/// workloads that should not all be perfectly balanced.
pub fn random_tree<T>(nodes: usize, seed: u64, make: &impl Fn(usize) -> T) -> TreeNode<T> {
    assert!(nodes >= 1);
    let mut counter = 0usize;
    let mut state = seed;
    build_random(nodes, &mut counter, &mut state, make)
}

fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn build_random<T>(
    nodes: usize,
    counter: &mut usize,
    state: &mut u64,
    make: &impl Fn(usize) -> T,
) -> TreeNode<T> {
    let index = *counter;
    *counter += 1;
    let mut node = TreeNode::leaf(make(index));
    let remaining = nodes - 1;
    if remaining == 0 {
        return node;
    }
    let to_left = (next_u64(state) as usize) % (remaining + 1);
    let to_right = remaining - to_left;
    if to_left > 0 {
        node.left = Some(Box::new(build_random(to_left, counter, state, make)));
    }
    if to_right > 0 {
        node.right = Some(Box::new(build_random(to_right, counter, state, make)));
    }
    node
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_tree_shape() {
        let tree = complete_tree(4, &|i| i);
        assert_eq!(tree.len(), 15);
        assert_eq!(tree.height(), 4);
        assert!(!tree.is_leaf());
        assert!(complete_tree(1, &|i| i).is_leaf());
    }

    #[test]
    fn traversal_orders() {
        // Tree: 0(1, 2).
        let tree = TreeNode::new(0, Some(TreeNode::leaf(1)), Some(TreeNode::leaf(2)));
        assert_eq!(tree.preorder(), vec![&0, &1, &2]);
        assert_eq!(tree.postorder(), vec![&1, &2, &0]);
        assert_eq!(tree.render(), "0(1, 2)");
    }

    #[test]
    fn map_preserves_structure() {
        let tree = complete_tree(3, &|i| i as i64);
        let doubled = tree.map(&|v| v * 2);
        assert_eq!(doubled.len(), tree.len());
        assert_eq!(doubled.value, 0);
        assert_eq!(doubled.left.as_ref().unwrap().value, 2);
    }

    #[test]
    fn random_tree_has_requested_size_and_is_deterministic() {
        let a = random_tree(100, 42, &|i| i);
        let b = random_tree(100, 42, &|i| i);
        let c = random_tree(100, 7, &|i| i);
        assert_eq!(a.len(), 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn single_node_random_tree() {
        let tree = random_tree(1, 0, &|i| i);
        assert!(tree.is_leaf());
    }
}
