//! Deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] is built once per chaos run from a fixed seed and shared
//! (via `Arc`) by every layer that can fail: the verifier's engine workers
//! (panic, stall), the record log (write error, torn write, silent
//! corruption) and the serving tier's connection writer (drop
//! mid-response).  Each potential failure point calls [`FaultPlan::roll`]
//! with its [`FaultSite`]; the plan burns one draw from a splitmix64
//! stream and answers with the fault to inject, if any.
//!
//! Determinism is per-seed and per-draw-sequence: a single-threaded replay
//! of the same operations injects exactly the same faults.  Under
//! concurrency the *set* of injection decisions is still a pure function
//! of the seed (draw `n` always maps to the same outcome); only which
//! thread consumes which draw varies.  Chaos tests therefore assert
//! invariants (no wrong verdict, recovery completeness), not exact fault
//! sequences.

use std::sync::atomic::{AtomicU64, Ordering};

/// Where a fault could be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// An engine is about to run a query.
    EngineRun,
    /// The record log is about to append a frame.
    StoreWrite,
    /// The serving tier is about to write a response line.
    ConnectionWrite,
}

/// A fault the plan decided to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Panic inside the engine worker (caught by the portfolio's
    /// `catch_unwind` isolation).
    EnginePanic,
    /// Stall the engine for this many milliseconds before it runs —
    /// long enough to trip a deadline watchdog.
    EngineStall {
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Fail the append before any byte reaches the file.
    StoreWriteError,
    /// Write half the frame, then fail — what a crash mid-append leaves.
    StoreTornWrite,
    /// Flip a payload byte after checksumming — silent disk corruption,
    /// caught by the checksum on the next open.
    StoreCorruption,
    /// Close the connection after writing a partial response line.
    ConnectionDrop,
}

/// Counts of faults actually injected, for test assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// [`InjectedFault::EnginePanic`] injections.
    pub engine_panics: u64,
    /// [`InjectedFault::EngineStall`] injections.
    pub engine_stalls: u64,
    /// [`InjectedFault::StoreWriteError`] injections.
    pub store_write_errors: u64,
    /// [`InjectedFault::StoreTornWrite`] injections.
    pub store_torn_writes: u64,
    /// [`InjectedFault::StoreCorruption`] injections.
    pub store_corruptions: u64,
    /// [`InjectedFault::ConnectionDrop`] injections.
    pub connection_drops: u64,
}

impl FaultCounts {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.engine_panics
            + self.engine_stalls
            + self.store_write_errors
            + self.store_torn_writes
            + self.store_corruptions
            + self.connection_drops
    }
}

/// Builder for a [`FaultPlan`].  All rates are probabilities in `[0, 1]`;
/// rates that share a site (panic+stall, the three store faults) are
/// applied cumulatively, so their sum per site must stay ≤ 1.
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    seed: u64,
    engine_panic: f64,
    engine_stall: f64,
    stall_millis: u64,
    store_write_error: f64,
    store_torn_write: f64,
    store_corruption: f64,
    connection_drop: f64,
}

impl FaultPlanBuilder {
    /// Start a plan from `seed`; all fault rates default to zero.
    pub fn new(seed: u64) -> Self {
        FaultPlanBuilder {
            seed,
            engine_panic: 0.0,
            engine_stall: 0.0,
            stall_millis: 20,
            store_write_error: 0.0,
            store_torn_write: 0.0,
            store_corruption: 0.0,
            connection_drop: 0.0,
        }
    }

    /// Probability an engine run panics.
    pub fn engine_panic(mut self, rate: f64) -> Self {
        self.engine_panic = rate;
        self
    }

    /// Probability an engine run stalls for `millis` before starting.
    pub fn engine_stall(mut self, rate: f64, millis: u64) -> Self {
        self.engine_stall = rate;
        self.stall_millis = millis;
        self
    }

    /// Probability a store append fails cleanly (nothing written).
    pub fn store_write_error(mut self, rate: f64) -> Self {
        self.store_write_error = rate;
        self
    }

    /// Probability a store append tears (half a frame written).
    pub fn store_torn_write(mut self, rate: f64) -> Self {
        self.store_torn_write = rate;
        self
    }

    /// Probability a store append is silently bit-flipped on disk.
    pub fn store_corruption(mut self, rate: f64) -> Self {
        self.store_corruption = rate;
        self
    }

    /// Probability a response write drops the connection mid-line.
    pub fn connection_drop(mut self, rate: f64) -> Self {
        self.connection_drop = rate;
        self
    }

    /// Finish the plan.
    pub fn build(self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            engine_panic: self.engine_panic,
            engine_stall: self.engine_stall,
            stall_millis: self.stall_millis,
            store_write_error: self.store_write_error,
            store_torn_write: self.store_torn_write,
            store_corruption: self.store_corruption,
            connection_drop: self.connection_drop,
            draws: AtomicU64::new(0),
            injected_panics: AtomicU64::new(0),
            injected_stalls: AtomicU64::new(0),
            injected_write_errors: AtomicU64::new(0),
            injected_torn_writes: AtomicU64::new(0),
            injected_corruptions: AtomicU64::new(0),
            injected_drops: AtomicU64::new(0),
        }
    }
}

/// A seeded fault-injection plan.  See the module docs for the
/// determinism contract.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    engine_panic: f64,
    engine_stall: f64,
    stall_millis: u64,
    store_write_error: f64,
    store_torn_write: f64,
    store_corruption: f64,
    connection_drop: f64,
    draws: AtomicU64,
    injected_panics: AtomicU64,
    injected_stalls: AtomicU64,
    injected_write_errors: AtomicU64,
    injected_torn_writes: AtomicU64,
    injected_corruptions: AtomicU64,
    injected_drops: AtomicU64,
}

/// splitmix64: the standard 64-bit mixer (Steele et al.), good enough to
/// decorrelate sequential draws from a seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Shorthand for a plan that never injects anything.
    pub fn none() -> FaultPlan {
        FaultPlanBuilder::new(0).build()
    }

    /// Start building a plan from `seed`.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder::new(seed)
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Burn one draw and decide whether to inject a fault at `site`.
    pub fn roll(&self, site: FaultSite) -> Option<InjectedFault> {
        let n = self.draws.fetch_add(1, Ordering::Relaxed);
        let site_salt = match site {
            FaultSite::EngineRun => 0x45,
            FaultSite::StoreWrite => 0x53,
            FaultSite::ConnectionWrite => 0x43,
        };
        let raw = splitmix64(self.seed ^ n.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ (site_salt << 56));
        // 53 uniform bits → [0, 1).
        let unit = (raw >> 11) as f64 / (1u64 << 53) as f64;
        match site {
            FaultSite::EngineRun => {
                if unit < self.engine_panic {
                    self.injected_panics.fetch_add(1, Ordering::Relaxed);
                    Some(InjectedFault::EnginePanic)
                } else if unit < self.engine_panic + self.engine_stall {
                    self.injected_stalls.fetch_add(1, Ordering::Relaxed);
                    Some(InjectedFault::EngineStall {
                        millis: self.stall_millis,
                    })
                } else {
                    None
                }
            }
            FaultSite::StoreWrite => {
                if unit < self.store_write_error {
                    self.injected_write_errors.fetch_add(1, Ordering::Relaxed);
                    Some(InjectedFault::StoreWriteError)
                } else if unit < self.store_write_error + self.store_torn_write {
                    self.injected_torn_writes.fetch_add(1, Ordering::Relaxed);
                    Some(InjectedFault::StoreTornWrite)
                } else if unit
                    < self.store_write_error + self.store_torn_write + self.store_corruption
                {
                    self.injected_corruptions.fetch_add(1, Ordering::Relaxed);
                    Some(InjectedFault::StoreCorruption)
                } else {
                    None
                }
            }
            FaultSite::ConnectionWrite => {
                if unit < self.connection_drop {
                    self.injected_drops.fetch_add(1, Ordering::Relaxed);
                    Some(InjectedFault::ConnectionDrop)
                } else {
                    None
                }
            }
        }
    }

    /// Faults injected so far (for test assertions and stats reporting).
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            engine_panics: self.injected_panics.load(Ordering::Relaxed),
            engine_stalls: self.injected_stalls.load(Ordering::Relaxed),
            store_write_errors: self.injected_write_errors.load(Ordering::Relaxed),
            store_torn_writes: self.injected_torn_writes.load(Ordering::Relaxed),
            store_corruptions: self.injected_corruptions.load(Ordering::Relaxed),
            connection_drops: self.injected_drops.load(Ordering::Relaxed),
        }
    }

    /// Draws consumed so far.
    pub fn draws(&self) -> u64 {
        self.draws.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_plan_never_injects() {
        let plan = FaultPlan::none();
        for _ in 0..1000 {
            assert_eq!(plan.roll(FaultSite::EngineRun), None);
            assert_eq!(plan.roll(FaultSite::StoreWrite), None);
            assert_eq!(plan.roll(FaultSite::ConnectionWrite), None);
        }
        assert_eq!(plan.counts().total(), 0);
        assert_eq!(plan.draws(), 3000);
    }

    #[test]
    fn full_rate_plan_always_injects_its_site_fault() {
        let plan = FaultPlanBuilder::new(42)
            .engine_panic(1.0)
            .store_write_error(1.0)
            .connection_drop(1.0)
            .build();
        for _ in 0..100 {
            assert_eq!(
                plan.roll(FaultSite::EngineRun),
                Some(InjectedFault::EnginePanic)
            );
            assert_eq!(
                plan.roll(FaultSite::StoreWrite),
                Some(InjectedFault::StoreWriteError)
            );
            assert_eq!(
                plan.roll(FaultSite::ConnectionWrite),
                Some(InjectedFault::ConnectionDrop)
            );
        }
        let counts = plan.counts();
        assert_eq!(counts.engine_panics, 100);
        assert_eq!(counts.store_write_errors, 100);
        assert_eq!(counts.connection_drops, 100);
    }

    #[test]
    fn same_seed_same_single_threaded_sequence() {
        let build = || {
            FaultPlanBuilder::new(1234)
                .engine_panic(0.25)
                .engine_stall(0.25, 5)
                .store_corruption(0.5)
                .connection_drop(0.3)
                .build()
        };
        let a = build();
        let b = build();
        for i in 0..500 {
            let site = match i % 3 {
                0 => FaultSite::EngineRun,
                1 => FaultSite::StoreWrite,
                _ => FaultSite::ConnectionWrite,
            };
            assert_eq!(a.roll(site), b.roll(site), "draw {i} diverged");
        }
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn different_seeds_give_different_storms() {
        let roll_pattern = |seed: u64| {
            let plan = FaultPlanBuilder::new(seed).engine_panic(0.5).build();
            (0..64)
                .map(|_| plan.roll(FaultSite::EngineRun).is_some())
                .collect::<Vec<bool>>()
        };
        assert_ne!(roll_pattern(1), roll_pattern(2));
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlanBuilder::new(99).engine_stall(0.5, 1).build();
        let injected = (0..10_000)
            .filter(|_| plan.roll(FaultSite::EngineRun).is_some())
            .count();
        assert!((4_000..6_000).contains(&injected), "got {injected}");
        assert_eq!(plan.counts().engine_stalls as usize, injected);
    }
}
