//! Crash-safe persistence for the serving tier.
//!
//! This crate provides the disk layer under the verdict cache:
//!
//! - [`RecordLog`] — an append-only log of length-prefixed, checksummed
//!   records.  Opening a log recovers every intact record, truncates a torn
//!   tail (the expected shape after a crash mid-append), and handles a
//!   checksum-corrupt *middle* record according to a [`CorruptionPolicy`].
//! - [`LogStore`] — a latest-wins key/value store layered on the record
//!   log, with periodic compaction (rewrite live entries to a temporary
//!   file, then atomically rename over the log).
//! - [`fault`] — a deterministic, seeded fault-injection plan shared by the
//!   store, the verifier and the serving tier, so chaos tests can replay
//!   the same storm of failures from a fixed seed.
//!
//! The record format is deliberately boring:
//!
//! ```text
//! file   := HEADER record*
//! HEADER := "RSLOG1\n"                      (7 bytes)
//! record := 0xA7 | len: u32 LE | crc: u64 LE | payload (len bytes)
//! ```
//!
//! `crc` is FNV-1a over the payload.  A record is *torn* when the file ends
//! before the frame does (or framing is lost: a bad marker byte or an
//! implausible length) — torn bytes are always truncated on open, under
//! either policy.  A record is *corrupt* when the frame is fully present
//! but the checksum disagrees — that is a policy decision: skip-and-log
//! (serve what survived) or fail-open (refuse the file).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::fault::{FaultPlan, FaultSite, InjectedFault};

/// File magic written at offset 0 of every record log.
const HEADER: &[u8] = b"RSLOG1\n";
/// Marker byte opening every record frame.
const RECORD_MARKER: u8 = 0xA7;
/// Frame overhead past the marker: length (4) + checksum (8).
const FRAME_HEAD: usize = 1 + 4 + 8;
/// Upper bound on a single record's payload; a larger length prefix is
/// treated as lost framing (torn tail), not as a real record.
const MAX_RECORD_BYTES: u32 = 256 * 1024 * 1024;

/// What to do when a fully-present record fails its checksum on open.
///
/// Torn tails are *always* truncated regardless of policy — a crash
/// mid-append is the normal case the log is designed for, not corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionPolicy {
    /// Drop the corrupt record, count it in [`OpenReport::skipped_corrupt`],
    /// and keep scanning.  The store serves whatever survived.
    SkipAndLog,
    /// Refuse to open the file: return `io::ErrorKind::InvalidData`.
    FailOpen,
}

/// What `open` found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Intact records recovered.
    pub records: usize,
    /// Fully-present records dropped for a bad checksum (SkipAndLog only).
    pub skipped_corrupt: usize,
    /// Bytes cut from the end of the file (torn tail / lost framing).
    pub truncated_bytes: u64,
}

/// FNV-1a, 64-bit.  Not cryptographic — it detects torn and bit-flipped
/// records, which is all a local log needs.
fn checksum(payload: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in payload {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// An append-only log of checksummed records.
///
/// `open` replays the file and returns every intact payload; `append`
/// writes one record (a single `write_all`, so a crash can tear at most
/// the final record); `rewrite` atomically replaces the whole log
/// (compaction).
#[derive(Debug)]
pub struct RecordLog {
    path: PathBuf,
    file: File,
}

impl RecordLog {
    /// Open (or create) the log at `path`, recovering intact records.
    ///
    /// Always truncates a torn tail; handles checksum-corrupt middle
    /// records per `policy`.
    pub fn open(
        path: impl Into<PathBuf>,
        policy: CorruptionPolicy,
    ) -> io::Result<(RecordLog, Vec<Vec<u8>>, OpenReport)> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut report = OpenReport::default();
        let mut records = Vec::new();

        if bytes.is_empty() {
            file.write_all(HEADER)?;
            file.sync_all()?;
            return Ok((RecordLog { path, file }, records, report));
        }
        if !bytes.starts_with(HEADER) {
            // The header itself is damaged: nothing after it can be framed.
            if policy == CorruptionPolicy::FailOpen {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("record log {}: bad file header", path.display()),
                ));
            }
            report.truncated_bytes = bytes.len() as u64;
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(HEADER)?;
            file.sync_all()?;
            return Ok((RecordLog { path, file }, records, report));
        }

        let mut offset = HEADER.len();
        let mut keep_until = offset;
        while offset < bytes.len() {
            let start = offset;
            let frame_ok = bytes.len() - start >= FRAME_HEAD && bytes[start] == RECORD_MARKER;
            if !frame_ok {
                // Short frame head or lost framing: torn tail from here.
                break;
            }
            let len = u32::from_le_bytes(bytes[start + 1..start + 5].try_into().expect("4 bytes"));
            if len > MAX_RECORD_BYTES {
                break; // implausible length: framing is gone
            }
            let payload_start = start + FRAME_HEAD;
            let payload_end = payload_start + len as usize;
            if payload_end > bytes.len() {
                break; // payload torn at EOF
            }
            let crc = u64::from_le_bytes(bytes[start + 5..start + 13].try_into().expect("8 bytes"));
            let payload = &bytes[payload_start..payload_end];
            if checksum(payload) == crc {
                records.push(payload.to_vec());
                report.records += 1;
            } else if policy == CorruptionPolicy::FailOpen {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "record log {}: checksum mismatch in record at byte {start}",
                        path.display()
                    ),
                ));
            } else {
                report.skipped_corrupt += 1;
            }
            offset = payload_end;
            keep_until = payload_end;
        }

        if keep_until < bytes.len() {
            report.truncated_bytes = (bytes.len() - keep_until) as u64;
            file.set_len(keep_until as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((RecordLog { path, file }, records, report))
    }

    /// Append one record.  The frame is written with a single `write_all`,
    /// so an interrupted append leaves at most a torn tail — which the next
    /// `open` truncates.
    ///
    /// `faults`, when set, may inject a write error (nothing written), a
    /// torn write (half the frame written, then an error — what a crash
    /// mid-append leaves behind), or silent payload corruption (full frame
    /// written with a flipped byte, caught by the checksum on next open).
    pub fn append(&mut self, payload: &[u8], faults: Option<&FaultPlan>) -> io::Result<()> {
        let injected = faults.and_then(|plan| plan.roll(FaultSite::StoreWrite));
        // The checksum always covers the *original* payload, so an injected
        // corruption is exactly a post-checksum bit flip on the way to disk.
        let crc = checksum(payload);
        let mut frame = Vec::with_capacity(FRAME_HEAD + payload.len());
        frame.push(RECORD_MARKER);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(payload);
        if matches!(injected, Some(InjectedFault::StoreCorruption)) && !payload.is_empty() {
            frame[FRAME_HEAD] ^= 0x40;
        }
        match injected {
            Some(InjectedFault::StoreWriteError) => {
                Err(io::Error::other("injected fault: store write error"))
            }
            Some(InjectedFault::StoreTornWrite) => {
                self.file.write_all(&frame[..frame.len() / 2])?;
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected fault: torn store write",
                ))
            }
            _ => self.file.write_all(&frame),
        }
    }

    /// Durably flush everything appended so far.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    /// Atomically replace the log's contents with `payloads` (compaction):
    /// write a temporary file next to the log, sync it, rename it over the
    /// log, and reopen the handle.
    pub fn rewrite<'a>(&mut self, payloads: impl IntoIterator<Item = &'a [u8]>) -> io::Result<()> {
        let tmp_path = self.path.with_extension("compact-tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            let mut buf = Vec::new();
            buf.extend_from_slice(HEADER);
            for payload in payloads {
                buf.push(RECORD_MARKER);
                buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                buf.extend_from_slice(&checksum(payload).to_le_bytes());
                buf.extend_from_slice(payload);
            }
            tmp.write_all(&buf)?;
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        Ok(())
    }

    /// The log's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// How eagerly [`LogStore`] compacts: once the on-disk record count
/// exceeds `2 * live + COMPACT_SLACK`, a compaction rewrites the log to
/// exactly the live set.
const COMPACT_SLACK: usize = 64;

/// A latest-wins key/value store over a [`RecordLog`].
///
/// Each record is `klen: u32 LE | key | value`.  Replaying the log in
/// order and keeping the last value per key reconstructs the map; iteration
/// order is the order keys were *first* written, which makes recovery
/// deterministic for tests.
#[derive(Debug)]
pub struct LogStore {
    log: RecordLog,
    index: HashMap<Vec<u8>, Vec<u8>>,
    order: Vec<Vec<u8>>,
    /// Records on disk since the last compaction (live + superseded).
    disk_records: usize,
    faults: Option<Arc<FaultPlan>>,
    compactions: u64,
}

fn encode_kv(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + key.len() + value.len());
    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
    payload.extend_from_slice(key);
    payload.extend_from_slice(value);
    payload
}

fn decode_kv(payload: &[u8]) -> Option<(&[u8], &[u8])> {
    if payload.len() < 4 {
        return None;
    }
    let klen = u32::from_le_bytes(payload[..4].try_into().ok()?) as usize;
    if payload.len() < 4 + klen {
        return None;
    }
    Some((&payload[4..4 + klen], &payload[4 + klen..]))
}

impl LogStore {
    /// Open (or create) the store at `path`, replaying intact records.
    /// Records that survive framing but fail to decode as key/value pairs
    /// are counted corrupt (or refused, under [`CorruptionPolicy::FailOpen`]).
    pub fn open(
        path: impl Into<PathBuf>,
        policy: CorruptionPolicy,
    ) -> io::Result<(LogStore, OpenReport)> {
        let (log, payloads, mut report) = RecordLog::open(path, policy)?;
        let mut index: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        let mut order = Vec::new();
        let disk_records = payloads.len();
        for payload in &payloads {
            match decode_kv(payload) {
                Some((key, value)) => {
                    if !index.contains_key(key) {
                        order.push(key.to_vec());
                    }
                    index.insert(key.to_vec(), value.to_vec());
                }
                None if policy == CorruptionPolicy::FailOpen => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("log store {}: undecodable record", log.path().display()),
                    ));
                }
                None => {
                    report.records -= 1;
                    report.skipped_corrupt += 1;
                }
            }
        }
        Ok((
            LogStore {
                log,
                index,
                order,
                disk_records,
                faults: None,
                compactions: 0,
            },
            report,
        ))
    }

    /// Arm deterministic fault injection for subsequent writes.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Write `key = value` (latest wins).  The in-memory map is updated
    /// even when the disk append fails — a later compaction rewrites the
    /// full live set, so transient write errors self-heal.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> io::Result<()> {
        if !self.index.contains_key(key) {
            self.order.push(key.to_vec());
        }
        self.index.insert(key.to_vec(), value.to_vec());
        let payload = encode_kv(key, value);
        let result = self.log.append(&payload, self.faults.as_deref());
        if result.is_ok() {
            self.disk_records += 1;
        }
        result
    }

    /// The live value for `key`, if any.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.index.get(key).map(Vec::as_slice)
    }

    /// Live entries, in first-written key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.order.iter().filter_map(|key| {
            self.index
                .get(key)
                .map(|value| (key.as_slice(), value.as_slice()))
        })
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no keys are live.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Compact when the on-disk log has grown past twice the live set
    /// (plus slack).  Returns true when a compaction ran.
    pub fn maybe_compact(&mut self) -> io::Result<bool> {
        if self.disk_records > 2 * self.index.len() + COMPACT_SLACK {
            self.compact()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Rewrite the log to exactly the live entries (atomic tmp + rename).
    pub fn compact(&mut self) -> io::Result<()> {
        let payloads: Vec<Vec<u8>> = self
            .order
            .iter()
            .filter_map(|key| self.index.get(key).map(|value| encode_kv(key, value)))
            .collect();
        self.log.rewrite(payloads.iter().map(Vec::as_slice))?;
        self.disk_records = self.index.len();
        self.compactions += 1;
        Ok(())
    }

    /// Compactions run since open.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Records currently on disk (live + superseded since last compaction).
    pub fn disk_records(&self) -> usize {
        self.disk_records
    }

    /// Durably flush appends to disk.
    pub fn sync(&mut self) -> io::Result<()> {
        self.log.sync()
    }

    /// The store's on-disk path.
    pub fn path(&self) -> &Path {
        self.log.path()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlanBuilder;

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        let unique = format!(
            "retreet-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        );
        path.push(unique.replace(['(', ')'], ""));
        path
    }

    #[test]
    fn roundtrip_records_across_reopen() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut log, records, report) =
                RecordLog::open(&path, CorruptionPolicy::FailOpen).unwrap();
            assert!(records.is_empty());
            assert_eq!(report, OpenReport::default());
            log.append(b"alpha", None).unwrap();
            log.append(b"", None).unwrap();
            log.append(&[0u8; 1024], None).unwrap();
            log.sync().unwrap();
        }
        let (_, records, report) = RecordLog::open(&path, CorruptionPolicy::FailOpen).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], b"alpha");
        assert_eq!(records[1], b"");
        assert_eq!(records[2], vec![0u8; 1024]);
        assert_eq!(report.records, 3);
        assert_eq!(report.truncated_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_under_both_policies() {
        for policy in [CorruptionPolicy::SkipAndLog, CorruptionPolicy::FailOpen] {
            let path = temp_path("torn");
            let _ = std::fs::remove_file(&path);
            {
                let (mut log, _, _) = RecordLog::open(&path, policy).unwrap();
                log.append(b"kept", None).unwrap();
            }
            // Simulate a crash mid-append: half a frame of garbage.
            {
                let mut file = OpenOptions::new().append(true).open(&path).unwrap();
                file.write_all(&[RECORD_MARKER, 0xFF, 0x13]).unwrap();
            }
            let before = std::fs::metadata(&path).unwrap().len();
            let (_, records, report) = RecordLog::open(&path, policy).unwrap();
            assert_eq!(records.len(), 1, "intact record survives under {policy:?}");
            assert_eq!(records[0], b"kept");
            assert_eq!(report.truncated_bytes, 3);
            assert_eq!(std::fs::metadata(&path).unwrap().len(), before - 3);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn corrupt_middle_record_skips_or_fails_by_policy() {
        let path = temp_path("corrupt-middle");
        let _ = std::fs::remove_file(&path);
        {
            let (mut log, _, _) = RecordLog::open(&path, CorruptionPolicy::FailOpen).unwrap();
            log.append(b"first", None).unwrap();
            log.append(b"second", None).unwrap();
            log.append(b"third", None).unwrap();
        }
        // Flip a payload byte inside the middle record.
        {
            let mut bytes = std::fs::read(&path).unwrap();
            let second_payload = HEADER.len() + (FRAME_HEAD + 5) + FRAME_HEAD;
            bytes[second_payload] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();
        }
        let (_, records, report) = RecordLog::open(&path, CorruptionPolicy::SkipAndLog).unwrap();
        assert_eq!(records.len(), 2, "first and third survive");
        assert_eq!(records[0], b"first");
        assert_eq!(records[1], b"third");
        assert_eq!(report.skipped_corrupt, 1);
        assert_eq!(report.truncated_bytes, 0, "corruption is not truncation");

        let err = RecordLog::open(&path, CorruptionPolicy::FailOpen).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_and_headerless_files_are_recovered() {
        // Empty file: opened fresh, header written.
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let (_, records, report) = RecordLog::open(&path, CorruptionPolicy::FailOpen).unwrap();
        assert!(records.is_empty());
        assert_eq!(report, OpenReport::default());
        assert_eq!(std::fs::read(&path).unwrap(), HEADER);
        let _ = std::fs::remove_file(&path);

        // Garbage where the header should be: SkipAndLog resets the file,
        // FailOpen refuses it.
        let path = temp_path("headerless");
        std::fs::write(&path, b"not a log").unwrap();
        let err = RecordLog::open(&path, CorruptionPolicy::FailOpen).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let (_, records, report) = RecordLog::open(&path, CorruptionPolicy::SkipAndLog).unwrap();
        assert!(records.is_empty());
        assert_eq!(report.truncated_bytes, 9);
        assert_eq!(std::fs::read(&path).unwrap(), HEADER);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn log_store_latest_wins_and_survives_reopen() {
        let path = temp_path("kv");
        let _ = std::fs::remove_file(&path);
        {
            let (mut store, _) = LogStore::open(&path, CorruptionPolicy::FailOpen).unwrap();
            store.put(b"k1", b"v1").unwrap();
            store.put(b"k2", b"v2").unwrap();
            store.put(b"k1", b"v1-updated").unwrap();
            store.sync().unwrap();
            assert_eq!(store.len(), 2);
            assert_eq!(store.disk_records(), 3);
        }
        let (store, report) = LogStore::open(&path, CorruptionPolicy::FailOpen).unwrap();
        assert_eq!(report.records, 3);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(b"k1"), Some(b"v1-updated".as_slice()));
        assert_eq!(store.get(b"k2"), Some(b"v2".as_slice()));
        let keys: Vec<&[u8]> = store.iter().map(|(key, _)| key).collect();
        assert_eq!(keys, vec![b"k1".as_slice(), b"k2".as_slice()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_shrinks_the_log_and_preserves_contents() {
        let path = temp_path("compact");
        let _ = std::fs::remove_file(&path);
        {
            let (mut store, _) = LogStore::open(&path, CorruptionPolicy::FailOpen).unwrap();
            for round in 0..40 {
                for key in 0..4u8 {
                    store
                        .put(&[key], format!("round-{round}").as_bytes())
                        .unwrap();
                }
            }
            assert_eq!(store.disk_records(), 160);
            assert!(store.maybe_compact().unwrap(), "past threshold");
            assert_eq!(store.disk_records(), 4);
            assert_eq!(store.compactions(), 1);
            assert!(!store.maybe_compact().unwrap(), "freshly compacted");
        }
        let (store, report) = LogStore::open(&path, CorruptionPolicy::FailOpen).unwrap();
        assert_eq!(report.records, 4);
        for key in 0..4u8 {
            assert_eq!(store.get(&[key]), Some(b"round-39".as_slice()));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_write_error_leaves_memory_consistent_and_disk_intact() {
        let path = temp_path("fault-write");
        let _ = std::fs::remove_file(&path);
        let plan = Arc::new(FaultPlanBuilder::new(7).store_write_error(1.0).build());
        {
            let (mut store, _) = LogStore::open(&path, CorruptionPolicy::FailOpen).unwrap();
            store.put(b"before", b"faults").unwrap();
            store.set_fault_plan(Arc::clone(&plan));
            let err = store.put(b"during", b"faults").unwrap_err();
            assert!(err.to_string().contains("injected fault"));
            // Memory keeps the write; disk does not.
            assert_eq!(store.get(b"during"), Some(b"faults".as_slice()));
            // Compaction self-heals: it rewrites the live set without faults
            // on the compaction path.
            store.faults = None;
            store.compact().unwrap();
        }
        let (store, _) = LogStore::open(&path, CorruptionPolicy::FailOpen).unwrap();
        assert_eq!(store.get(b"before"), Some(b"faults".as_slice()));
        assert_eq!(store.get(b"during"), Some(b"faults".as_slice()));
        assert!(plan.counts().store_write_errors >= 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_torn_write_recovers_on_reopen() {
        let path = temp_path("fault-torn");
        let _ = std::fs::remove_file(&path);
        let plan = Arc::new(FaultPlanBuilder::new(11).store_torn_write(1.0).build());
        {
            let (mut store, _) = LogStore::open(&path, CorruptionPolicy::FailOpen).unwrap();
            store.put(b"intact", b"yes").unwrap();
            store.set_fault_plan(plan);
            store.put(b"torn", b"half-written").unwrap_err();
        }
        let (store, report) = LogStore::open(&path, CorruptionPolicy::FailOpen).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(b"intact"), Some(b"yes".as_slice()));
        assert!(report.truncated_bytes > 0, "the torn half-frame was cut");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_corruption_is_caught_by_checksum_on_reopen() {
        let path = temp_path("fault-corrupt");
        let _ = std::fs::remove_file(&path);
        let plan = Arc::new(FaultPlanBuilder::new(13).store_corruption(1.0).build());
        {
            let (mut store, _) = LogStore::open(&path, CorruptionPolicy::FailOpen).unwrap();
            store.put(b"clean", b"record").unwrap();
            store.set_fault_plan(plan);
            // The corrupted append *succeeds* — silent disk corruption.
            store.put(b"dirty", b"record").unwrap();
        }
        let (store, report) = LogStore::open(&path, CorruptionPolicy::SkipAndLog).unwrap();
        assert_eq!(report.skipped_corrupt, 1);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(b"clean"), Some(b"record".as_slice()));
        assert!(RecordLog::open(&path, CorruptionPolicy::FailOpen).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
