//! A small CSS substrate: tokenizer, parser, AST, serializer and a synthetic
//! style-sheet generator.
//!
//! The paper's third case study (§5, Fig. 8) fuses three minification
//! traversals over the AST of a CSS document.  We cannot ship production
//! style sheets, so this module provides (a) a real tokenizer/parser for a
//! useful subset of CSS (rules, declarations, `property: value` pairs with
//! unit-bearing numeric values) and (b) a deterministic generator of
//! realistic synthetic style sheets used by the benchmarks — the substitution
//! is documented in DESIGN.md §3.

use std::fmt;

/// One `property: value` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Declaration {
    /// The property name (e.g. `font-weight`).
    pub property: String,
    /// The raw value text (e.g. `normal`, `100ms`, `initial`).
    pub value: String,
}

/// One rule: a selector and its declarations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Rule {
    /// The selector text.
    pub selector: String,
    /// The declarations, in source order.
    pub declarations: Vec<Declaration>,
}

/// A parsed style sheet.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Stylesheet {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Stylesheet {
    /// Total number of declarations.
    pub fn num_declarations(&self) -> usize {
        self.rules.iter().map(|r| r.declarations.len()).sum()
    }

    /// Serialized size in bytes (the quantity minification reduces).
    pub fn serialized_len(&self) -> usize {
        self.to_css().len()
    }

    /// Serializes back to CSS text.
    pub fn to_css(&self) -> String {
        let mut out = String::new();
        for rule in &self.rules {
            out.push_str(&rule.selector);
            out.push('{');
            for (i, decl) in rule.declarations.iter().enumerate() {
                if i > 0 {
                    out.push(';');
                }
                out.push_str(&decl.property);
                out.push(':');
                out.push_str(&decl.value);
            }
            out.push('}');
        }
        out
    }
}

impl fmt::Display for Stylesheet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_css())
    }
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CssParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for CssParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CSS parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for CssParseError {}

/// Parses a style sheet (selectors, `{`, `property: value;` lists, `}`).
/// Comments (`/* … */`) are skipped.
pub fn parse_css(input: &str) -> Result<Stylesheet, CssParseError> {
    let bytes: Vec<char> = input.chars().collect();
    let mut pos = 0usize;
    let mut sheet = Stylesheet::default();
    loop {
        skip_ws_and_comments(&bytes, &mut pos);
        if pos >= bytes.len() {
            break;
        }
        // Selector: everything up to '{'.
        let selector_start = pos;
        while pos < bytes.len() && bytes[pos] != '{' {
            pos += 1;
        }
        if pos >= bytes.len() {
            return Err(CssParseError {
                message: "expected `{` after selector".into(),
                offset: selector_start,
            });
        }
        let selector: String = bytes[selector_start..pos]
            .iter()
            .collect::<String>()
            .trim()
            .to_string();
        if selector.is_empty() {
            return Err(CssParseError {
                message: "empty selector".into(),
                offset: selector_start,
            });
        }
        pos += 1; // consume '{'
        let mut rule = Rule {
            selector,
            declarations: Vec::new(),
        };
        loop {
            skip_ws_and_comments(&bytes, &mut pos);
            if pos >= bytes.len() {
                return Err(CssParseError {
                    message: "unterminated rule".into(),
                    offset: pos,
                });
            }
            if bytes[pos] == '}' {
                pos += 1;
                break;
            }
            // property
            let prop_start = pos;
            while pos < bytes.len() && bytes[pos] != ':' && bytes[pos] != '}' {
                pos += 1;
            }
            if pos >= bytes.len() || bytes[pos] != ':' {
                return Err(CssParseError {
                    message: "expected `:` in declaration".into(),
                    offset: prop_start,
                });
            }
            let property: String = bytes[prop_start..pos]
                .iter()
                .collect::<String>()
                .trim()
                .to_string();
            pos += 1; // ':'
            let value_start = pos;
            while pos < bytes.len() && bytes[pos] != ';' && bytes[pos] != '}' {
                pos += 1;
            }
            let value: String = bytes[value_start..pos]
                .iter()
                .collect::<String>()
                .trim()
                .to_string();
            if bytes.get(pos) == Some(&';') {
                pos += 1;
            }
            if property.is_empty() {
                return Err(CssParseError {
                    message: "empty property name".into(),
                    offset: prop_start,
                });
            }
            rule.declarations.push(Declaration { property, value });
        }
        sheet.rules.push(rule);
    }
    Ok(sheet)
}

fn skip_ws_and_comments(bytes: &[char], pos: &mut usize) {
    loop {
        while *pos < bytes.len() && bytes[*pos].is_whitespace() {
            *pos += 1;
        }
        if *pos + 1 < bytes.len() && bytes[*pos] == '/' && bytes[*pos + 1] == '*' {
            *pos += 2;
            while *pos + 1 < bytes.len() && !(bytes[*pos] == '*' && bytes[*pos + 1] == '/') {
                *pos += 1;
            }
            *pos = (*pos + 2).min(bytes.len());
        } else {
            return;
        }
    }
}

/// Generates a deterministic synthetic style sheet with `rules` rules of a
/// few declarations each, exercising the properties and value shapes the
/// three minification passes care about (time units, font weights, `initial`
/// keywords).
pub fn generate_stylesheet(rules: usize, seed: u64) -> Stylesheet {
    let mut state = seed ^ 0x5DEECE66D;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let selectors = [
        ".card",
        "#header",
        "nav a",
        ".btn-primary",
        "article p",
        "ul > li",
    ];
    let mut sheet = Stylesheet::default();
    for r in 0..rules {
        let mut rule = Rule {
            selector: format!("{}{}", selectors[next() % selectors.len()], r),
            declarations: Vec::new(),
        };
        let num_decls = 2 + next() % 4;
        for _ in 0..num_decls {
            let decl = match next() % 5 {
                0 => Declaration {
                    property: "transition-duration".into(),
                    value: format!("{}00ms", 1 + next() % 9),
                },
                1 => Declaration {
                    property: "font-weight".into(),
                    value: if next() % 2 == 0 {
                        "normal".into()
                    } else {
                        "bold".into()
                    },
                },
                2 => Declaration {
                    property: "min-width".into(),
                    value: "initial".into(),
                },
                3 => Declaration {
                    property: "margin".into(),
                    value: format!("{}px", next() % 32),
                },
                _ => Declaration {
                    property: "color".into(),
                    value: format!("#{:06x}", next() % 0xFFFFFF),
                },
            };
            rule.declarations.push(decl);
        }
        sheet.rules.push(rule);
    }
    sheet
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simple_sheet() {
        let sheet = parse_css(
            "/* header */\n.card { font-weight: normal; transition-duration: 100ms }\n#x{min-width:initial}",
        )
        .unwrap();
        assert_eq!(sheet.rules.len(), 2);
        assert_eq!(sheet.rules[0].selector, ".card");
        assert_eq!(sheet.rules[0].declarations.len(), 2);
        assert_eq!(sheet.rules[1].declarations[0].value, "initial");
    }

    #[test]
    fn serialization_round_trips() {
        let sheet = parse_css(".a { color: red; margin: 4px } .b { font-weight: bold }").unwrap();
        let reparsed = parse_css(&sheet.to_css()).unwrap();
        assert_eq!(sheet, reparsed);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_css(".a color: red }").is_err());
        assert!(parse_css(".a { color red }").is_err());
        assert!(parse_css("{ color: red }").is_err());
        assert!(parse_css(".a { color: red").is_err());
    }

    #[test]
    fn generator_is_deterministic_and_realistic() {
        let a = generate_stylesheet(50, 1);
        let b = generate_stylesheet(50, 1);
        let c = generate_stylesheet(50, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.rules.len(), 50);
        assert!(a.num_declarations() >= 100);
        // The workload exercises all three minification opportunities.
        let css = a.to_css();
        assert!(css.contains("ms"));
        assert!(css.contains("font-weight"));
        assert!(css.contains("initial"));
        // And it parses back.
        assert_eq!(parse_css(&css).unwrap(), a);
    }
}
