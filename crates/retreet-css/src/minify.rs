//! The three minification traversals of Fig. 8 — `ConvertValues`,
//! `MinifyFont`, `ReduceInit` — implemented over the left-child/right-sibling
//! binarization of the CSS AST, plus their fused single-pass form and the
//! flat (per-declaration) reference implementation.
//!
//! The traversals mirror cssnano-style passes:
//!
//! * **ConvertValues** rewrites unit-bearing values to a shorter equivalent
//!   form (`100ms` → `.1s`),
//! * **MinifyFont** canonicalizes symbolic font weights (`normal` → `400`,
//!   `bold` → `700`),
//! * **ReduceInit** replaces `initial` with the property's shorter concrete
//!   initial value where one is known (`min-width: initial` → `min-width: 0`).

use retreet_runtime::tree::TreeNode;
use retreet_runtime::visit::{postorder_mut, run_passes, NodeVisitor};

use crate::css::{Declaration, Stylesheet};

/// The payload of an LCRS-binarized CSS AST node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CssNode {
    /// The style-sheet root.
    Root,
    /// A rule node (selector).
    Rule(String),
    /// A declaration node.
    Declaration(Declaration),
}

/// Converts a style sheet into a left-child/right-sibling binary tree:
/// a node's left child is its first child in the original n-ary AST and its
/// right child is its next sibling (the conversion described in §5 for making
/// CSS ASTs fit MONA's binary trees).
pub fn to_lcrs(sheet: &Stylesheet) -> TreeNode<CssNode> {
    let mut root = TreeNode::leaf(CssNode::Root);
    // Build the rule chain right-to-left so each rule's right child is the
    // next rule.
    let mut rule_chain: Option<TreeNode<CssNode>> = None;
    for rule in sheet.rules.iter().rev() {
        // Declaration chain for this rule.
        let mut decl_chain: Option<TreeNode<CssNode>> = None;
        for decl in rule.declarations.iter().rev() {
            let mut node = TreeNode::leaf(CssNode::Declaration(decl.clone()));
            node.right = decl_chain.take().map(Box::new);
            decl_chain = Some(node);
        }
        let mut rule_node = TreeNode::leaf(CssNode::Rule(rule.selector.clone()));
        rule_node.left = decl_chain.map(Box::new);
        rule_node.right = rule_chain.take().map(Box::new);
        rule_chain = Some(rule_node);
    }
    root.left = rule_chain.map(Box::new);
    root
}

/// Converts an LCRS tree back into a style sheet (inverse of [`to_lcrs`]).
pub fn from_lcrs(tree: &TreeNode<CssNode>) -> Stylesheet {
    let mut sheet = Stylesheet::default();
    let mut rule_cursor = tree.left.as_deref();
    while let Some(rule_node) = rule_cursor {
        let CssNode::Rule(selector) = &rule_node.value else {
            break;
        };
        let mut rule = crate::css::Rule {
            selector: selector.clone(),
            declarations: Vec::new(),
        };
        let mut decl_cursor = rule_node.left.as_deref();
        while let Some(decl_node) = decl_cursor {
            if let CssNode::Declaration(decl) = &decl_node.value {
                rule.declarations.push(decl.clone());
            }
            decl_cursor = decl_node.right.as_deref();
        }
        sheet.rules.push(rule);
        rule_cursor = rule_node.right.as_deref();
    }
    sheet
}

/// `ConvertValues`: `<n>00ms` → `.<n>s`, `1000ms` → `1s`.
pub fn convert_values_decl(decl: &mut Declaration) {
    if let Some(ms) = decl.value.strip_suffix("ms") {
        if let Ok(amount) = ms.trim().parse::<u64>() {
            if amount % 1000 == 0 {
                decl.value = format!("{}s", amount / 1000);
            } else if amount % 100 == 0 {
                decl.value = format!(".{}s", amount / 100);
            }
        }
    }
}

/// `MinifyFont`: `font-weight: normal|bold` → numeric weights.
pub fn minify_font_decl(decl: &mut Declaration) {
    if decl.property == "font-weight" {
        match decl.value.as_str() {
            "normal" => decl.value = "400".into(),
            "bold" => decl.value = "700".into(),
            _ => {}
        }
    }
}

/// `ReduceInit`: replace `initial` by a shorter concrete initial value when
/// one is known for the property.
pub fn reduce_init_decl(decl: &mut Declaration) {
    if decl.value == "initial" {
        let shorter = match decl.property.as_str() {
            "min-width" | "min-height" | "margin" | "padding" => Some("0"),
            "font-weight" => Some("400"),
            _ => None,
        };
        if let Some(replacement) = shorter {
            if replacement.len() < decl.value.len() {
                decl.value = replacement.into();
            }
        }
    }
}

fn declaration_visitor(apply: impl Fn(&mut Declaration) + Sync) -> impl NodeVisitor<CssNode> {
    move |node: &mut CssNode, _: Option<&CssNode>, _: Option<&CssNode>| {
        if let CssNode::Declaration(decl) = node {
            apply(decl);
        }
    }
}

/// The `ConvertValues` traversal as a tree visitor.
pub fn convert_values_visitor() -> impl NodeVisitor<CssNode> {
    declaration_visitor(convert_values_decl)
}

/// The `MinifyFont` traversal as a tree visitor.
pub fn minify_font_visitor() -> impl NodeVisitor<CssNode> {
    declaration_visitor(minify_font_decl)
}

/// The `ReduceInit` traversal as a tree visitor.
pub fn reduce_init_visitor() -> impl NodeVisitor<CssNode> {
    declaration_visitor(reduce_init_decl)
}

/// Minifies a style sheet with three *separate* traversals of the LCRS tree
/// (the unfused baseline of Fig. 8's `Main`).
pub fn minify_unfused(sheet: &Stylesheet) -> Stylesheet {
    let mut tree = to_lcrs(sheet);
    let convert = convert_values_visitor();
    let font = minify_font_visitor();
    let init = reduce_init_visitor();
    run_passes(&mut tree, &[&convert, &font, &init]);
    from_lcrs(&tree)
}

/// Minifies a style sheet with the *fused* single traversal (the
/// transformation §5 verifies).
pub fn minify_fused(sheet: &Stylesheet) -> Stylesheet {
    let mut tree = to_lcrs(sheet);
    let fused = |node: &mut CssNode, _: Option<&CssNode>, _: Option<&CssNode>| {
        if let CssNode::Declaration(decl) = node {
            convert_values_decl(decl);
            minify_font_decl(decl);
            reduce_init_decl(decl);
        }
    };
    postorder_mut(&mut tree, &fused);
    from_lcrs(&tree)
}

/// A flat reference minifier operating directly on the declaration list
/// (no trees at all) — the ground truth both traversal versions are compared
/// against.
pub fn minify_reference(sheet: &Stylesheet) -> Stylesheet {
    let mut out = sheet.clone();
    for rule in &mut out.rules {
        for decl in &mut rule.declarations {
            convert_values_decl(decl);
            minify_font_decl(decl);
            reduce_init_decl(decl);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::css::{generate_stylesheet, parse_css};

    #[test]
    fn lcrs_round_trip() {
        let sheet = parse_css(".a{color:red;margin:4px}.b{font-weight:bold}").unwrap();
        let tree = to_lcrs(&sheet);
        assert_eq!(from_lcrs(&tree), sheet);
        // Root + 2 rules + 3 declarations.
        assert_eq!(tree.len(), 6);
    }

    #[test]
    fn individual_passes() {
        let mut decl = Declaration {
            property: "transition-duration".into(),
            value: "100ms".into(),
        };
        convert_values_decl(&mut decl);
        assert_eq!(decl.value, ".1s");

        let mut decl = Declaration {
            property: "transition-duration".into(),
            value: "2000ms".into(),
        };
        convert_values_decl(&mut decl);
        assert_eq!(decl.value, "2s");

        let mut decl = Declaration {
            property: "font-weight".into(),
            value: "normal".into(),
        };
        minify_font_decl(&mut decl);
        assert_eq!(decl.value, "400");

        let mut decl = Declaration {
            property: "min-width".into(),
            value: "initial".into(),
        };
        reduce_init_decl(&mut decl);
        assert_eq!(decl.value, "0");

        // Unknown properties keep `initial`.
        let mut decl = Declaration {
            property: "color".into(),
            value: "initial".into(),
        };
        reduce_init_decl(&mut decl);
        assert_eq!(decl.value, "initial");
    }

    #[test]
    fn fused_and_unfused_minification_agree_with_the_reference() {
        for seed in 0..5 {
            let sheet = generate_stylesheet(40, seed);
            let reference = minify_reference(&sheet);
            assert_eq!(minify_unfused(&sheet), reference, "seed {seed}");
            assert_eq!(minify_fused(&sheet), reference, "seed {seed}");
        }
    }

    #[test]
    fn minification_reduces_size() {
        let sheet = generate_stylesheet(100, 3);
        let minified = minify_fused(&sheet);
        assert!(minified.serialized_len() < sheet.serialized_len());
        assert_eq!(minified.num_declarations(), sheet.num_declarations());
    }

    #[test]
    fn example_from_the_paper_text() {
        // "100ms will be represented as .1s", "font-weight: normal will be
        // rewritten to font-weight: 400", "min-width: initial will be
        // converted to min-width: 0".
        let sheet = parse_css(".x{transition-duration:100ms;font-weight:normal;min-width:initial}")
            .unwrap();
        let out = minify_fused(&sheet);
        let css = out.to_css();
        assert!(css.contains("transition-duration:.1s"));
        assert!(css.contains("font-weight:400"));
        assert!(css.contains("min-width:0"));
    }
}
