//! Bridge between concrete style sheets and the Retreet analysis model.
//!
//! §5 of the paper analyses the Fig. 8 traversals as Retreet programs whose
//! string conditions have been replaced by arithmetic conditions over integer
//! fields.  This module performs that abstraction on real style sheets: every
//! LCRS node of the CSS AST becomes a node of an integer-field
//! [`ValueTree`] carrying
//!
//! * `kind`   — 1 when `ConvertValues` would rewrite the declaration,
//! * `prop`   — 1 when `MinifyFont` would rewrite it,
//! * `initial`— the length of the literal `initial` when `ReduceInit`
//!   applies (0 otherwise),
//! * `value`  — the serialized length of the value text,
//!
//! which is exactly the field vocabulary of the corpus programs
//! `css_minify_original` / `css_minify_fused`.  The experiments then check the
//! fusion on those programs *and* validate, on the concrete side, that the
//! fused executable minifier agrees with the unfused one.

use retreet_analysis::vtree::ValueTree;
use retreet_lang::corpus;
use retreet_runtime::tree::TreeNode;
use retreet_transform::{fuse_main_passes, CertifiedTransform, TransformError};
use retreet_verify::{Query, Verdict, Verifier, VerifyError};

use crate::css::Stylesheet;
use crate::minify::{to_lcrs, CssNode};

/// Converts a style sheet into the integer-field tree the Retreet analysis
/// reasons about (same shape as the LCRS AST).
pub fn stylesheet_to_value_tree(sheet: &Stylesheet) -> ValueTree {
    let lcrs = to_lcrs(sheet);
    let mut tree = ValueTree::single();
    let root = tree.root();
    fill(&lcrs, &mut tree, root);
    tree
}

fn fill(node: &TreeNode<CssNode>, tree: &mut ValueTree, at: retreet_analysis::vtree::NodeId) {
    let (kind, prop, initial, value) = match &node.value {
        CssNode::Root | CssNode::Rule(_) => (0, 0, 0, 0),
        CssNode::Declaration(decl) => {
            let kind = i64::from(decl.value.ends_with("ms"));
            let prop = i64::from(
                decl.property == "font-weight" && (decl.value == "normal" || decl.value == "bold"),
            );
            let initial = if decl.value == "initial" {
                "initial".len() as i64
            } else {
                0
            };
            (kind, prop, initial, decl.value.len() as i64)
        }
    };
    tree.set_field(at, "kind", kind);
    tree.set_field(at, "prop", prop);
    tree.set_field(at, "initial", initial);
    tree.set_field(at, "value", value);
    if let Some(left) = node.left.as_deref() {
        let child = tree.add_left(at);
        fill(left, tree, child);
    }
    if let Some(right) = node.right.as_deref() {
        let child = tree.add_right(at);
        fill(right, tree, child);
    }
}

/// Runs the §5 CSS query through a shared [`Verifier`]: is fusing the three
/// minification traversals into a single pass a correct transformation?
/// Returns the unified verdict (expected: equivalent) with engine
/// provenance and timing.
pub fn verify_css_fusion_with(verifier: &Verifier) -> Result<Verdict, VerifyError> {
    verifier.verify(Query::Equivalence(
        &corpus::css_minify_original(),
        &corpus::css_minify_fused(),
    ))
}

/// Synthesizes the fused single-pass minifier *from the three-pass
/// original* through the `retreet-transform` layer and returns the
/// certified transform: the generated program (structurally the Fig. 8
/// fusion), validated and parser-canonical, with the equivalence verdict —
/// engine provenance included — as its certificate.
///
/// This replaces comparing against a hand-written fused program: the fused
/// traversal the certificate licenses *is* the one the transform layer
/// emitted.
pub fn certify_css_fusion(verifier: &Verifier) -> Result<CertifiedTransform, TransformError> {
    fuse_main_passes(verifier, &corpus::css_minify_original())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::css::generate_stylesheet;
    use crate::minify::{minify_fused, minify_unfused};

    #[test]
    fn value_tree_mirrors_the_ast_shape() {
        let sheet = generate_stylesheet(10, 1);
        let lcrs = to_lcrs(&sheet);
        let tree = stylesheet_to_value_tree(&sheet);
        assert_eq!(tree.len(), lcrs.len());
    }

    #[test]
    fn declaration_fields_reflect_pass_applicability() {
        let sheet = crate::css::parse_css(
            ".x{transition-duration:100ms;font-weight:normal;min-width:initial}",
        )
        .unwrap();
        let tree = stylesheet_to_value_tree(&sheet);
        // Some node has kind = 1 (the ms declaration), some has prop = 1, and
        // some has initial = 7.
        let nodes: Vec<_> = tree.nodes().collect();
        assert!(nodes.iter().any(|&n| tree.field(n, "kind") == 1));
        assert!(nodes.iter().any(|&n| tree.field(n, "prop") == 1));
        assert!(nodes.iter().any(|&n| tree.field(n, "initial") == 7));
    }

    #[test]
    fn the_verified_fusion_is_the_executed_fusion() {
        // Analysis verdict (E3): the Fig. 8 fusion is correct…
        let verifier = Verifier::builder().equiv_nodes(4).valuations(2).build();
        let verdict = verify_css_fusion_with(&verifier).expect("well-formed corpus programs");
        assert!(verdict.is_equivalent());
        // …and the executable minifier behaves identically fused or unfused.
        for seed in 0..3 {
            let sheet = generate_stylesheet(30, seed);
            assert_eq!(minify_fused(&sheet), minify_unfused(&sheet));
        }
    }

    #[test]
    fn the_synthesized_fusion_matches_the_hand_written_one() {
        // The transform layer fuses the three-pass original into a single
        // traversal on its own; the certificate is an equivalence verdict
        // and the generated program has the hand-written fusion's shape.
        let verifier = Verifier::builder().equiv_nodes(4).valuations(2).build();
        let certified = certify_css_fusion(&verifier).expect("the Fig. 8 fusion synthesizes");
        assert!(certified.certificate.verdict.is_equivalent());
        let main = certified.transformed.main().unwrap();
        assert_eq!(
            main.blocks().iter().filter(|b| b.is_call()).count(),
            1,
            "the synthesized Main performs a single fused traversal call"
        );
        // Certifying the synthesized program against the hand-written fused
        // corpus program also succeeds (they are behaviourally identical).
        let cross = verifier
            .verify(Query::Equivalence(
                &certified.transformed,
                &corpus::css_minify_fused(),
            ))
            .expect("well-formed");
        assert!(cross.is_equivalent());
    }
}
