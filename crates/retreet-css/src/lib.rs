//! # retreet-css — the CSS-minification case-study substrate (§5, Fig. 8)
//!
//! The paper's third case study fuses three CSS-minification traversals over
//! the (binarized) AST of a style sheet.  This crate provides everything that
//! experiment needs, built from scratch:
//!
//! * [`css`] — a tokenizer/parser for a practical subset of CSS, a
//!   serializer, and a deterministic synthetic style-sheet generator
//!   (substituting for production style sheets; see DESIGN.md §3);
//! * [`minify`] — the left-child/right-sibling binarization of the AST, the
//!   three passes (`ConvertValues`, `MinifyFont`, `ReduceInit`) as tree
//!   visitors, their fused single-pass form, and a flat reference
//!   implementation they are validated against;
//! * [`analysis_model`] — a bridge that converts a style sheet into the
//!   integer-field `ValueTree` the analysis engines run on, so the fusion
//!   verified by `retreet-analysis` (over the corpus programs of Fig. 8) is
//!   exactly the fusion executed here.
//!
//! ```
//! use retreet_css::css::generate_stylesheet;
//! use retreet_css::minify::{minify_fused, minify_unfused};
//!
//! let sheet = generate_stylesheet(32, 7);
//! assert_eq!(minify_fused(&sheet), minify_unfused(&sheet));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis_model;
pub mod css;
pub mod minify;

pub use css::{generate_stylesheet, parse_css, CssParseError, Declaration, Rule, Stylesheet};
pub use minify::{minify_fused, minify_reference, minify_unfused, CssNode};
