//! Property-based tests (proptest) of the NFTA boolean algebra.
//!
//! The automata engine's unbounded verdicts rest entirely on the
//! correctness of the `Nfta` operations: intersection, union, complement
//! via determinization, trimming, emptiness, and language inclusion.  These
//! properties pin the algebra laws over randomly generated automata and
//! randomly shaped labeled trees, so a regression in any one operation
//! breaks a law rather than silently flipping a verdict.

use proptest::prelude::*;
use retreet_mso::automata::{Nfta, Rule};
use retreet_mso::tree::LabeledTree;
use std::collections::BTreeSet;

/// Decodes a random automaton from raw sampled integers.  Every decoded
/// automaton is well-formed (states `0..num_states`, symbols `0..2^bits`);
/// rule shapes are drawn from the full `(left?, right?, symbol, target)`
/// space so unreachable states, dead states, and missing-child rules all
/// occur in the sample.
fn decode_nfta(bits: u32, num_states: usize, rule_seeds: &[u64], accept_mask: u64) -> Nfta {
    let states = num_states as u64;
    let symbols = 1u64 << bits;
    let rules = rule_seeds
        .iter()
        .map(|&seed| {
            // Mixed-radix decode: child slots range over {None} ∪ states.
            let mut v = seed;
            let child = |v: &mut u64| {
                let c = *v % (states + 1);
                *v /= states + 1;
                if c == 0 {
                    None
                } else {
                    Some((c - 1) as usize)
                }
            };
            let left = child(&mut v);
            let right = child(&mut v);
            let symbol = (v % symbols) as u32;
            v /= symbols;
            let target = (v % states) as usize;
            Rule {
                left,
                right,
                symbol,
                target,
            }
        })
        .collect();
    let accepting: BTreeSet<usize> = (0..num_states)
        .filter(|s| accept_mask >> s & 1 == 1)
        .collect();
    Nfta {
        num_states,
        bits,
        rules,
        accepting,
    }
}

/// Decodes a random labeled tree: `shape` drives left/right/stop insertion
/// decisions, `labels` drives the per-node label bitmask (restricted to the
/// automaton's `bits`).
fn decode_tree(bits: u32, shape: u64, labels: u64, max_nodes: usize) -> LabeledTree {
    let mut tree = LabeledTree::single();
    let mut frontier = vec![tree.root()];
    let mut shape = shape;
    while tree.len() < max_nodes && !frontier.is_empty() {
        let pick = (shape % frontier.len() as u64) as usize;
        shape /= frontier.len().max(2) as u64;
        let parent = frontier.swap_remove(pick);
        match shape % 4 {
            0 => {} // leaf: neither child
            1 => frontier.push(tree.add_left(parent)),
            2 => frontier.push(tree.add_right(parent)),
            _ => {
                frontier.push(tree.add_left(parent));
                if tree.len() < max_nodes {
                    frontier.push(tree.add_right(parent));
                }
            }
        }
        shape = shape / 4 + 0x9e37_79b9;
    }
    let mut labels = labels;
    for node in tree.nodes().collect::<Vec<_>>() {
        for bit in 0..bits {
            if labels & 1 == 1 {
                tree.add_label(node, bit);
            }
            labels = labels.rotate_right(1);
        }
        labels = labels.rotate_left(7).wrapping_add(0x517c_c1b7);
    }
    tree
}

proptest! {
    /// `L(A) ∩ L(¬A) = ∅` — the complement really is a complement.  This
    /// exercises determinize + complement + intersect + emptiness in one
    /// law, the exact composition the validity engine runs.
    #[test]
    fn intersection_with_complement_is_empty(
        bits in 1u32..3,
        num_states in 1usize..4,
        rule_seeds in proptest::collection::vec(0u64..1_000_000, 0..12),
        accept_mask in any::<u64>(),
    ) {
        let a = decode_nfta(bits, num_states, &rule_seeds, accept_mask);
        prop_assert!(a.intersect(&a.complement()).is_empty());
    }

    /// Determinization preserves the accepted language on sampled trees,
    /// and never loses or gains emptiness.
    #[test]
    fn determinize_preserves_accepts(
        bits in 1u32..3,
        num_states in 1usize..4,
        rule_seeds in proptest::collection::vec(0u64..1_000_000, 0..12),
        accept_mask in any::<u64>(),
        shape in any::<u64>(),
        labels in any::<u64>(),
        max_nodes in 1usize..8,
    ) {
        let a = decode_nfta(bits, num_states, &rule_seeds, accept_mask);
        let d = a.determinize();
        let tree = decode_tree(bits, shape, labels, max_nodes);
        prop_assert_eq!(a.accepts(&tree), d.accepts(&tree));
        prop_assert_eq!(a.is_empty(), d.is_empty());
    }

    /// Trimming is a language identity: it removes only unreachable and
    /// dead states.
    #[test]
    fn trim_preserves_the_language(
        bits in 1u32..3,
        num_states in 1usize..5,
        rule_seeds in proptest::collection::vec(0u64..1_000_000, 0..14),
        accept_mask in any::<u64>(),
        shape in any::<u64>(),
        labels in any::<u64>(),
        max_nodes in 1usize..8,
    ) {
        let a = decode_nfta(bits, num_states, &rule_seeds, accept_mask);
        let t = a.trim();
        let tree = decode_tree(bits, shape, labels, max_nodes);
        prop_assert_eq!(a.accepts(&tree), t.accepts(&tree));
        prop_assert_eq!(a.is_empty(), t.is_empty());
    }

    /// Union and intersection compute the pointwise boolean of membership,
    /// and complement flips it.
    #[test]
    fn boolean_operations_match_membership(
        bits in 1u32..3,
        num_states in 1usize..4,
        seeds_a in proptest::collection::vec(0u64..1_000_000, 0..10),
        seeds_b in proptest::collection::vec(0u64..1_000_000, 0..10),
        masks in (any::<u64>(), any::<u64>()),
        shape in any::<u64>(),
        labels in any::<u64>(),
        max_nodes in 1usize..8,
    ) {
        let a = decode_nfta(bits, num_states, &seeds_a, masks.0);
        let b = decode_nfta(bits, num_states, &seeds_b, masks.1);
        let tree = decode_tree(bits, shape, labels, max_nodes);
        let (in_a, in_b) = (a.accepts(&tree), b.accepts(&tree));
        prop_assert_eq!(a.union(&b).accepts(&tree), in_a || in_b);
        prop_assert_eq!(a.intersect(&b).accepts(&tree), in_a && in_b);
        prop_assert_eq!(a.complement().accepts(&tree), !in_a);
    }

    /// Inclusion is consistent with the lattice: `A ⊆ A ∪ B` and
    /// `A ∩ B ⊆ A` always hold, and an inclusion verdict agrees with the
    /// emptiness of the difference.
    #[test]
    fn inclusion_agrees_with_the_lattice(
        bits in 1u32..3,
        num_states in 1usize..4,
        seeds_a in proptest::collection::vec(0u64..1_000_000, 0..10),
        seeds_b in proptest::collection::vec(0u64..1_000_000, 0..10),
        masks in (any::<u64>(), any::<u64>()),
    ) {
        let a = decode_nfta(bits, num_states, &seeds_a, masks.0);
        let b = decode_nfta(bits, num_states, &seeds_b, masks.1);
        prop_assert!(a.included_in(&a.union(&b)));
        prop_assert!(a.intersect(&b).included_in(&a));
        prop_assert_eq!(
            a.included_in(&b),
            a.intersect(&b.complement()).is_empty()
        );
    }

    /// A nonempty automaton's extracted example tree is genuinely accepted
    /// — the witness extraction behind `Outcome::Invalid` is sound.
    #[test]
    fn example_trees_are_accepted(
        bits in 1u32..3,
        num_states in 1usize..4,
        rule_seeds in proptest::collection::vec(0u64..1_000_000, 0..12),
        accept_mask in any::<u64>(),
    ) {
        let a = decode_nfta(bits, num_states, &rule_seeds, accept_mask);
        match a.example_tree() {
            Some(tree) => prop_assert!(a.accepts(&tree), "example tree rejected"),
            None => prop_assert!(a.is_empty()),
        }
    }
}
