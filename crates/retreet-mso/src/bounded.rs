//! Bounded validity and satisfiability checking.
//!
//! MONA decides WS2S over *all* finite binary trees.  This module provides
//! the bounded substitute used by the reproduction: it enumerates every
//! binary tree shape up to a node bound and model-checks the formula on each
//! (free second-order variables, if any, are enumerated as labelings).  A
//! counterexample is therefore always a concrete tree, exactly like the
//! counterexamples MONA returns; a "valid up to bound" verdict plays the role
//! of MONA's unbounded "valid" in the experiment harness, and the bound is
//! reported alongside so results are never over-claimed.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::checker::{eval, Assignment};
use crate::formula::Formula;
use crate::tree::{shared_trees_up_to, shared_trees_with, LabeledTree};

/// The verdict of a bounded validity query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundedVerdict {
    /// The formula held on every enumerated tree (up to the bound).
    ValidUpTo {
        /// The node bound that was exhausted.
        max_nodes: usize,
        /// How many models were checked.
        trees_checked: usize,
    },
    /// A tree on which the formula fails.
    CounterExample(LabeledTree),
}

impl BoundedVerdict {
    /// True for the `ValidUpTo` case.
    pub fn is_valid(&self) -> bool {
        matches!(self, BoundedVerdict::ValidUpTo { .. })
    }

    /// The counterexample tree, if any.
    pub fn counterexample(&self) -> Option<&LabeledTree> {
        match self {
            BoundedVerdict::CounterExample(tree) => Some(tree),
            BoundedVerdict::ValidUpTo { .. } => None,
        }
    }
}

/// Checks that a *closed* formula holds on every binary tree with at most
/// `max_nodes` nodes.
pub fn check_validity(formula: &Formula, max_nodes: usize) -> BoundedVerdict {
    static NEVER_CANCELLED: AtomicBool = AtomicBool::new(false);
    check_validity_cancellable(formula, max_nodes, &NEVER_CANCELLED)
        .expect("never-raised cancel flag cannot cancel the check")
}

/// [`check_validity`] with a cooperative cancel flag: returns `None` (and
/// no verdict) as soon as `cancel` is observed raised.  The verifier
/// façade's parallel portfolio raises the flag on losing engines once a
/// winner is decided.
///
/// The flag is checked once per evaluated model *and* once per tree-size
/// tranche: the corpus is materialized through [`shared_trees_with`] one
/// size at a time (instead of [`shared_trees_up_to`]'s monolithic build,
/// which at 13 nodes spends seconds and hundreds of MB before any check
/// could run), so a lost run reacts within one tranche rather than after
/// the whole Catalan-sized corpus exists.  Model order is unchanged —
/// smallest trees first — so counterexamples are identical to
/// [`check_validity`]'s.
pub fn check_validity_cancellable(
    formula: &Formula,
    max_nodes: usize,
    cancel: &AtomicBool,
) -> Option<BoundedVerdict> {
    debug_assert!(
        formula.free_fo_vars().is_empty() && formula.free_so_vars().is_empty(),
        "bounded validity requires a closed formula; quantify the free variables"
    );
    let mut trees_checked = 0;
    for size in 1..=max_nodes {
        if cancel.load(Ordering::Relaxed) {
            return None;
        }
        for tree in shared_trees_with(size).iter() {
            if cancel.load(Ordering::Relaxed) {
                return None;
            }
            trees_checked += 1;
            if !eval(formula, tree, &Assignment::new()) {
                return Some(BoundedVerdict::CounterExample(tree.clone()));
            }
        }
    }
    Some(BoundedVerdict::ValidUpTo {
        max_nodes,
        trees_checked,
    })
}

/// Checks whether a *closed* formula is satisfiable by some binary tree with
/// at most `max_nodes` nodes; returns a witness if so.
pub fn check_satisfiability(formula: &Formula, max_nodes: usize) -> Option<LabeledTree> {
    shared_trees_up_to(max_nodes)
        .iter()
        .find(|tree| eval(formula, tree, &Assignment::new()))
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::FoVar;

    /// ∀x. reach(root, x) — "the root reaches every node".
    fn root_reaches_all() -> Formula {
        Formula::forall_fo(
            "r",
            Formula::implies(
                Formula::Root(FoVar::new("r")),
                Formula::forall_fo("x", Formula::Reach(FoVar::new("r"), FoVar::new("x"))),
            ),
        )
    }

    #[test]
    fn tautology_is_valid_up_to_bound() {
        let verdict = check_validity(&root_reaches_all(), 5);
        assert!(verdict.is_valid());
        match verdict {
            BoundedVerdict::ValidUpTo { trees_checked, .. } => {
                // Catalan(1..=5) = 1 + 2 + 5 + 14 + 42.
                assert_eq!(trees_checked, 64);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn falsifiable_formula_yields_a_counterexample() {
        // "every node is a leaf" fails as soon as a tree has two nodes.
        let formula = Formula::forall_fo("x", Formula::Leaf(FoVar::new("x")));
        let verdict = check_validity(&formula, 3);
        let tree = verdict.counterexample().expect("counterexample");
        assert!(tree.len() >= 2);
    }

    #[test]
    fn satisfiability_finds_a_witness() {
        // "there are at least three nodes in a left chain".
        let formula = Formula::exists_fo(
            "a",
            Formula::exists_fo(
                "b",
                Formula::exists_fo(
                    "c",
                    Formula::and(
                        Formula::Left(FoVar::new("a"), FoVar::new("b")),
                        Formula::Left(FoVar::new("b"), FoVar::new("c")),
                    ),
                ),
            ),
        );
        let witness = check_satisfiability(&formula, 3).expect("witness");
        assert_eq!(witness.len(), 3);
        assert!(check_satisfiability(&formula, 2).is_none());
    }

    #[test]
    fn raised_cancel_flag_aborts_bounded_validity_without_a_verdict() {
        let cancel = AtomicBool::new(true);
        assert!(check_validity_cancellable(&root_reaches_all(), 5, &cancel).is_none());
        let cancel = AtomicBool::new(false);
        let verdict = check_validity_cancellable(&root_reaches_all(), 5, &cancel).unwrap();
        assert!(verdict.is_valid());
    }

    #[test]
    fn unsatisfiable_formula_has_no_witness() {
        let formula = Formula::exists_fo(
            "x",
            Formula::and(
                Formula::Root(FoVar::new("x")),
                Formula::not(Formula::Reach(FoVar::new("x"), FoVar::new("x"))),
            ),
        );
        assert!(check_satisfiability(&formula, 4).is_none());
    }
}
