//! Bottom-up nondeterministic finite tree automata (NFTA) over labeled
//! binary trees.
//!
//! This is the decision-procedure substrate that replaces MONA in the
//! reproduction: the classical Thatcher–Wright correspondence compiles MSO
//! formulas over trees to tree automata ([`mod@crate::compile`]), and the
//! automaton operations implemented here — intersection, union, complement
//! via determinization, projection, emptiness — give an unbounded decision
//! procedure for the compiled fragment.
//!
//! The alphabet is `2^bits` label bitmasks: the tree node's label set,
//! restricted to the variables of the formula being decided.  Missing
//! children are handled by rules whose child slot is `None`.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::tree::{LabeledTree, NodeId};

/// A transition rule: `(left_state?, right_state?, symbol) → target`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Rule {
    /// Required state of the left child (`None` when the node must have no
    /// left child).
    pub left: Option<usize>,
    /// Required state of the right child.
    pub right: Option<usize>,
    /// The node's label bitmask.
    pub symbol: u32,
    /// The state assigned to the node.
    pub target: usize,
}

/// The representative rule inhabiting a state during the witness-building
/// emptiness fixpoint of [`Nfta::example_tree`]:
/// `(symbol, left_state?, right_state?)`.
type WitnessRule = (u32, Option<usize>, Option<usize>);

/// A bottom-up nondeterministic finite tree automaton.
#[derive(Debug, Clone)]
pub struct Nfta {
    /// Number of states (numbered `0..num_states`).
    pub num_states: usize,
    /// Number of label bits; the alphabet is `0..2^bits`.
    pub bits: u32,
    /// Transition rules.
    pub rules: Vec<Rule>,
    /// Accepting states (checked at the root).
    pub accepting: BTreeSet<usize>,
}

impl Nfta {
    /// The automaton accepting nothing.
    pub fn empty(bits: u32) -> Self {
        Nfta {
            num_states: 1,
            bits,
            rules: Vec::new(),
            accepting: BTreeSet::new(),
        }
    }

    /// The automaton accepting every labeled tree.
    pub fn universal(bits: u32) -> Self {
        let mut rules = Vec::new();
        for symbol in 0..(1u32 << bits) {
            for left in [None, Some(0)] {
                for right in [None, Some(0)] {
                    rules.push(Rule {
                        left,
                        right,
                        symbol,
                        target: 0,
                    });
                }
            }
        }
        Nfta {
            num_states: 1,
            bits,
            rules,
            accepting: BTreeSet::from([0]),
        }
    }

    /// Number of alphabet symbols.
    pub fn alphabet_size(&self) -> u32 {
        1 << self.bits
    }

    /// Runs the automaton bottom-up on a tree, returning the set of states
    /// reachable at the root.
    pub fn run(&self, tree: &LabeledTree) -> BTreeSet<usize> {
        let mut memo: HashMap<NodeId, BTreeSet<usize>> = HashMap::new();
        self.run_node(tree, tree.root(), &mut memo);
        memo.remove(&tree.root()).unwrap_or_default()
    }

    fn run_node(
        &self,
        tree: &LabeledTree,
        node: NodeId,
        memo: &mut HashMap<NodeId, BTreeSet<usize>>,
    ) {
        let left_states = match tree.left(node) {
            Some(child) => {
                self.run_node(tree, child, memo);
                Some(memo[&child].clone())
            }
            None => None,
        };
        let right_states = match tree.right(node) {
            Some(child) => {
                self.run_node(tree, child, memo);
                Some(memo[&child].clone())
            }
            None => None,
        };
        let symbol = tree.label_mask(node, self.bits);
        let mut states = BTreeSet::new();
        for rule in &self.rules {
            if rule.symbol != symbol {
                continue;
            }
            let left_ok = match (&rule.left, &left_states) {
                (None, None) => true,
                (Some(q), Some(states)) => states.contains(q),
                _ => false,
            };
            let right_ok = match (&rule.right, &right_states) {
                (None, None) => true,
                (Some(q), Some(states)) => states.contains(q),
                _ => false,
            };
            if left_ok && right_ok {
                states.insert(rule.target);
            }
        }
        memo.insert(node, states);
    }

    /// True when the automaton accepts the tree.
    pub fn accepts(&self, tree: &LabeledTree) -> bool {
        self.run(tree).iter().any(|q| self.accepting.contains(q))
    }

    /// Product intersection: accepts exactly the trees accepted by both.
    pub fn intersect(&self, other: &Nfta) -> Nfta {
        assert_eq!(
            self.bits, other.bits,
            "intersection requires a common alphabet"
        );
        let pair = |a: usize, b: usize| a * other.num_states + b;
        let mut rules = Vec::new();
        for ra in &self.rules {
            for rb in &other.rules {
                if ra.symbol != rb.symbol {
                    continue;
                }
                let left = match (ra.left, rb.left) {
                    (None, None) => None,
                    (Some(a), Some(b)) => Some(pair(a, b)),
                    _ => continue,
                };
                let right = match (ra.right, rb.right) {
                    (None, None) => None,
                    (Some(a), Some(b)) => Some(pair(a, b)),
                    _ => continue,
                };
                rules.push(Rule {
                    left,
                    right,
                    symbol: ra.symbol,
                    target: pair(ra.target, rb.target),
                });
            }
        }
        let mut accepting = BTreeSet::new();
        for &a in &self.accepting {
            for &b in &other.accepting {
                accepting.insert(pair(a, b));
            }
        }
        rules.sort();
        rules.dedup();
        Nfta {
            num_states: self.num_states * other.num_states,
            bits: self.bits,
            rules,
            accepting,
        }
        .trim()
    }

    /// Removes states that cannot appear in any run (not bottom-up
    /// inhabited), shrinking rule sets after product constructions.
    pub fn trim(&self) -> Nfta {
        let mut inhabited: BTreeSet<usize> = BTreeSet::new();
        loop {
            let mut changed = false;
            for rule in &self.rules {
                if inhabited.contains(&rule.target) {
                    continue;
                }
                let left_ok = rule.left.is_none_or(|q| inhabited.contains(&q));
                let right_ok = rule.right.is_none_or(|q| inhabited.contains(&q));
                if left_ok && right_ok {
                    inhabited.insert(rule.target);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Renumber the inhabited states densely.
        let remap: HashMap<usize, usize> = inhabited
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let rules = self
            .rules
            .iter()
            .filter(|rule| {
                remap.contains_key(&rule.target)
                    && rule.left.is_none_or(|q| remap.contains_key(&q))
                    && rule.right.is_none_or(|q| remap.contains_key(&q))
            })
            .map(|rule| Rule {
                left: rule.left.map(|q| remap[&q]),
                right: rule.right.map(|q| remap[&q]),
                symbol: rule.symbol,
                target: remap[&rule.target],
            })
            .collect();
        let accepting = self
            .accepting
            .iter()
            .filter_map(|q| remap.get(q).copied())
            .collect();
        Nfta {
            num_states: remap.len().max(1),
            bits: self.bits,
            rules,
            accepting,
        }
    }

    /// Union: accepts the trees accepted by either automaton.
    pub fn union(&self, other: &Nfta) -> Nfta {
        assert_eq!(self.bits, other.bits, "union requires a common alphabet");
        let offset = self.num_states;
        let mut rules = self.rules.clone();
        for rule in &other.rules {
            rules.push(Rule {
                left: rule.left.map(|q| q + offset),
                right: rule.right.map(|q| q + offset),
                symbol: rule.symbol,
                target: rule.target + offset,
            });
        }
        let mut accepting = self.accepting.clone();
        accepting.extend(other.accepting.iter().map(|q| q + offset));
        Nfta {
            num_states: self.num_states + other.num_states,
            bits: self.bits,
            rules,
            accepting,
        }
    }

    /// Determinizes the automaton via the subset construction, producing an
    /// equivalent automaton whose runs are unique (one reachable state per
    /// node).
    pub fn determinize(&self) -> Nfta {
        // Deterministic states are subsets of NFTA states; index them as they
        // are discovered.
        let mut subset_index: BTreeMap<BTreeSet<usize>, usize> = BTreeMap::new();
        let mut subsets: Vec<BTreeSet<usize>> = Vec::new();
        let mut rules: Vec<Rule> = Vec::new();
        let intern = |set: BTreeSet<usize>,
                      subsets: &mut Vec<BTreeSet<usize>>,
                      subset_index: &mut BTreeMap<BTreeSet<usize>, usize>|
         -> usize {
            if let Some(&idx) = subset_index.get(&set) {
                return idx;
            }
            let idx = subsets.len();
            subsets.push(set.clone());
            subset_index.insert(set, idx);
            idx
        };

        // Group NFTA rules by symbol up front so the successor computation
        // only scans the relevant rules.
        let mut by_symbol: HashMap<u32, Vec<&Rule>> = HashMap::new();
        for rule in &self.rules {
            by_symbol.entry(rule.symbol).or_default().push(rule);
        }
        let successor = |left: Option<&BTreeSet<usize>>,
                         right: Option<&BTreeSet<usize>>,
                         symbol: u32|
         -> BTreeSet<usize> {
            let mut out = BTreeSet::new();
            for rule in by_symbol.get(&symbol).map(Vec::as_slice).unwrap_or(&[]) {
                let left_ok = match (&rule.left, left) {
                    (None, None) => true,
                    (Some(q), Some(set)) => set.contains(q),
                    _ => false,
                };
                let right_ok = match (&rule.right, right) {
                    (None, None) => true,
                    (Some(q), Some(set)) => set.contains(q),
                    _ => false,
                };
                if left_ok && right_ok {
                    out.insert(rule.target);
                }
            }
            out
        };

        // Discover reachable subsets with a work-list, starting from all leaf
        // successors.
        let mut queue: VecDeque<usize> = VecDeque::new();
        for symbol in 0..self.alphabet_size() {
            let set = successor(None, None, symbol);
            let before = subsets.len();
            let idx = intern(set, &mut subsets, &mut subset_index);
            rules.push(Rule {
                left: None,
                right: None,
                symbol,
                target: idx,
            });
            if subsets.len() > before {
                queue.push_back(idx);
            }
        }
        let mut processed: BTreeSet<(Option<usize>, Option<usize>, u32)> = BTreeSet::new();
        // Iterate until no new subset is discovered.  Every iteration
        // re-scans pairs of known subsets, which is fine at the scales the
        // compiler produces (a handful of states per atom).
        loop {
            let known = subsets.len();
            let mut discovered = false;
            let options: Vec<Option<usize>> =
                std::iter::once(None).chain((0..known).map(Some)).collect();
            for &left in &options {
                for &right in &options {
                    if left.is_none() && right.is_none() {
                        continue;
                    }
                    for symbol in 0..self.alphabet_size() {
                        if !processed.insert((left, right, symbol)) {
                            continue;
                        }
                        let left_set = left.map(|i| subsets[i].clone());
                        let right_set = right.map(|i| subsets[i].clone());
                        let set = successor(left_set.as_ref(), right_set.as_ref(), symbol);
                        let before = subsets.len();
                        let idx = intern(set, &mut subsets, &mut subset_index);
                        rules.push(Rule {
                            left,
                            right,
                            symbol,
                            target: idx,
                        });
                        if subsets.len() > before {
                            discovered = true;
                        }
                    }
                }
            }
            if !discovered && subsets.len() == known {
                break;
            }
        }

        let accepting = subsets
            .iter()
            .enumerate()
            .filter(|(_, set)| set.iter().any(|q| self.accepting.contains(q)))
            .map(|(i, _)| i)
            .collect();
        Nfta {
            num_states: subsets.len().max(1),
            bits: self.bits,
            rules,
            accepting,
        }
    }

    /// Complement: accepts exactly the trees the original rejects.
    pub fn complement(&self) -> Nfta {
        let det = self.determinize();
        let accepting = (0..det.num_states)
            .filter(|q| !det.accepting.contains(q))
            .collect();
        Nfta { accepting, ..det }
    }

    /// Projects away label bit `bit`: the result accepts a tree iff *some*
    /// relabeling of that bit is accepted by the original automaton
    /// (existential second-order quantification).
    pub fn project_bit(&self, bit: u32) -> Nfta {
        assert!(bit < self.bits);
        let mask = 1u32 << bit;
        let mut rules = Vec::with_capacity(self.rules.len() * 2);
        for rule in &self.rules {
            for value in [0, mask] {
                rules.push(Rule {
                    left: rule.left,
                    right: rule.right,
                    symbol: (rule.symbol & !mask) | value,
                    target: rule.target,
                });
            }
        }
        rules.sort();
        rules.dedup();
        Nfta {
            num_states: self.num_states,
            bits: self.bits,
            rules,
            accepting: self.accepting.clone(),
        }
    }

    /// Language inclusion `L(self) ⊆ L(other)`, decided as the emptiness of
    /// `self ∩ ¬other`.
    pub fn included_in(&self, other: &Nfta) -> bool {
        self.intersect(&other.complement()).is_empty()
    }

    /// A concrete tree the automaton accepts, or `None` when the language is
    /// empty.
    ///
    /// This is the emptiness fixpoint of [`Nfta::is_empty`] with a
    /// representative attached to every inhabited state: the first rule that
    /// inhabits a state is remembered, and the witness for an accepting state
    /// is rebuilt by following those rules downward.  Because a state's
    /// representative only refers to states inhabited strictly earlier, the
    /// reconstruction is well-founded and the tree is finite.
    pub fn example_tree(&self) -> Option<LabeledTree> {
        let mut witness: Vec<Option<WitnessRule>> = vec![None; self.num_states];
        loop {
            let mut changed = false;
            for rule in &self.rules {
                if witness[rule.target].is_some() {
                    continue;
                }
                let left_ok = rule.left.is_none_or(|q| witness[q].is_some());
                let right_ok = rule.right.is_none_or(|q| witness[q].is_some());
                if left_ok && right_ok {
                    witness[rule.target] = Some((rule.symbol, rule.left, rule.right));
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let accept = self
            .accepting
            .iter()
            .copied()
            .find(|&q| witness.get(q).is_some_and(Option::is_some))?;
        let mut tree = LabeledTree::single();
        let root = tree.root();
        self.rebuild_witness(accept, root, &witness, &mut tree);
        Some(tree)
    }

    fn rebuild_witness(
        &self,
        state: usize,
        node: NodeId,
        witness: &[Option<WitnessRule>],
        tree: &mut LabeledTree,
    ) {
        let (symbol, left, right) = witness[state].expect("state must be inhabited");
        for bit in 0..self.bits {
            if symbol & (1u32 << bit) != 0 {
                tree.add_label(node, bit);
            }
        }
        if let Some(q) = left {
            let child = tree.add_left(node);
            self.rebuild_witness(q, child, witness, tree);
        }
        if let Some(q) = right {
            let child = tree.add_right(node);
            self.rebuild_witness(q, child, witness, tree);
        }
    }

    /// True when the automaton accepts no tree at all.
    ///
    /// Standard bottom-up reachability: a state is *inhabited* when some tree
    /// can reach it; the language is empty iff no accepting state is
    /// inhabited.
    pub fn is_empty(&self) -> bool {
        let mut inhabited: BTreeSet<usize> = BTreeSet::new();
        loop {
            let mut changed = false;
            for rule in &self.rules {
                if inhabited.contains(&rule.target) {
                    continue;
                }
                let left_ok = rule.left.is_none_or(|q| inhabited.contains(&q));
                let right_ok = rule.right.is_none_or(|q| inhabited.contains(&q));
                if left_ok && right_ok {
                    inhabited.insert(rule.target);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        !inhabited.iter().any(|q| self.accepting.contains(q))
    }
}

/// Atomic automata for the core MSO-over-trees fragment.  Variables are
/// identified with label bits.
pub mod atoms {
    use super::*;

    fn bit_set(symbol: u32, bit: u32) -> bool {
        symbol & (1 << bit) != 0
    }

    fn all_symbols(bits: u32) -> impl Iterator<Item = u32> {
        0..(1u32 << bits)
    }

    fn child_options(states: usize) -> Vec<Option<usize>> {
        std::iter::once(None).chain((0..states).map(Some)).collect()
    }

    /// `X_i ⊆ X_j`: every node labeled `i` is also labeled `j`.
    pub fn subset(i: u32, j: u32, bits: u32) -> Nfta {
        // Single state; a node is admissible when its symbol respects the
        // implication.
        let mut rules = Vec::new();
        for symbol in all_symbols(bits) {
            if bit_set(symbol, i) && !bit_set(symbol, j) {
                continue;
            }
            for left in child_options(1) {
                for right in child_options(1) {
                    rules.push(Rule {
                        left,
                        right,
                        symbol,
                        target: 0,
                    });
                }
            }
        }
        Nfta {
            num_states: 1,
            bits,
            rules,
            accepting: BTreeSet::from([0]),
        }
    }

    /// `Sing(X_i)`: exactly one node carries label `i`.
    pub fn singleton(i: u32, bits: u32) -> Nfta {
        // State 0: no occurrence in the subtree; state 1: exactly one.
        let mut rules = Vec::new();
        for symbol in all_symbols(bits) {
            let here = usize::from(bit_set(symbol, i));
            for left in child_options(2) {
                for right in child_options(2) {
                    let below = left.unwrap_or(0) + right.unwrap_or(0);
                    let total = here + below;
                    if total <= 1 {
                        rules.push(Rule {
                            left,
                            right,
                            symbol,
                            target: total,
                        });
                    }
                }
            }
        }
        Nfta {
            num_states: 2,
            bits,
            rules,
            accepting: BTreeSet::from([1]),
        }
    }

    /// `Empty(X_i)`: no node carries label `i`.
    pub fn empty_set(i: u32, bits: u32) -> Nfta {
        let mut rules = Vec::new();
        for symbol in all_symbols(bits) {
            if bit_set(symbol, i) {
                continue;
            }
            for left in child_options(1) {
                for right in child_options(1) {
                    rules.push(Rule {
                        left,
                        right,
                        symbol,
                        target: 0,
                    });
                }
            }
        }
        Nfta {
            num_states: 1,
            bits,
            rules,
            accepting: BTreeSet::from([0]),
        }
    }

    /// "Some node labeled `i` is the root" — with `Sing(X_i)` this is
    /// `root(x_i)`.
    pub fn root_marked(i: u32, bits: u32) -> Nfta {
        // State encodes whether the *root of the subtree* carries the label.
        let mut rules = Vec::new();
        for symbol in all_symbols(bits) {
            let target = usize::from(bit_set(symbol, i));
            for left in child_options(2) {
                for right in child_options(2) {
                    rules.push(Rule {
                        left,
                        right,
                        symbol,
                        target,
                    });
                }
            }
        }
        Nfta {
            num_states: 2,
            bits,
            rules,
            accepting: BTreeSet::from([1]),
        }
    }

    /// "Some node labeled `i` is a leaf" — with `Sing(X_i)` this is
    /// `leaf(x_i)`.
    pub fn leaf_marked(i: u32, bits: u32) -> Nfta {
        // State 1: the subtree contains a leaf labeled i.
        let mut rules = Vec::new();
        for symbol in all_symbols(bits) {
            for left in child_options(2) {
                for right in child_options(2) {
                    let is_leaf = left.is_none() && right.is_none();
                    let below = left.unwrap_or(0).max(right.unwrap_or(0));
                    let here = usize::from(is_leaf && bit_set(symbol, i));
                    rules.push(Rule {
                        left,
                        right,
                        symbol,
                        target: here.max(below),
                    });
                }
            }
        }
        Nfta {
            num_states: 2,
            bits,
            rules,
            accepting: BTreeSet::from([1]),
        }
    }

    /// Encodes a pair relation between a node labeled `i` and a node labeled
    /// `j`, where the `j` node stands in the requested structural relation to
    /// the `i` node.  With `Sing(X_i) ∧ Sing(X_j)` this gives the first-order
    /// `left(x_i) = x_j`, `right(x_i) = x_j`, `x_i = x_j` and
    /// `reach(x_i, x_j)` atoms.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum PairRelation {
        /// `x_j` is the left child of `x_i`.
        LeftChild,
        /// `x_j` is the right child of `x_i`.
        RightChild,
        /// `x_i` and `x_j` are the same node.
        Same,
        /// `x_i` is an ancestor of (or equal to) `x_j`.
        Ancestor,
    }

    /// See [`PairRelation`].
    pub fn pair(relation: PairRelation, i: u32, j: u32, bits: u32) -> Nfta {
        // States are (matched, info) where `info` describes what the subtree
        // root / subtree contains, as needed by the relation:
        //   LeftChild / RightChild: info = "the subtree root carries j".
        //   Ancestor:               info = "the subtree contains a j node".
        //   Same:                   info unused.
        // Encoded as matched * 2 + info.
        let encode = |matched: bool, info: bool| usize::from(matched) * 2 + usize::from(info);
        let mut rules = Vec::new();
        for symbol in all_symbols(bits) {
            let has_i = bit_set(symbol, i);
            let has_j = bit_set(symbol, j);
            for left in child_options(4) {
                for right in child_options(4) {
                    let l_matched = left.is_some_and(|q| q >= 2);
                    let r_matched = right.is_some_and(|q| q >= 2);
                    let l_info = left.is_some_and(|q| q % 2 == 1);
                    let r_info = right.is_some_and(|q| q % 2 == 1);
                    let (matched_here, info) = match relation {
                        PairRelation::LeftChild => (has_i && l_info, has_j),
                        PairRelation::RightChild => (has_i && r_info, has_j),
                        PairRelation::Same => (has_i && has_j, false),
                        PairRelation::Ancestor => {
                            let contains_j = has_j || l_info || r_info;
                            (has_i && contains_j, contains_j)
                        }
                    };
                    let matched = matched_here || l_matched || r_matched;
                    rules.push(Rule {
                        left,
                        right,
                        symbol,
                        target: encode(matched, info),
                    });
                }
            }
        }
        Nfta {
            num_states: 4,
            bits,
            rules,
            accepting: BTreeSet::from([2, 3]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::atoms::*;
    use super::*;
    use crate::tree::complete_tree;

    fn labeled_pair() -> LabeledTree {
        // root labeled 0, left child labeled 1.
        let mut tree = complete_tree(2);
        let root = tree.root();
        let left = tree.left(root).unwrap();
        tree.add_label(root, 0);
        tree.add_label(left, 1);
        tree
    }

    #[test]
    fn universal_and_empty() {
        let tree = complete_tree(3);
        assert!(Nfta::universal(2).accepts(&tree));
        assert!(!Nfta::empty(2).accepts(&tree));
        assert!(Nfta::empty(2).is_empty());
        assert!(!Nfta::universal(2).is_empty());
    }

    #[test]
    fn subset_atom() {
        let automaton = subset(0, 1, 2);
        let mut ok = complete_tree(2);
        let root = ok.root();
        ok.add_label(root, 0);
        ok.add_label(root, 1);
        assert!(automaton.accepts(&ok));

        let mut bad = complete_tree(2);
        let root = bad.root();
        bad.add_label(root, 0);
        assert!(!automaton.accepts(&bad));
    }

    #[test]
    fn singleton_atom() {
        let automaton = singleton(0, 1);
        let mut one = complete_tree(2);
        let root = one.root();
        one.add_label(root, 0);
        assert!(automaton.accepts(&one));

        let none = complete_tree(2);
        assert!(!automaton.accepts(&none));

        let mut two = complete_tree(2);
        let root = two.root();
        let l = two.left(root).unwrap();
        two.add_label(root, 0);
        two.add_label(l, 0);
        assert!(!automaton.accepts(&two));
    }

    #[test]
    fn root_and_leaf_atoms() {
        let tree = labeled_pair();
        assert!(root_marked(0, 2).accepts(&tree));
        assert!(!root_marked(1, 2).accepts(&tree));
        assert!(leaf_marked(1, 2).accepts(&tree));
        assert!(!leaf_marked(0, 2).accepts(&tree));
    }

    #[test]
    fn pair_atoms() {
        let tree = labeled_pair();
        assert!(pair(PairRelation::LeftChild, 0, 1, 2).accepts(&tree));
        assert!(!pair(PairRelation::RightChild, 0, 1, 2).accepts(&tree));
        assert!(pair(PairRelation::Ancestor, 0, 1, 2).accepts(&tree));
        assert!(!pair(PairRelation::Ancestor, 1, 0, 2).accepts(&tree));
        assert!(!pair(PairRelation::Same, 0, 1, 2).accepts(&tree));

        let mut same = complete_tree(1);
        let root = same.root();
        same.add_label(root, 0);
        same.add_label(root, 1);
        assert!(pair(PairRelation::Same, 0, 1, 2).accepts(&same));
    }

    #[test]
    fn intersection_union_and_complement() {
        let sing0 = singleton(0, 2);
        let sing1 = singleton(1, 2);
        let both = sing0.intersect(&sing1);
        let either = sing0.union(&sing1);
        let tree = labeled_pair();
        assert!(both.accepts(&tree));
        assert!(either.accepts(&tree));

        let unlabeled = complete_tree(2);
        assert!(!both.accepts(&unlabeled));
        assert!(!either.accepts(&unlabeled));
        assert!(both.complement().accepts(&unlabeled));
        assert!(!both.complement().accepts(&tree));
    }

    #[test]
    fn determinization_preserves_language() {
        let automaton = pair(PairRelation::Ancestor, 0, 1, 2);
        let det = automaton.determinize();
        for tree_base in crate::tree::all_trees_up_to(3) {
            // Try a few labelings.
            for (a, b) in [(0usize, 0usize), (0, 1), (1, 0)] {
                let mut tree = tree_base.clone();
                let nodes: Vec<_> = tree.nodes().collect();
                if a < nodes.len() {
                    tree.add_label(nodes[a], 0);
                }
                if b < nodes.len() {
                    tree.add_label(nodes[b], 1);
                }
                assert_eq!(automaton.accepts(&tree), det.accepts(&tree));
            }
        }
    }

    #[test]
    fn projection_quantifies_existentially() {
        // ∃X_0 . Sing(X_0) is true on every tree (pick any node).
        let projected = singleton(0, 2).project_bit(0);
        for tree in crate::tree::all_trees_up_to(3) {
            assert!(projected.accepts(&tree));
        }
        // But ∃X_0. false is still false.
        assert!(Nfta::empty(2).project_bit(0).is_empty());
    }

    #[test]
    fn example_tree_is_accepted_by_its_automaton() {
        let automaton = pair(PairRelation::LeftChild, 0, 1, 2).intersect(&singleton(0, 2));
        let example = automaton.example_tree().expect("language is nonempty");
        assert!(automaton.accepts(&example));
        assert!(Nfta::empty(2).example_tree().is_none());
        let contradiction = singleton(0, 1).intersect(&empty_set(0, 1));
        assert!(contradiction.example_tree().is_none());
    }

    #[test]
    fn inclusion_via_complement_emptiness() {
        // Sing(X_0) ∧ Sing(X_1) ⊆ Sing(X_0), but not conversely.
        let sing0 = singleton(0, 2);
        let both = sing0.intersect(&singleton(1, 2));
        assert!(both.included_in(&sing0));
        assert!(!sing0.included_in(&both));
        assert!(sing0.included_in(&Nfta::universal(2)));
        assert!(Nfta::empty(2).included_in(&sing0));
    }

    #[test]
    fn emptiness_of_contradictions() {
        // Sing(X_0) ∧ Empty(X_0) is unsatisfiable.
        let contradiction = singleton(0, 1).intersect(&empty_set(0, 1));
        assert!(contradiction.is_empty());
        // Sing(X_0) alone is satisfiable.
        assert!(!singleton(0, 1).is_empty());
    }
}
