//! Compilation of MSO formulas to tree automata (the Thatcher–Wright
//! construction), giving an *unbounded* decision procedure for the core
//! fragment — the role MONA plays for the paper.
//!
//! Every variable of the formula (free or bound, first- or second-order) is
//! assigned a label bit; first-order variables are encoded as singleton sets
//! in the usual way.  Atomic formulas map to the atomic automata of
//! [`crate::automata::atoms`], boolean connectives to product/union/
//! complement, and quantifiers to bit projection (plus the singleton
//! constraint for first-order quantifiers).
//!
//! The construction is exponential in the alternation of negation and
//! quantification (each complement determinizes), exactly like MONA; it is
//! practical for the structural lemmas exercised in the tests and serves as
//! the reference decision procedure that the bounded checker is validated
//! against.

use std::collections::BTreeMap;
use std::fmt;

use crate::automata::atoms::{self, PairRelation};
use crate::automata::Nfta;
use crate::formula::Formula;

/// A compiled formula: the automaton plus the variable-to-bit mapping.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The automaton over `2^bits` label masks.
    pub automaton: Nfta,
    /// Which label bit each variable name was assigned.
    pub var_bits: BTreeMap<String, u32>,
}

/// Errors the compiler can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The same name is used for two different binders / free variables.
    DuplicateVariable(String),
    /// The formula uses more variables than the compiler supports (the
    /// alphabet is `2^bits`, kept at 16 bits at most).
    TooManyVariables(usize),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::DuplicateVariable(name) => {
                write!(
                    f,
                    "variable `{name}` is bound or used more than once; rename binders apart"
                )
            }
            CompileError::TooManyVariables(n) => {
                write!(
                    f,
                    "{n} variables exceed the compiler's 16-bit alphabet limit"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles a formula to a tree automaton.
///
/// All variable names (first- and second-order, free and bound) must be
/// pairwise distinct; rename binders apart before calling if needed.
pub fn compile(formula: &Formula) -> Result<Compiled, CompileError> {
    let mut names = Vec::new();
    collect_names(formula, &mut names)?;
    if names.len() > 16 {
        return Err(CompileError::TooManyVariables(names.len()));
    }
    let var_bits: BTreeMap<String, u32> = names
        .iter()
        .enumerate()
        .map(|(i, name)| (name.clone(), i as u32))
        .collect();
    let bits = names.len().max(1) as u32;
    let automaton = go(formula, &var_bits, bits);
    Ok(Compiled {
        automaton,
        var_bits,
    })
}

/// Decides validity of a *closed* formula: true when every finite binary tree
/// satisfies it.
pub fn is_valid(formula: &Formula) -> Result<bool, CompileError> {
    let compiled = compile(formula)?;
    Ok(compiled.automaton.complement().is_empty())
}

/// Decides satisfiability of a *closed* formula: true when some finite binary
/// tree satisfies it.
pub fn is_satisfiable(formula: &Formula) -> Result<bool, CompileError> {
    let compiled = compile(formula)?;
    Ok(!compiled.automaton.is_empty())
}

fn collect_names(formula: &Formula, names: &mut Vec<String>) -> Result<(), CompileError> {
    let add = |name: &str, names: &mut Vec<String>| -> Result<(), CompileError> {
        if !names.iter().any(|n| n == name) {
            names.push(name.to_string());
        }
        Ok(())
    };
    match formula {
        Formula::True | Formula::False => Ok(()),
        Formula::Eq(a, b) | Formula::Left(a, b) | Formula::Right(a, b) | Formula::Reach(a, b) => {
            add(&a.0, names)?;
            add(&b.0, names)
        }
        Formula::Root(a) | Formula::Leaf(a) => add(&a.0, names),
        Formula::In(a, x) => {
            add(&a.0, names)?;
            add(&x.0, names)
        }
        Formula::Subset(x, y) => {
            add(&x.0, names)?;
            add(&y.0, names)
        }
        Formula::Not(inner) => collect_names(inner, names),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            collect_names(a, names)?;
            collect_names(b, names)
        }
        Formula::ExistsFo(v, body) | Formula::ForallFo(v, body) => {
            add(&v.0, names)?;
            collect_names(body, names)
        }
        Formula::ExistsSo(v, body) | Formula::ForallSo(v, body) => {
            add(&v.0, names)?;
            collect_names(body, names)
        }
    }
}

fn bit(var_bits: &BTreeMap<String, u32>, name: &str) -> u32 {
    *var_bits
        .get(name)
        .unwrap_or_else(|| panic!("variable `{name}` has no assigned bit"))
}

fn go(formula: &Formula, var_bits: &BTreeMap<String, u32>, bits: u32) -> Nfta {
    match formula {
        Formula::True => Nfta::universal(bits),
        Formula::False => Nfta::empty(bits),
        Formula::Eq(a, b) => atoms::pair(
            PairRelation::Same,
            bit(var_bits, &a.0),
            bit(var_bits, &b.0),
            bits,
        ),
        Formula::Left(a, b) => atoms::pair(
            PairRelation::LeftChild,
            bit(var_bits, &a.0),
            bit(var_bits, &b.0),
            bits,
        ),
        Formula::Right(a, b) => atoms::pair(
            PairRelation::RightChild,
            bit(var_bits, &a.0),
            bit(var_bits, &b.0),
            bits,
        ),
        Formula::Reach(a, b) => atoms::pair(
            PairRelation::Ancestor,
            bit(var_bits, &a.0),
            bit(var_bits, &b.0),
            bits,
        ),
        Formula::Root(a) => atoms::root_marked(bit(var_bits, &a.0), bits),
        Formula::Leaf(a) => atoms::leaf_marked(bit(var_bits, &a.0), bits),
        Formula::In(a, x) => atoms::subset(bit(var_bits, &a.0), bit(var_bits, &x.0), bits),
        Formula::Subset(x, y) => atoms::subset(bit(var_bits, &x.0), bit(var_bits, &y.0), bits),
        Formula::Not(inner) => go(inner, var_bits, bits).complement(),
        Formula::And(a, b) => go(a, var_bits, bits).intersect(&go(b, var_bits, bits)),
        Formula::Or(a, b) => go(a, var_bits, bits).union(&go(b, var_bits, bits)),
        Formula::Implies(a, b) => go(a, var_bits, bits)
            .complement()
            .union(&go(b, var_bits, bits)),
        Formula::Iff(a, b) => {
            let fa = go(a, var_bits, bits);
            let fb = go(b, var_bits, bits);
            fa.complement()
                .union(&fb)
                .intersect(&fb.complement().union(&fa))
        }
        Formula::ExistsSo(v, body) => go(body, var_bits, bits).project_bit(bit(var_bits, &v.0)),
        Formula::ForallSo(v, body) => {
            // ∀X.φ ≡ ¬∃X.¬φ
            go(body, var_bits, bits)
                .complement()
                .project_bit(bit(var_bits, &v.0))
                .complement()
        }
        Formula::ExistsFo(v, body) => {
            let var_bit = bit(var_bits, &v.0);
            atoms::singleton(var_bit, bits)
                .intersect(&go(body, var_bits, bits))
                .project_bit(var_bit)
        }
        Formula::ForallFo(v, body) => {
            // ∀x.φ ≡ ¬∃x.(Sing(x) ∧ ¬φ)
            let var_bit = bit(var_bits, &v.0);
            atoms::singleton(var_bit, bits)
                .intersect(&go(body, var_bits, bits).complement())
                .project_bit(var_bit)
                .complement()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::check_validity;
    use crate::checker::{eval, Assignment};
    use crate::formula::{FoVar, SoVar};
    use crate::tree::all_trees_up_to;

    #[test]
    fn root_exists_is_valid() {
        let formula = Formula::exists_fo("x", Formula::Root(FoVar::new("x")));
        assert!(is_valid(&formula).unwrap());
        assert!(is_satisfiable(&formula).unwrap());
    }

    #[test]
    fn two_roots_is_unsatisfiable() {
        let formula = Formula::exists_fo(
            "x",
            Formula::exists_fo(
                "y",
                Formula::conj(vec![
                    Formula::Root(FoVar::new("x")),
                    Formula::Root(FoVar::new("y")),
                    Formula::not(Formula::Eq(FoVar::new("x"), FoVar::new("y"))),
                ]),
            ),
        );
        assert!(!is_satisfiable(&formula).unwrap());
        assert!(!is_valid(&formula).unwrap());
    }

    #[test]
    fn root_reaches_every_node_is_valid() {
        let formula = Formula::forall_fo(
            "r",
            Formula::implies(
                Formula::Root(FoVar::new("r")),
                Formula::forall_fo("x", Formula::Reach(FoVar::new("r"), FoVar::new("x"))),
            ),
        );
        assert!(is_valid(&formula).unwrap());
    }

    #[test]
    fn every_node_is_a_leaf_is_satisfiable_but_not_valid() {
        let formula = Formula::forall_fo("x", Formula::Leaf(FoVar::new("x")));
        assert!(is_satisfiable(&formula).unwrap());
        assert!(!is_valid(&formula).unwrap());
    }

    #[test]
    fn left_child_implies_reach_is_valid() {
        let formula = Formula::forall_fo(
            "x",
            Formula::forall_fo(
                "y",
                Formula::implies(
                    Formula::Left(FoVar::new("x"), FoVar::new("y")),
                    Formula::Reach(FoVar::new("x"), FoVar::new("y")),
                ),
            ),
        );
        assert!(is_valid(&formula).unwrap());
    }

    #[test]
    fn second_order_quantification_over_sets() {
        // ∀X. ∀x. (x ∈ X → x ∈ X) is valid; ∃X. ∃x. (x ∈ X ∧ ¬(x ∈ X)) is
        // unsatisfiable.  Small enough for the automata pipeline and still
        // exercises SO quantification end to end.
        let tautology = Formula::forall_so(
            "X",
            Formula::forall_fo(
                "x",
                Formula::implies(
                    Formula::In(FoVar::new("x"), SoVar::new("X")),
                    Formula::In(FoVar::new("x"), SoVar::new("X")),
                ),
            ),
        );
        assert!(is_valid(&tautology).unwrap());

        let contradiction = Formula::exists_so(
            "Y",
            Formula::exists_fo(
                "y",
                Formula::and(
                    Formula::In(FoVar::new("y"), SoVar::new("Y")),
                    Formula::not(Formula::In(FoVar::new("y"), SoVar::new("Y"))),
                ),
            ),
        );
        assert!(!is_satisfiable(&contradiction).unwrap());
    }

    #[test]
    fn subtree_membership_is_monotone() {
        // ∀x ∀y. (reach(x, y) ∧ root ∈ … ) style check with a free SO var is
        // covered by `compiled_automaton_agrees_with_explicit_checker`; here
        // we check a small mixed FO/SO validity: ∃X. ∀x. x ∈ X (take X = all
        // nodes).
        let formula = Formula::exists_so(
            "X",
            Formula::forall_fo("x", Formula::In(FoVar::new("x"), SoVar::new("X"))),
        );
        assert!(is_valid(&formula).unwrap());
    }

    #[test]
    fn compiled_automaton_agrees_with_explicit_checker() {
        // A formula with one free second-order variable: "X is downward
        // closed", checked both ways on all trees up to 4 nodes with a
        // handful of labelings.
        let formula = Formula::forall_fo(
            "x",
            Formula::forall_fo(
                "y",
                Formula::implies(
                    Formula::and(
                        Formula::In(FoVar::new("x"), SoVar::new("X")),
                        Formula::Reach(FoVar::new("x"), FoVar::new("y")),
                    ),
                    Formula::In(FoVar::new("y"), SoVar::new("X")),
                ),
            ),
        );
        let compiled = compile(&formula).unwrap();
        let x_bit = compiled.var_bits["X"];
        for base in all_trees_up_to(3) {
            let nodes: Vec<_> = base.nodes().collect();
            // Labelings: empty, first node, first two nodes, all nodes.
            let labelings: Vec<Vec<usize>> = vec![
                vec![],
                vec![0],
                (0..nodes.len().min(2)).collect(),
                (0..nodes.len()).collect(),
            ];
            for labeling in labelings {
                let mut tree = base.clone();
                for &i in &labeling {
                    tree.add_label(nodes[i], x_bit);
                }
                let by_automaton = compiled.automaton.accepts(&tree);
                let set: Vec<_> = labeling.iter().map(|&i| nodes[i]).collect();
                let by_checker = eval(&formula, &tree, &Assignment::new().bind_so("X", set));
                assert_eq!(by_automaton, by_checker, "disagreement on tree {tree:?}");
            }
        }
    }

    #[test]
    fn automata_and_bounded_checker_agree_on_closed_formulas() {
        let formulas = vec![
            Formula::exists_fo("x", Formula::Root(FoVar::new("x"))),
            Formula::forall_fo("x", Formula::Leaf(FoVar::new("x"))),
            Formula::forall_fo(
                "x",
                Formula::exists_fo("y", Formula::Left(FoVar::new("x"), FoVar::new("y"))),
            ),
        ];
        for formula in formulas {
            let automata_verdict = is_valid(&formula).unwrap();
            let bounded_verdict = check_validity(&formula, 4).is_valid();
            // Bounded validity can only over-approximate validity; when the
            // automaton says valid, the bounded check must agree.
            if automata_verdict {
                assert!(bounded_verdict);
            } else {
                // All three example formulas that are invalid have small
                // counterexamples, so the bounded check finds them too.
                assert!(!bounded_verdict);
            }
        }
    }

    #[test]
    fn too_many_variables_is_an_error() {
        let mut formula = Formula::True;
        for i in 0..20 {
            formula = Formula::exists_so(format!("X{i}"), formula);
        }
        assert!(matches!(
            compile(&formula),
            Err(CompileError::TooManyVariables(_))
        ));
    }
}
