//! Finite labeled binary trees — the models of MSO formulas.
//!
//! A [`LabeledTree`] is a finite binary tree whose nodes carry a set of
//! *labels* (small integers).  Labels play the role of the second-order
//! variables of the Retreet encoding: `Ls`, `Cc`, … are sets of nodes, and a
//! node carries label `i` exactly when it belongs to the `i`-th set.
//!
//! The module also provides an exhaustive enumerator of all binary tree
//! shapes up to a node bound, which is what the bounded validity checker in
//! [`crate::bounded`] iterates over.

use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a node within a [`LabeledTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    left: Option<NodeId>,
    right: Option<NodeId>,
    parent: Option<NodeId>,
    labels: BTreeSet<u32>,
}

/// A finite binary tree with labeled nodes.  Node 0 is always the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledTree {
    nodes: Vec<Node>,
}

impl LabeledTree {
    /// A tree with a single (root) node and no labels.
    pub fn single() -> Self {
        LabeledTree {
            nodes: vec![Node {
                left: None,
                right: None,
                parent: None,
                labels: BTreeSet::new(),
            }],
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes; never true for trees built through
    /// this API (there is always a root), but kept for completeness.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a left child to `parent`; panics if it already has one.
    pub fn add_left(&mut self, parent: NodeId) -> NodeId {
        assert!(
            self.left(parent).is_none(),
            "{parent} already has a left child"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            left: None,
            right: None,
            parent: Some(parent),
            labels: BTreeSet::new(),
        });
        self.nodes[parent.as_usize()].left = Some(id);
        id
    }

    /// Adds a right child to `parent`; panics if it already has one.
    pub fn add_right(&mut self, parent: NodeId) -> NodeId {
        assert!(
            self.right(parent).is_none(),
            "{parent} already has a right child"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            left: None,
            right: None,
            parent: Some(parent),
            labels: BTreeSet::new(),
        });
        self.nodes[parent.as_usize()].right = Some(id);
        id
    }

    /// The left child, if any.
    pub fn left(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.as_usize()].left
    }

    /// The right child, if any.
    pub fn right(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.as_usize()].right
    }

    /// The parent, if any.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.as_usize()].parent
    }

    /// True for nodes with no children.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.left(node).is_none() && self.right(node).is_none()
    }

    /// Iterates over all nodes in id order (which is also a valid pre-order
    /// prefix order for trees built through [`Self::add_left`] /
    /// [`Self::add_right`]).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// `reach(a, b)`: `a` is an ancestor of `b` or equal to it.
    pub fn reaches(&self, a: NodeId, b: NodeId) -> bool {
        let mut current = Some(b);
        while let Some(node) = current {
            if node == a {
                return true;
            }
            current = self.parent(node);
        }
        false
    }

    /// The depth of a node (root has depth 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut depth = 0;
        let mut current = self.parent(node);
        while let Some(up) = current {
            depth += 1;
            current = self.parent(up);
        }
        depth
    }

    /// The height of the tree (single node has height 1).
    pub fn height(&self) -> usize {
        self.nodes().map(|n| self.depth(n) + 1).max().unwrap_or(0)
    }

    /// Adds a label to a node.
    pub fn add_label(&mut self, node: NodeId, label: u32) {
        self.nodes[node.as_usize()].labels.insert(label);
    }

    /// Removes a label from a node.
    pub fn remove_label(&mut self, node: NodeId, label: u32) {
        self.nodes[node.as_usize()].labels.remove(&label);
    }

    /// True when the node carries the label.
    pub fn has_label(&self, node: NodeId, label: u32) -> bool {
        self.nodes[node.as_usize()].labels.contains(&label)
    }

    /// The label set of a node.
    pub fn labels(&self, node: NodeId) -> &BTreeSet<u32> {
        &self.nodes[node.as_usize()].labels
    }

    /// The set of nodes carrying `label`.
    pub fn nodes_with_label(&self, label: u32) -> BTreeSet<NodeId> {
        self.nodes().filter(|&n| self.has_label(n, label)).collect()
    }

    /// The label set of a node encoded as a bitmask over labels `< bits`.
    pub fn label_mask(&self, node: NodeId, bits: u32) -> u32 {
        let mut mask = 0;
        for &label in self.labels(node) {
            if label < bits {
                mask |= 1 << label;
            }
        }
        mask
    }

    /// Clears every label in the tree.
    pub fn clear_labels(&mut self) {
        for node in &mut self.nodes {
            node.labels.clear();
        }
    }

    /// Builds a tree from a nested shape description (see [`Shape`]).
    pub fn from_shape(shape: &Shape) -> Self {
        let mut tree = LabeledTree::single();
        let root = tree.root();
        build_shape(&mut tree, root, shape);
        tree
    }
}

fn build_shape(tree: &mut LabeledTree, node: NodeId, shape: &Shape) {
    if let Some(left) = &shape.left {
        let child = tree.add_left(node);
        build_shape(tree, child, left);
    }
    if let Some(right) = &shape.right {
        let child = tree.add_right(node);
        build_shape(tree, child, right);
    }
}

/// A binary tree *shape* (no labels): used by the exhaustive enumerator.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Shape {
    /// Left subtree, if present.
    pub left: Option<Box<Shape>>,
    /// Right subtree, if present.
    pub right: Option<Box<Shape>>,
}

impl Shape {
    /// A single-node shape.
    pub fn leaf() -> Shape {
        Shape::default()
    }

    /// A shape with the given subtrees.
    pub fn node(left: Option<Shape>, right: Option<Shape>) -> Shape {
        Shape {
            left: left.map(Box::new),
            right: right.map(Box::new),
        }
    }

    /// Number of nodes in the shape.
    pub fn len(&self) -> usize {
        1 + self.left.as_ref().map_or(0, |s| s.len()) + self.right.as_ref().map_or(0, |s| s.len())
    }

    /// True when the shape is a single leaf.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Enumerates every binary tree shape with exactly `n` nodes.
pub fn shapes_with(n: usize) -> Vec<Shape> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![Shape::leaf()];
    }
    let mut out = Vec::new();
    // Root plus a split of the remaining n-1 nodes between the two subtrees,
    // each of which may be absent (0 nodes).
    for left_count in 0..n {
        let right_count = n - 1 - left_count;
        let lefts: Vec<Option<Shape>> = if left_count == 0 {
            vec![None]
        } else {
            shapes_with(left_count).into_iter().map(Some).collect()
        };
        let rights: Vec<Option<Shape>> = if right_count == 0 {
            vec![None]
        } else {
            shapes_with(right_count).into_iter().map(Some).collect()
        };
        for l in &lefts {
            for r in &rights {
                out.push(Shape::node(l.clone(), r.clone()));
            }
        }
    }
    out
}

/// Enumerates every binary tree (as an unlabeled [`LabeledTree`]) with at
/// most `max_nodes` nodes, from smallest to largest.
pub fn all_trees_up_to(max_nodes: usize) -> Vec<LabeledTree> {
    let mut out = Vec::new();
    for n in 1..=max_nodes {
        for shape in shapes_with(n) {
            out.push(LabeledTree::from_shape(&shape));
        }
    }
    out
}

/// [`all_trees_up_to`], memoized per bound for the lifetime of the process.
///
/// Every bounded query (race, equivalence, validity) walks the same shape
/// corpus; enumerating Catalan-many shapes once per *bound* instead of once
/// per *query* removes a fixed cost from every engine run.  The returned
/// `Arc` shares one immutable vector across all callers and threads.
pub fn shared_trees_up_to(max_nodes: usize) -> std::sync::Arc<Vec<LabeledTree>> {
    use std::sync::OnceLock;
    static CACHE: OnceLock<ShapeCache> = OnceLock::new();
    CACHE
        .get_or_init(ShapeCache::default)
        .get_or_build(max_nodes, all_trees_up_to)
}

/// Every binary tree with *exactly* `nodes` nodes, memoized per size — the
/// incremental sibling of [`shared_trees_up_to`].  A bound-`n` corpus is
/// Catalan-sized and [`shared_trees_up_to`] materializes all of it before
/// returning (seconds and hundreds of MB around `n = 13`); callers that
/// need to react between size tranches — the cancellable bounded-validity
/// engine — iterate `1..=n` over this accessor instead, paying for one
/// tranche at a time.
pub fn shared_trees_with(nodes: usize) -> std::sync::Arc<Vec<LabeledTree>> {
    use std::sync::OnceLock;
    static CACHE: OnceLock<ShapeCache> = OnceLock::new();
    CACHE
        .get_or_init(ShapeCache::default)
        .get_or_build(nodes, |n| {
            shapes_with(n).iter().map(LabeledTree::from_shape).collect()
        })
}

/// The memo behind the two shared-corpus accessors.  A Catalan-sized build
/// takes seconds, so it runs *outside* the map lock: other threads reading
/// resident entries (or building different keys) are never blocked behind
/// a builder.  Two threads racing on the same cold key may both build;
/// the first insert wins and the duplicate is dropped — bounded wasted
/// work, traded for never holding the lock across a multi-second build.
#[derive(Default)]
struct ShapeCache {
    map: std::sync::Mutex<std::collections::HashMap<usize, std::sync::Arc<Vec<LabeledTree>>>>,
}

impl ShapeCache {
    fn get_or_build(
        &self,
        key: usize,
        build: impl FnOnce(usize) -> Vec<LabeledTree>,
    ) -> std::sync::Arc<Vec<LabeledTree>> {
        use std::sync::Arc;
        if let Some(hit) = self.map.lock().expect("shape cache poisoned").get(&key) {
            return Arc::clone(hit);
        }
        let built = Arc::new(build(key));
        let mut map = self.map.lock().expect("shape cache poisoned");
        Arc::clone(map.entry(key).or_insert(built))
    }
}

/// Builds a complete binary tree of the given height (height 1 = single
/// node); handy for tests and benchmarks.
pub fn complete_tree(height: usize) -> LabeledTree {
    assert!(height >= 1, "height must be at least 1");
    let mut tree = LabeledTree::single();
    grow_complete(&mut tree, NodeId(0), height - 1);
    tree
}

fn grow_complete(tree: &mut LabeledTree, node: NodeId, remaining: usize) {
    if remaining == 0 {
        return;
    }
    let left = tree.add_left(node);
    let right = tree.add_right(node);
    grow_complete(tree, left, remaining - 1);
    grow_complete(tree, right, remaining - 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn building_and_navigation() {
        let mut tree = LabeledTree::single();
        let root = tree.root();
        let l = tree.add_left(root);
        let r = tree.add_right(root);
        let ll = tree.add_left(l);
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.left(root), Some(l));
        assert_eq!(tree.right(root), Some(r));
        assert_eq!(tree.parent(ll), Some(l));
        assert!(tree.is_leaf(r));
        assert!(!tree.is_leaf(root));
        assert_eq!(tree.depth(ll), 2);
        assert_eq!(tree.height(), 3);
    }

    #[test]
    fn reach_is_reflexive_and_transitive() {
        let mut tree = LabeledTree::single();
        let root = tree.root();
        let l = tree.add_left(root);
        let ll = tree.add_left(l);
        let r = tree.add_right(root);
        assert!(tree.reaches(root, ll));
        assert!(tree.reaches(l, ll));
        assert!(tree.reaches(ll, ll));
        assert!(!tree.reaches(ll, root));
        assert!(!tree.reaches(l, r));
    }

    #[test]
    fn labels_and_masks() {
        let mut tree = LabeledTree::single();
        let root = tree.root();
        tree.add_label(root, 0);
        tree.add_label(root, 2);
        assert!(tree.has_label(root, 0));
        assert!(!tree.has_label(root, 1));
        assert_eq!(tree.label_mask(root, 3), 0b101);
        assert_eq!(tree.nodes_with_label(2).len(), 1);
        tree.remove_label(root, 2);
        assert_eq!(tree.label_mask(root, 3), 0b001);
        tree.clear_labels();
        assert!(tree.labels(root).is_empty());
    }

    #[test]
    fn shape_enumeration_counts_are_catalan() {
        // The number of binary trees with n nodes is the n-th Catalan number.
        assert_eq!(shapes_with(1).len(), 1);
        assert_eq!(shapes_with(2).len(), 2);
        assert_eq!(shapes_with(3).len(), 5);
        assert_eq!(shapes_with(4).len(), 14);
        assert_eq!(shapes_with(5).len(), 42);
        // And the cumulative enumeration matches.
        assert_eq!(all_trees_up_to(4).len(), 1 + 2 + 5 + 14);
        let shared = shared_trees_up_to(4);
        assert_eq!(shared.len(), 1 + 2 + 5 + 14);
        let again = shared_trees_up_to(4);
        assert!(
            std::sync::Arc::ptr_eq(&shared, &again),
            "second lookup shares the cached vector"
        );
    }

    #[test]
    fn shapes_round_trip_to_trees() {
        for shape in shapes_with(4) {
            let tree = LabeledTree::from_shape(&shape);
            assert_eq!(tree.len(), 4);
        }
    }

    #[test]
    fn complete_tree_sizes() {
        assert_eq!(complete_tree(1).len(), 1);
        assert_eq!(complete_tree(2).len(), 3);
        assert_eq!(complete_tree(3).len(), 7);
        assert_eq!(complete_tree(4).len(), 15);
        assert_eq!(complete_tree(3).height(), 3);
    }
}
