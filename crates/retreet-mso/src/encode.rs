//! Encoding traversal access summaries as MSO formulas over trees.
//!
//! The race and equivalence engines summarize what a block touches as a
//! *region* relative to its invocation node — the node itself, one of its
//! children, or a whole subtree (for recursive calls) — guarded by the
//! structural `IsNil` conditions on the path to the block.  This module
//! lowers those summaries to formulas in the fragment of
//! [`crate::formula::Formula`] that [`crate::compile()`] decides, so overlap
//! and guard-equivalence questions become NFTA emptiness and inclusion
//! checks: an *unbounded* answer, quantifying over every tree at once
//! instead of enumerating trees up to a size budget.

use crate::compile::{compile, is_valid};
use crate::formula::Formula;
use crate::tree::LabeledTree;

/// A step down from the invocation node: the node itself or one child.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChildStep {
    /// The invocation node itself (`n`).
    Here,
    /// Its left child (`n.l`).
    Left,
    /// Its right child (`n.r`).
    Right,
}

/// The part of the tree a block (running at some invocation node) may touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Region {
    /// Exactly the node at the given offset (a direct field access).
    At(ChildStep),
    /// The whole subtree rooted at the offset (a recursive call: the callee
    /// and everything it transitively calls stay inside the subtree because
    /// the language only has downward node references).
    Subtree(ChildStep),
}

/// Structural constraints the path to a block imposes on the invocation
/// node: which children must exist or be absent (`IsNil` guards).
///
/// A constraint with both `no_*` and `has_*` set for the same side is
/// contradictory — the guarded block is structurally unreachable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StructConstraint {
    /// `n.l == nil` must hold.
    pub no_left: bool,
    /// `n.l != nil` must hold.
    pub has_left: bool,
    /// `n.r == nil` must hold.
    pub no_right: bool,
    /// `n.r != nil` must hold.
    pub has_right: bool,
}

impl StructConstraint {
    /// True when the constraint can never hold on any tree node.
    pub fn contradictory(&self) -> bool {
        (self.no_left && self.has_left) || (self.no_right && self.has_right)
    }
}

/// One side of a potential conflict: a region plus the structural guard
/// under which the access happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConflictSide {
    /// Where the access lands, relative to the shared invocation node.
    pub region: Region,
    /// Structural conditions on the invocation node for the access to run.
    pub guard: StructConstraint,
}

/// Whether two guarded regions can touch a common node on *some* tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlapVerdict {
    /// No tree puts the two regions in contact: proved over all trees.
    Disjoint,
    /// Some tree witnesses the contact; the example (when extraction
    /// succeeded) is a labeled tree accepted by the conflict automaton.
    Overlap(Option<LabeledTree>),
}

impl OverlapVerdict {
    /// True for the [`OverlapVerdict::Disjoint`] case.
    pub fn is_disjoint(&self) -> bool {
        matches!(self, OverlapVerdict::Disjoint)
    }
}

fn membership(v: &str, w: &str, region: Region, fresh: &mut u32) -> Formula {
    let fo = |name: &str| crate::formula::FoVar::new(name);
    match region {
        Region::At(ChildStep::Here) => Formula::Eq(fo(v), fo(w)),
        Region::At(ChildStep::Left) => Formula::Left(fo(v), fo(w)),
        Region::At(ChildStep::Right) => Formula::Right(fo(v), fo(w)),
        Region::Subtree(ChildStep::Here) => Formula::Reach(fo(v), fo(w)),
        Region::Subtree(step @ (ChildStep::Left | ChildStep::Right)) => {
            let c = format!("c{fresh}");
            *fresh += 1;
            let edge = match step {
                ChildStep::Left => Formula::Left(fo(v), fo(&c)),
                _ => Formula::Right(fo(v), fo(&c)),
            };
            Formula::exists_fo(c.clone(), Formula::and(edge, Formula::Reach(fo(&c), fo(w))))
        }
    }
}

fn child_exists(v: &str, left: bool, fresh: &mut u32) -> Formula {
    let fo = |name: &str| crate::formula::FoVar::new(name);
    let g = format!("g{fresh}");
    *fresh += 1;
    let edge = if left {
        Formula::Left(fo(v), fo(&g))
    } else {
        Formula::Right(fo(v), fo(&g))
    };
    Formula::exists_fo(g, edge)
}

fn guard_constraint(v: &str, guard: &StructConstraint, fresh: &mut u32) -> Formula {
    let mut parts = Vec::new();
    if guard.has_left {
        parts.push(child_exists(v, true, fresh));
    }
    if guard.no_left {
        parts.push(Formula::not(child_exists(v, true, fresh)));
    }
    if guard.has_right {
        parts.push(child_exists(v, false, fresh));
    }
    if guard.no_right {
        parts.push(Formula::not(child_exists(v, false, fresh)));
    }
    Formula::conj(parts)
}

/// The closed formula "some tree has an invocation node `v` satisfying both
/// guards and a node `w` inside both regions".
pub fn overlap_formula(a: &ConflictSide, b: &ConflictSide) -> Formula {
    let mut fresh = 0;
    let body = Formula::conj([
        guard_constraint("v", &a.guard, &mut fresh),
        guard_constraint("v", &b.guard, &mut fresh),
        membership("v", "w", a.region, &mut fresh),
        membership("v", "w", b.region, &mut fresh),
    ]);
    Formula::exists_fo("v", Formula::exists_fo("w", body))
}

/// Decides, over *all* trees, whether the two guarded regions can overlap.
///
/// Compile failures (which the small fixed-shape formulas built here do not
/// trigger in practice) degrade soundly to "may overlap" with no example.
pub fn check_overlap(a: &ConflictSide, b: &ConflictSide) -> OverlapVerdict {
    if a.guard.contradictory() || b.guard.contradictory() {
        return OverlapVerdict::Disjoint;
    }
    let formula = overlap_formula(a, b);
    match compile(&formula) {
        Ok(compiled) => {
            if compiled.automaton.is_empty() {
                OverlapVerdict::Disjoint
            } else {
                OverlapVerdict::Overlap(compiled.automaton.example_tree())
            }
        }
        Err(_) => OverlapVerdict::Overlap(None),
    }
}

/// A purely structural boolean guard: the fragment of the surface language's
/// guard expressions built from `IsNil` tests, negation, and conjunction.
///
/// `NilAt(Here)` denotes "the invocation node is nil"; since the guards
/// compared here are evaluated at actual tree nodes, it lowers to `false`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardExpr {
    /// The constant true guard.
    True,
    /// `<offset> == nil`.
    NilAt(ChildStep),
    /// Guard negation.
    Not(Box<GuardExpr>),
    /// Guard conjunction.
    And(Box<GuardExpr>, Box<GuardExpr>),
}

fn guard_expr_formula(v: &str, expr: &GuardExpr, fresh: &mut u32) -> Formula {
    match expr {
        GuardExpr::True => Formula::True,
        GuardExpr::NilAt(ChildStep::Here) => Formula::False,
        GuardExpr::NilAt(ChildStep::Left) => Formula::not(child_exists(v, true, fresh)),
        GuardExpr::NilAt(ChildStep::Right) => Formula::not(child_exists(v, false, fresh)),
        GuardExpr::Not(inner) => Formula::not(guard_expr_formula(v, inner, fresh)),
        GuardExpr::And(a, b) => Formula::and(
            guard_expr_formula(v, a, fresh),
            guard_expr_formula(v, b, fresh),
        ),
    }
}

/// Decides whether two structural guards hold on exactly the same nodes of
/// every tree: validity of `∀v. (a(v) ↔ b(v))` — mutual language inclusion
/// of the compiled guard automata.
///
/// Returns `false` (not equivalent) when compilation fails, which keeps
/// callers sound: they fall back to a stricter syntactic comparison.
pub fn guards_equivalent(a: &GuardExpr, b: &GuardExpr) -> bool {
    let mut fresh = 0;
    let lhs = guard_expr_formula("v", a, &mut fresh);
    let rhs = guard_expr_formula("v", b, &mut fresh);
    let formula = Formula::forall_fo("v", Formula::iff(lhs, rhs));
    is_valid(&formula).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn side(region: Region) -> ConflictSide {
        ConflictSide {
            region,
            guard: StructConstraint::default(),
        }
    }

    #[test]
    fn sibling_subtrees_are_disjoint() {
        let left = side(Region::Subtree(ChildStep::Left));
        let right = side(Region::Subtree(ChildStep::Right));
        assert!(check_overlap(&left, &right).is_disjoint());
    }

    #[test]
    fn node_and_its_subtree_overlap_with_a_witness() {
        let here = side(Region::At(ChildStep::Here));
        let subtree = side(Region::Subtree(ChildStep::Here));
        match check_overlap(&here, &subtree) {
            OverlapVerdict::Overlap(Some(example)) => {
                let compiled = compile(&overlap_formula(&here, &subtree)).unwrap();
                assert!(compiled.automaton.accepts(&example));
            }
            other => panic!("expected an overlap with a witness, got {other:?}"),
        }
    }

    #[test]
    fn child_access_misses_the_other_subtree() {
        let at_left = side(Region::At(ChildStep::Left));
        let right_subtree = side(Region::Subtree(ChildStep::Right));
        assert!(check_overlap(&at_left, &right_subtree).is_disjoint());
        // But the left child is inside the left subtree.
        let left_subtree = side(Region::Subtree(ChildStep::Left));
        assert!(!check_overlap(&at_left, &left_subtree).is_disjoint());
    }

    #[test]
    fn contradictory_guards_rule_out_overlap() {
        let impossible = ConflictSide {
            region: Region::At(ChildStep::Here),
            guard: StructConstraint {
                no_left: true,
                has_left: true,
                ..StructConstraint::default()
            },
        };
        let any = side(Region::Subtree(ChildStep::Here));
        assert!(check_overlap(&impossible, &any).is_disjoint());
    }

    #[test]
    fn incompatible_guards_rule_out_overlap() {
        // One access requires a left child, the other its absence: they can
        // never fire at the same invocation node.
        let with_left = ConflictSide {
            region: Region::At(ChildStep::Here),
            guard: StructConstraint {
                has_left: true,
                ..StructConstraint::default()
            },
        };
        let without_left = ConflictSide {
            region: Region::At(ChildStep::Here),
            guard: StructConstraint {
                no_left: true,
                ..StructConstraint::default()
            },
        };
        assert!(check_overlap(&with_left, &without_left).is_disjoint());
        assert!(!check_overlap(&with_left, &with_left).is_disjoint());
    }

    #[test]
    fn guard_equivalence_sees_through_double_negation() {
        let plain = GuardExpr::NilAt(ChildStep::Left);
        let doubled = GuardExpr::Not(Box::new(GuardExpr::Not(Box::new(plain.clone()))));
        assert!(guards_equivalent(&plain, &doubled));
        assert!(guards_equivalent(
            &GuardExpr::True,
            &GuardExpr::Not(Box::new(GuardExpr::NilAt(ChildStep::Here)))
        ));
        assert!(!guards_equivalent(
            &GuardExpr::NilAt(ChildStep::Left),
            &GuardExpr::NilAt(ChildStep::Right)
        ));
    }
}
