//! Encoding traversal access summaries as MSO formulas over trees.
//!
//! The race and equivalence engines summarize what a block touches as a
//! *region* relative to its invocation node — the node itself, one of its
//! children, or a whole subtree (for recursive calls) — guarded by the
//! structural `IsNil` conditions on the path to the block.  This module
//! lowers those summaries to formulas in the fragment of
//! [`crate::formula::Formula`] that [`crate::compile()`] decides, so overlap
//! and guard-equivalence questions become NFTA emptiness and inclusion
//! checks: an *unbounded* answer, quantifying over every tree at once
//! instead of enumerating trees up to a size budget.

use crate::compile::{compile, is_valid};
use crate::formula::Formula;
use crate::tree::LabeledTree;

/// A step down from the invocation node: the node itself or one child axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChildStep {
    /// The invocation node itself (`n`).
    Here,
    /// Its child along the given axis (`n.l` is axis 0, `n.r` axis 1, and
    /// `n.c<k>` axis `k` for higher arities).
    Child(u8),
}

impl ChildStep {
    /// The left child of a binary node (axis 0).
    pub const LEFT: ChildStep = ChildStep::Child(0);
    /// The right child of a binary node (axis 1).
    pub const RIGHT: ChildStep = ChildStep::Child(1);
}

/// The part of the tree a block (running at some invocation node) may touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Region {
    /// Exactly the node at the given offset (a direct field access).
    At(ChildStep),
    /// The whole subtree rooted at the offset (a recursive call: the callee
    /// and everything it transitively calls stay inside the subtree because
    /// the language only has downward node references).
    Subtree(ChildStep),
}

/// Structural constraints the path to a block imposes on the invocation
/// node: which children must exist or be absent (`IsNil` guards), one bit
/// per child axis (bit `k` speaks about axis `k`; arities above
/// [`MAX_CONSTRAINT_AXES`] are unsupported by the surface language).
///
/// A constraint with both the `no` and `has` bit set for the same axis is
/// contradictory — the guarded block is structurally unreachable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StructConstraint {
    /// Axes whose child must be nil (`n.c<k> == nil` must hold).
    pub no_mask: u8,
    /// Axes whose child must exist (`n.c<k> != nil` must hold).
    pub has_mask: u8,
}

/// Number of child axes a [`StructConstraint`] can speak about.
pub const MAX_CONSTRAINT_AXES: u8 = 8;

impl StructConstraint {
    /// Requires the child along `axis` to be nil.
    pub fn require_no(&mut self, axis: u8) {
        self.no_mask |= 1 << axis;
    }

    /// Requires the child along `axis` to exist.
    pub fn require_has(&mut self, axis: u8) {
        self.has_mask |= 1 << axis;
    }

    /// True when the child along `axis` must be nil.
    pub fn no(&self, axis: u8) -> bool {
        self.no_mask & (1 << axis) != 0
    }

    /// True when the child along `axis` must exist.
    pub fn has(&self, axis: u8) -> bool {
        self.has_mask & (1 << axis) != 0
    }

    /// True when the constraint can never hold on any tree node.
    pub fn contradictory(&self) -> bool {
        self.no_mask & self.has_mask != 0
    }
}

/// One side of a potential conflict: a region plus the structural guard
/// under which the access happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConflictSide {
    /// Where the access lands, relative to the shared invocation node.
    pub region: Region,
    /// Structural conditions on the invocation node for the access to run.
    pub guard: StructConstraint,
}

/// Whether two guarded regions can touch a common node on *some* tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlapVerdict {
    /// No tree puts the two regions in contact: proved over all trees.
    Disjoint,
    /// Some tree witnesses the contact; the example (when extraction
    /// succeeded) is a labeled tree accepted by the conflict automaton.
    Overlap(Option<LabeledTree>),
}

impl OverlapVerdict {
    /// True for the [`OverlapVerdict::Disjoint`] case.
    pub fn is_disjoint(&self) -> bool {
        matches!(self, OverlapVerdict::Disjoint)
    }
}

/// Builds the slotted first-child/next-sibling chain for `axis` under `v`
/// and applies `tail` to the final slot: `∃s0..s_axis. Left(v, s0) ∧
/// Right(s0, s1) ∧ … ∧ tail(s_axis)`.
///
/// This is how arities above 2 are binarized: each k-ary node's children
/// hang off a right-spine of *slot* nodes, child `j` being the left child
/// of slot `j`.  The formulas stay in the binary NFTA algebra, and since
/// the binary universe contains every slotted image of every k-ary tree, an
/// empty conflict automaton still proves k-ary disjointness.
fn slotted(
    v: &str,
    axis: u8,
    fresh: &mut u32,
    tail: impl FnOnce(&str, &mut u32) -> Formula,
) -> Formula {
    let fo = |name: &str| crate::formula::FoVar::new(name);
    let slots: Vec<String> = (0..=axis)
        .map(|_| {
            let s = format!("s{fresh}");
            *fresh += 1;
            s
        })
        .collect();
    let mut parts = vec![Formula::Left(fo(v), fo(&slots[0]))];
    for j in 1..slots.len() {
        parts.push(Formula::Right(fo(&slots[j - 1]), fo(&slots[j])));
    }
    parts.push(tail(slots.last().expect("at least one slot"), fresh));
    let mut body = Formula::conj(parts);
    for s in slots.into_iter().rev() {
        body = Formula::exists_fo(s, body);
    }
    body
}

fn membership(v: &str, w: &str, region: Region, arity: u8, fresh: &mut u32) -> Formula {
    let fo = |name: &str| crate::formula::FoVar::new(name);
    match region {
        Region::At(ChildStep::Here) => Formula::Eq(fo(v), fo(w)),
        Region::At(ChildStep::Child(0)) if arity <= 2 => Formula::Left(fo(v), fo(w)),
        Region::At(ChildStep::Child(_)) if arity <= 2 => Formula::Right(fo(v), fo(w)),
        Region::At(ChildStep::Child(axis)) => {
            let w = w.to_string();
            slotted(v, axis, fresh, move |slot, _| {
                Formula::Left(
                    crate::formula::FoVar::new(slot),
                    crate::formula::FoVar::new(&w),
                )
            })
        }
        Region::Subtree(ChildStep::Here) => Formula::Reach(fo(v), fo(w)),
        Region::Subtree(ChildStep::Child(axis)) if arity <= 2 => {
            let c = format!("c{fresh}");
            *fresh += 1;
            let edge = if axis == 0 {
                Formula::Left(fo(v), fo(&c))
            } else {
                Formula::Right(fo(v), fo(&c))
            };
            Formula::exists_fo(c.clone(), Formula::and(edge, Formula::Reach(fo(&c), fo(w))))
        }
        Region::Subtree(ChildStep::Child(axis)) => {
            let w = w.to_string();
            slotted(v, axis, fresh, move |slot, fresh| {
                let fo = |name: &str| crate::formula::FoVar::new(name);
                let c = format!("c{fresh}");
                *fresh += 1;
                Formula::exists_fo(
                    c.clone(),
                    Formula::and(
                        Formula::Left(fo(slot), fo(&c)),
                        Formula::Reach(fo(&c), fo(&w)),
                    ),
                )
            })
        }
    }
}

fn child_exists(v: &str, axis: u8, arity: u8, fresh: &mut u32) -> Formula {
    let fo = |name: &str| crate::formula::FoVar::new(name);
    if arity <= 2 {
        let g = format!("g{fresh}");
        *fresh += 1;
        let edge = if axis == 0 {
            Formula::Left(fo(v), fo(&g))
        } else {
            Formula::Right(fo(v), fo(&g))
        };
        return Formula::exists_fo(g, edge);
    }
    slotted(v, axis, fresh, |slot, fresh| {
        let fo = |name: &str| crate::formula::FoVar::new(name);
        let g = format!("g{fresh}");
        *fresh += 1;
        Formula::exists_fo(g.clone(), Formula::Left(fo(slot), fo(&g)))
    })
}

fn guard_constraint(v: &str, guard: &StructConstraint, arity: u8, fresh: &mut u32) -> Formula {
    let mut parts = Vec::new();
    for axis in 0..arity.max(2) {
        if guard.has(axis) {
            parts.push(child_exists(v, axis, arity, fresh));
        }
        if guard.no(axis) {
            parts.push(Formula::not(child_exists(v, axis, arity, fresh)));
        }
    }
    Formula::conj(parts)
}

/// The closed formula "some tree has an invocation node `v` satisfying both
/// guards and a node `w` inside both regions".
pub fn overlap_formula(a: &ConflictSide, b: &ConflictSide) -> Formula {
    overlap_formula_k(a, b, 2)
}

/// [`overlap_formula`] generalized to k-ary programs: axes beyond the
/// binary pair are encoded through the slotted first-child/next-sibling
/// binarization (see `slotted`).  Arity 2 produces exactly the binary
/// formula.
pub fn overlap_formula_k(a: &ConflictSide, b: &ConflictSide, arity: u8) -> Formula {
    let mut fresh = 0;
    let body = Formula::conj([
        guard_constraint("v", &a.guard, arity, &mut fresh),
        guard_constraint("v", &b.guard, arity, &mut fresh),
        membership("v", "w", a.region, arity, &mut fresh),
        membership("v", "w", b.region, arity, &mut fresh),
    ]);
    Formula::exists_fo("v", Formula::exists_fo("w", body))
}

/// Decides, over *all* trees, whether the two guarded regions can overlap.
///
/// Compile failures (which the small fixed-shape formulas built here do not
/// trigger in practice) degrade soundly to "may overlap" with no example.
pub fn check_overlap(a: &ConflictSide, b: &ConflictSide) -> OverlapVerdict {
    check_overlap_k(a, b, 2)
}

/// [`check_overlap`] for a k-ary program.  `Disjoint` remains sound for
/// every k-ary tree (the binary universe contains every slotted image); an
/// overlap at arity above 2 carries no example, because the accepted tree
/// lives in the slotted binary encoding rather than the k-ary world.
pub fn check_overlap_k(a: &ConflictSide, b: &ConflictSide, arity: u8) -> OverlapVerdict {
    if a.guard.contradictory() || b.guard.contradictory() {
        return OverlapVerdict::Disjoint;
    }
    if arity > 2 {
        // The slotted binarization is sound but its existential slot chains
        // make the NFTA compilation blow up; the region language is small
        // enough to decide exactly by case analysis instead.
        return check_overlap_direct(a, b);
    }
    let formula = overlap_formula_k(a, b, arity);
    match compile(&formula) {
        Ok(compiled) => {
            if compiled.automaton.is_empty() {
                OverlapVerdict::Disjoint
            } else if arity <= 2 {
                OverlapVerdict::Overlap(compiled.automaton.example_tree())
            } else {
                OverlapVerdict::Overlap(None)
            }
        }
        Err(_) => OverlapVerdict::Overlap(None),
    }
}

/// Exact disjointness for guarded single-step regions, decided by case
/// analysis instead of automata.
///
/// Both guards constrain the *same* invocation node, so their masks merge;
/// a merged contradiction, or a region hanging off a child the merged guard
/// forbids, makes contact impossible.  Otherwise the regions are a node
/// (`At`) or a full subtree (`Subtree`) at most one step below `v`, and on
/// trees (acyclic, references only point downward):
///
/// * `At(x)` meets `At(y)` iff `x == y` — distinct steps land on distinct
///   nodes.
/// * `Subtree(Here)` contains `v` and every descendant, so it meets
///   everything still possible under the guard.
/// * `Subtree(Child(i))` meets `At(Child(j))` or `Subtree(Child(j))` iff
///   `i == j` — subtrees under distinct children are disjoint — and never
///   meets `At(Here)`, which lies strictly above it.
///
/// Any surviving combination is witnessed by a node whose children exist
/// exactly where the merged guard and the two steps demand, so "overlap"
/// answers are never spurious.
fn check_overlap_direct(a: &ConflictSide, b: &ConflictSide) -> OverlapVerdict {
    let no = a.guard.no_mask | b.guard.no_mask;
    let has = a.guard.has_mask | b.guard.has_mask;
    if no & has != 0 {
        return OverlapVerdict::Disjoint;
    }
    let step_of = |region: Region| match region {
        Region::At(step) | Region::Subtree(step) => step,
    };
    let forbidden = |step: ChildStep| match step {
        ChildStep::Here => false,
        ChildStep::Child(axis) => no & (1u8 << axis) != 0,
    };
    if forbidden(step_of(a.region)) || forbidden(step_of(b.region)) {
        return OverlapVerdict::Disjoint;
    }
    let overlap = match (a.region, b.region) {
        (Region::At(x), Region::At(y)) => x == y,
        (Region::Subtree(x), Region::Subtree(y)) => match (x, y) {
            (ChildStep::Here, _) | (_, ChildStep::Here) => true,
            (ChildStep::Child(i), ChildStep::Child(j)) => i == j,
        },
        (Region::At(at), Region::Subtree(sub)) | (Region::Subtree(sub), Region::At(at)) => {
            match (at, sub) {
                (_, ChildStep::Here) => true,
                (ChildStep::Here, ChildStep::Child(_)) => false,
                (ChildStep::Child(i), ChildStep::Child(j)) => i == j,
            }
        }
    };
    if overlap {
        OverlapVerdict::Overlap(None)
    } else {
        OverlapVerdict::Disjoint
    }
}

/// A purely structural boolean guard: the fragment of the surface language's
/// guard expressions built from `IsNil` tests, negation, and conjunction.
///
/// `NilAt(Here)` denotes "the invocation node is nil"; since the guards
/// compared here are evaluated at actual tree nodes, it lowers to `false`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardExpr {
    /// The constant true guard.
    True,
    /// `<offset> == nil`.
    NilAt(ChildStep),
    /// Guard negation.
    Not(Box<GuardExpr>),
    /// Guard conjunction.
    And(Box<GuardExpr>, Box<GuardExpr>),
}

fn guard_expr_formula(v: &str, expr: &GuardExpr, arity: u8, fresh: &mut u32) -> Formula {
    match expr {
        GuardExpr::True => Formula::True,
        GuardExpr::NilAt(ChildStep::Here) => Formula::False,
        GuardExpr::NilAt(ChildStep::Child(axis)) => {
            Formula::not(child_exists(v, *axis, arity, fresh))
        }
        GuardExpr::Not(inner) => Formula::not(guard_expr_formula(v, inner, arity, fresh)),
        GuardExpr::And(a, b) => Formula::and(
            guard_expr_formula(v, a, arity, fresh),
            guard_expr_formula(v, b, arity, fresh),
        ),
    }
}

/// Decides whether two structural guards hold on exactly the same nodes of
/// every tree: validity of `∀v. (a(v) ↔ b(v))` — mutual language inclusion
/// of the compiled guard automata.
///
/// Returns `false` (not equivalent) when compilation fails, which keeps
/// callers sound: they fall back to a stricter syntactic comparison.
pub fn guards_equivalent(a: &GuardExpr, b: &GuardExpr) -> bool {
    guards_equivalent_k(a, b, 2)
}

/// Evaluates a structural guard at a node whose nil children are exactly
/// the set bits of `nil_mask` (bit `k` ⇒ the child along axis `k` is nil).
fn guard_expr_eval(expr: &GuardExpr, nil_mask: u8) -> bool {
    match expr {
        GuardExpr::True => true,
        GuardExpr::NilAt(ChildStep::Here) => false,
        GuardExpr::NilAt(ChildStep::Child(axis)) => nil_mask & (1u8 << axis) != 0,
        GuardExpr::Not(inner) => !guard_expr_eval(inner, nil_mask),
        GuardExpr::And(a, b) => guard_expr_eval(a, nil_mask) && guard_expr_eval(b, nil_mask),
    }
}

/// [`guards_equivalent`] for guards of a k-ary program.  Arity 2 is the
/// binary automata check; above 2 a guard only observes which children are
/// nil and every nil pattern is realized by some tree node, so validity of
/// `a ↔ b` reduces to agreement on all `2^k` child-nil assignments.
pub fn guards_equivalent_k(a: &GuardExpr, b: &GuardExpr, arity: u8) -> bool {
    if arity > 2 {
        let axes = arity.min(MAX_CONSTRAINT_AXES);
        return (0..1u16 << axes)
            .all(|mask| guard_expr_eval(a, mask as u8) == guard_expr_eval(b, mask as u8));
    }
    let mut fresh = 0;
    let lhs = guard_expr_formula("v", a, arity, &mut fresh);
    let rhs = guard_expr_formula("v", b, arity, &mut fresh);
    let formula = Formula::forall_fo("v", Formula::iff(lhs, rhs));
    is_valid(&formula).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn side(region: Region) -> ConflictSide {
        ConflictSide {
            region,
            guard: StructConstraint::default(),
        }
    }

    #[test]
    fn sibling_subtrees_are_disjoint() {
        let left = side(Region::Subtree(ChildStep::LEFT));
        let right = side(Region::Subtree(ChildStep::RIGHT));
        assert!(check_overlap(&left, &right).is_disjoint());
    }

    #[test]
    fn node_and_its_subtree_overlap_with_a_witness() {
        let here = side(Region::At(ChildStep::Here));
        let subtree = side(Region::Subtree(ChildStep::Here));
        match check_overlap(&here, &subtree) {
            OverlapVerdict::Overlap(Some(example)) => {
                let compiled = compile(&overlap_formula(&here, &subtree)).unwrap();
                assert!(compiled.automaton.accepts(&example));
            }
            other => panic!("expected an overlap with a witness, got {other:?}"),
        }
    }

    #[test]
    fn child_access_misses_the_other_subtree() {
        let at_left = side(Region::At(ChildStep::LEFT));
        let right_subtree = side(Region::Subtree(ChildStep::RIGHT));
        assert!(check_overlap(&at_left, &right_subtree).is_disjoint());
        // But the left child is inside the left subtree.
        let left_subtree = side(Region::Subtree(ChildStep::LEFT));
        assert!(!check_overlap(&at_left, &left_subtree).is_disjoint());
    }

    #[test]
    fn contradictory_guards_rule_out_overlap() {
        let impossible = ConflictSide {
            region: Region::At(ChildStep::Here),
            guard: StructConstraint {
                no_mask: 0b01,
                has_mask: 0b01,
            },
        };
        let any = side(Region::Subtree(ChildStep::Here));
        assert!(check_overlap(&impossible, &any).is_disjoint());
    }

    #[test]
    fn incompatible_guards_rule_out_overlap() {
        // One access requires a left child, the other its absence: they can
        // never fire at the same invocation node.
        let with_left = ConflictSide {
            region: Region::At(ChildStep::Here),
            guard: StructConstraint {
                has_mask: 0b01,
                ..StructConstraint::default()
            },
        };
        let without_left = ConflictSide {
            region: Region::At(ChildStep::Here),
            guard: StructConstraint {
                no_mask: 0b01,
                ..StructConstraint::default()
            },
        };
        assert!(check_overlap(&with_left, &without_left).is_disjoint());
        assert!(!check_overlap(&with_left, &with_left).is_disjoint());
    }

    #[test]
    fn the_direct_decision_agrees_with_the_automata_on_binary_regions() {
        // The arity > 2 fast path must be the same relation the NFTA
        // pipeline decides; cross-check every region pair under every small
        // guard at arity 2, where both deciders apply.
        let regions = [
            Region::At(ChildStep::Here),
            Region::At(ChildStep::LEFT),
            Region::At(ChildStep::RIGHT),
            Region::Subtree(ChildStep::Here),
            Region::Subtree(ChildStep::LEFT),
            Region::Subtree(ChildStep::RIGHT),
        ];
        for &ra in &regions {
            for &rb in &regions {
                let a = side(ra);
                let b = side(rb);
                assert_eq!(
                    check_overlap_direct(&a, &b).is_disjoint(),
                    check_overlap_k(&a, &b, 2).is_disjoint(),
                    "deciders disagree on {a:?} vs {b:?}"
                );
            }
        }
        // Guarded spot checks (the full guard product stacks enough
        // quantifiers to stall the debug-mode NFTA pipeline): incompatible
        // requirements, a region under a forbidden child, and a guard that
        // merely requires the touched child.
        let guarded = [
            (
                ConflictSide {
                    region: Region::At(ChildStep::Here),
                    guard: StructConstraint {
                        has_mask: 0b01,
                        ..StructConstraint::default()
                    },
                },
                ConflictSide {
                    region: Region::At(ChildStep::Here),
                    guard: StructConstraint {
                        no_mask: 0b01,
                        ..StructConstraint::default()
                    },
                },
            ),
            (
                ConflictSide {
                    region: Region::At(ChildStep::LEFT),
                    guard: StructConstraint {
                        no_mask: 0b01,
                        ..StructConstraint::default()
                    },
                },
                side(Region::Subtree(ChildStep::Here)),
            ),
            (
                ConflictSide {
                    region: Region::Subtree(ChildStep::LEFT),
                    guard: StructConstraint {
                        has_mask: 0b01,
                        ..StructConstraint::default()
                    },
                },
                side(Region::At(ChildStep::LEFT)),
            ),
        ];
        for (a, b) in guarded {
            assert_eq!(
                check_overlap_direct(&a, &b).is_disjoint(),
                check_overlap_k(&a, &b, 2).is_disjoint(),
                "deciders disagree on {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn ternary_overlap_questions_decide_instantly() {
        // Sibling subtrees stay disjoint and same-axis contacts stay
        // overlaps when the third axis is in play.
        for i in 0..3u8 {
            for j in 0..3u8 {
                let a = side(Region::Subtree(ChildStep::Child(i)));
                let b = side(Region::Subtree(ChildStep::Child(j)));
                assert_eq!(check_overlap_k(&a, &b, 3).is_disjoint(), i != j);
                let at = side(Region::At(ChildStep::Child(i)));
                assert_eq!(check_overlap_k(&at, &b, 3).is_disjoint(), i != j);
            }
        }
        // A guard forbidding the middle child empties regions under it.
        let guarded = ConflictSide {
            region: Region::At(ChildStep::Child(1)),
            guard: StructConstraint {
                no_mask: 0b010,
                ..StructConstraint::default()
            },
        };
        let everything = side(Region::Subtree(ChildStep::Here));
        assert!(check_overlap_k(&guarded, &everything, 3).is_disjoint());
    }

    #[test]
    fn ternary_guard_equivalence_is_propositional() {
        let c2 = GuardExpr::NilAt(ChildStep::Child(2));
        let doubled = GuardExpr::Not(Box::new(GuardExpr::Not(Box::new(c2.clone()))));
        assert!(guards_equivalent_k(&c2, &doubled, 3));
        assert!(!guards_equivalent_k(
            &c2,
            &GuardExpr::NilAt(ChildStep::Child(1)),
            3
        ));
        assert!(guards_equivalent_k(
            &GuardExpr::True,
            &GuardExpr::Not(Box::new(GuardExpr::NilAt(ChildStep::Here))),
            3
        ));
    }

    #[test]
    fn guard_equivalence_sees_through_double_negation() {
        let plain = GuardExpr::NilAt(ChildStep::LEFT);
        let doubled = GuardExpr::Not(Box::new(GuardExpr::Not(Box::new(plain.clone()))));
        assert!(guards_equivalent(&plain, &doubled));
        assert!(guards_equivalent(
            &GuardExpr::True,
            &GuardExpr::Not(Box::new(GuardExpr::NilAt(ChildStep::Here)))
        ));
        assert!(!guards_equivalent(
            &GuardExpr::NilAt(ChildStep::LEFT),
            &GuardExpr::NilAt(ChildStep::RIGHT)
        ));
    }
}
