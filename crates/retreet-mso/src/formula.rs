//! Monadic second-order formulas over binary trees (§4 of the paper).
//!
//! The logic has first-order variables ranging over tree nodes, second-order
//! variables ranging over *sets* of nodes, the structural predicates `root`,
//! `left`, `right` and the transitive-closure predicate `reach`, plus the
//! usual boolean connectives and quantifiers.  The Retreet encoding only ever
//! uses this fragment (WS2S), which is what MONA decides for the authors and
//! what [`crate::checker`]/[`crate::bounded`]/[`crate::automata`] decide here.

use std::fmt;

/// A first-order (node) variable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FoVar(pub String);

/// A second-order (node-set) variable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SoVar(pub String);

impl FoVar {
    /// Builds a first-order variable from a name.
    pub fn new(name: impl Into<String>) -> Self {
        FoVar(name.into())
    }
}

impl SoVar {
    /// Builds a second-order variable from a name.
    pub fn new(name: impl Into<String>) -> Self {
        SoVar(name.into())
    }
}

impl fmt::Display for FoVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for SoVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An MSO formula over binary trees.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// `x = y`.
    Eq(FoVar, FoVar),
    /// `root(x)` — `x` is the root of the tree.
    Root(FoVar),
    /// `left(x) = y` — `y` is the left child of `x`.
    Left(FoVar, FoVar),
    /// `right(x) = y` — `y` is the right child of `x`.
    Right(FoVar, FoVar),
    /// `reach(x, y)` — `x` is an ancestor of `y` (reflexively).
    Reach(FoVar, FoVar),
    /// `leaf(x)` — `x` has no children.
    Leaf(FoVar),
    /// `x ∈ X`.
    In(FoVar, SoVar),
    /// `X ⊆ Y`.
    Subset(SoVar, SoVar),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Bi-implication.
    Iff(Box<Formula>, Box<Formula>),
    /// First-order existential quantification.
    ExistsFo(FoVar, Box<Formula>),
    /// First-order universal quantification.
    ForallFo(FoVar, Box<Formula>),
    /// Second-order existential quantification.
    ExistsSo(SoVar, Box<Formula>),
    /// Second-order universal quantification.
    ForallSo(SoVar, Box<Formula>),
}

impl Formula {
    /// Negation helper.
    #[allow(clippy::should_implement_trait)] // an associated constructor, not `!f`
    pub fn not(inner: Formula) -> Formula {
        Formula::Not(Box::new(inner))
    }

    /// Conjunction helper.
    pub fn and(lhs: Formula, rhs: Formula) -> Formula {
        Formula::And(Box::new(lhs), Box::new(rhs))
    }

    /// Disjunction helper.
    pub fn or(lhs: Formula, rhs: Formula) -> Formula {
        Formula::Or(Box::new(lhs), Box::new(rhs))
    }

    /// Implication helper.
    pub fn implies(lhs: Formula, rhs: Formula) -> Formula {
        Formula::Implies(Box::new(lhs), Box::new(rhs))
    }

    /// Bi-implication helper.
    pub fn iff(lhs: Formula, rhs: Formula) -> Formula {
        Formula::Iff(Box::new(lhs), Box::new(rhs))
    }

    /// `∃x. body`.
    pub fn exists_fo(var: impl Into<String>, body: Formula) -> Formula {
        Formula::ExistsFo(FoVar::new(var), Box::new(body))
    }

    /// `∀x. body`.
    pub fn forall_fo(var: impl Into<String>, body: Formula) -> Formula {
        Formula::ForallFo(FoVar::new(var), Box::new(body))
    }

    /// `∃X. body`.
    pub fn exists_so(var: impl Into<String>, body: Formula) -> Formula {
        Formula::ExistsSo(SoVar::new(var), Box::new(body))
    }

    /// `∀X. body`.
    pub fn forall_so(var: impl Into<String>, body: Formula) -> Formula {
        Formula::ForallSo(SoVar::new(var), Box::new(body))
    }

    /// Conjunction of an arbitrary number of formulas (true when empty).
    pub fn conj<I: IntoIterator<Item = Formula>>(parts: I) -> Formula {
        let mut iter = parts.into_iter();
        match iter.next() {
            None => Formula::True,
            Some(first) => iter.fold(first, Formula::and),
        }
    }

    /// Disjunction of an arbitrary number of formulas (false when empty).
    pub fn disj<I: IntoIterator<Item = Formula>>(parts: I) -> Formula {
        let mut iter = parts.into_iter();
        match iter.next() {
            None => Formula::False,
            Some(first) => iter.fold(first, Formula::or),
        }
    }

    /// The free first-order variables of the formula.
    pub fn free_fo_vars(&self) -> Vec<FoVar> {
        let mut out = Vec::new();
        self.collect_free_fo(&mut Vec::new(), &mut out);
        out.sort();
        out.dedup();
        out
    }

    /// The free second-order variables of the formula.
    pub fn free_so_vars(&self) -> Vec<SoVar> {
        let mut out = Vec::new();
        self.collect_free_so(&mut Vec::new(), &mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_free_fo(&self, bound: &mut Vec<FoVar>, out: &mut Vec<FoVar>) {
        let visit = |v: &FoVar, bound: &Vec<FoVar>, out: &mut Vec<FoVar>| {
            if !bound.contains(v) {
                out.push(v.clone());
            }
        };
        match self {
            Formula::True | Formula::False => {}
            Formula::Eq(a, b)
            | Formula::Left(a, b)
            | Formula::Right(a, b)
            | Formula::Reach(a, b) => {
                visit(a, bound, out);
                visit(b, bound, out);
            }
            Formula::Root(a) | Formula::Leaf(a) => visit(a, bound, out),
            Formula::In(a, _) => visit(a, bound, out),
            Formula::Subset(_, _) => {}
            Formula::Not(inner) => inner.collect_free_fo(bound, out),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Iff(a, b) => {
                a.collect_free_fo(bound, out);
                b.collect_free_fo(bound, out);
            }
            Formula::ExistsFo(v, body) | Formula::ForallFo(v, body) => {
                bound.push(v.clone());
                body.collect_free_fo(bound, out);
                bound.pop();
            }
            Formula::ExistsSo(_, body) | Formula::ForallSo(_, body) => {
                body.collect_free_fo(bound, out);
            }
        }
    }

    fn collect_free_so(&self, bound: &mut Vec<SoVar>, out: &mut Vec<SoVar>) {
        let visit = |v: &SoVar, bound: &Vec<SoVar>, out: &mut Vec<SoVar>| {
            if !bound.contains(v) {
                out.push(v.clone());
            }
        };
        match self {
            Formula::True | Formula::False => {}
            Formula::Eq(_, _)
            | Formula::Left(_, _)
            | Formula::Right(_, _)
            | Formula::Reach(_, _)
            | Formula::Root(_)
            | Formula::Leaf(_) => {}
            Formula::In(_, x) => visit(x, bound, out),
            Formula::Subset(x, y) => {
                visit(x, bound, out);
                visit(y, bound, out);
            }
            Formula::Not(inner) => inner.collect_free_so(bound, out),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Iff(a, b) => {
                a.collect_free_so(bound, out);
                b.collect_free_so(bound, out);
            }
            Formula::ExistsFo(_, body) | Formula::ForallFo(_, body) => {
                body.collect_free_so(bound, out);
            }
            Formula::ExistsSo(v, body) | Formula::ForallSo(v, body) => {
                bound.push(v.clone());
                body.collect_free_so(bound, out);
                bound.pop();
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Eq(a, b) => write!(f, "{a} = {b}"),
            Formula::Root(a) => write!(f, "root({a})"),
            Formula::Left(a, b) => write!(f, "left({a}) = {b}"),
            Formula::Right(a, b) => write!(f, "right({a}) = {b}"),
            Formula::Reach(a, b) => write!(f, "reach({a}, {b})"),
            Formula::Leaf(a) => write!(f, "leaf({a})"),
            Formula::In(a, x) => write!(f, "{a} in {x}"),
            Formula::Subset(x, y) => write!(f, "{x} sub {y}"),
            Formula::Not(inner) => write!(f, "~({inner})"),
            Formula::And(a, b) => write!(f, "({a} & {b})"),
            Formula::Or(a, b) => write!(f, "({a} | {b})"),
            Formula::Implies(a, b) => write!(f, "({a} => {b})"),
            Formula::Iff(a, b) => write!(f, "({a} <=> {b})"),
            Formula::ExistsFo(v, body) => write!(f, "ex1 {v}. ({body})"),
            Formula::ForallFo(v, body) => write!(f, "all1 {v}. ({body})"),
            Formula::ExistsSo(v, body) => write!(f, "ex2 {v}. ({body})"),
            Formula::ForallSo(v, body) => write!(f, "all2 {v}. ({body})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_display() {
        let x = FoVar::new("x");
        let formula = Formula::exists_fo("x", Formula::Root(x));
        let text = format!("{formula}");
        assert!(text.contains("ex1 x"));
        assert!(text.contains("root(x)"));
    }

    #[test]
    fn conj_and_disj_handle_empty() {
        assert_eq!(Formula::conj(Vec::new()), Formula::True);
        assert_eq!(Formula::disj(Vec::new()), Formula::False);
        let two = Formula::conj(vec![Formula::True, Formula::False]);
        assert!(matches!(two, Formula::And(_, _)));
    }

    #[test]
    fn free_variables_respect_binders() {
        // ∃x. x ∈ X  has free SO var X and no free FO vars.
        let formula = Formula::exists_fo("x", Formula::In(FoVar::new("x"), SoVar::new("X")));
        assert!(formula.free_fo_vars().is_empty());
        assert_eq!(formula.free_so_vars(), vec![SoVar::new("X")]);

        // x ∈ X ∧ ∃X. y ∈ X  has free x, y and free X (outer occurrence only).
        let formula = Formula::and(
            Formula::In(FoVar::new("x"), SoVar::new("X")),
            Formula::exists_so("X", Formula::In(FoVar::new("y"), SoVar::new("X"))),
        );
        assert_eq!(formula.free_fo_vars().len(), 2);
        assert_eq!(formula.free_so_vars(), vec![SoVar::new("X")]);
    }

    #[test]
    fn structural_predicates_have_two_fo_vars() {
        let formula = Formula::Left(FoVar::new("u"), FoVar::new("v"));
        assert_eq!(formula.free_fo_vars().len(), 2);
        assert!(formula.free_so_vars().is_empty());
    }
}
