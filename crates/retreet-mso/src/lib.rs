//! # retreet-mso — MSO logic over binary trees and tree automata
//!
//! The Retreet paper encodes configurations, schedules and dependences into
//! Monadic Second-Order logic over trees and discharges the resulting
//! queries with the MONA WS2S solver.  MONA is external infrastructure this
//! reproduction cannot vendor, so this crate provides the substitute
//! substrate (documented in DESIGN.md §3):
//!
//! * [`tree`] — finite labeled binary trees (the models) and exhaustive
//!   shape enumeration;
//! * [`formula`] — the MSO formula AST (`root`, `left`, `right`, `reach`,
//!   membership, subset, boolean connectives, first- and second-order
//!   quantifiers);
//! * [`checker`] — an explicit model checker (quantifier expansion) for a
//!   formula on a concrete labeled tree;
//! * [`bounded`] — bounded validity / satisfiability by enumerating every
//!   tree up to a node bound (the workhorse the analysis crate uses, with
//!   counterexamples reported as concrete trees exactly like MONA's);
//! * [`automata`] / [`mod@compile`] — a bottom-up tree-automata library
//!   (intersection, union, complement via determinization, projection,
//!   emptiness) and the Thatcher–Wright compilation of the core MSO fragment
//!   onto it, giving *unbounded* answers for that fragment.
//!
//! # Example
//!
//! ```
//! use retreet_mso::formula::{Formula, FoVar};
//! use retreet_mso::compile::is_valid;
//! use retreet_mso::bounded::check_validity;
//!
//! // "Every tree has a root that reaches every node."
//! let formula = Formula::forall_fo(
//!     "r",
//!     Formula::implies(
//!         Formula::Root(FoVar::new("r")),
//!         Formula::forall_fo("x", Formula::Reach(FoVar::new("r"), FoVar::new("x"))),
//!     ),
//! );
//! assert!(is_valid(&formula).unwrap());            // unbounded, via automata
//! assert!(check_validity(&formula, 5).is_valid()); // bounded, via enumeration
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automata;
pub mod bounded;
pub mod checker;
pub mod compile;
pub mod encode;
pub mod formula;
pub mod tree;

pub use automata::Nfta;
pub use bounded::{check_satisfiability, check_validity, BoundedVerdict};
pub use checker::{eval, Assignment};
pub use compile::{compile, is_satisfiable, is_valid, Compiled};
pub use formula::{FoVar, Formula, SoVar};
pub use tree::{all_trees_up_to, complete_tree, LabeledTree, NodeId, Shape};
