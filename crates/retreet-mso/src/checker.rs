//! Explicit model checking of MSO formulas on finite labeled trees.
//!
//! Given a concrete [`LabeledTree`] and an assignment of the free variables,
//! [`eval`] decides whether the formula holds.  Quantifiers are expanded
//! exhaustively: first-order quantifiers range over the nodes, second-order
//! quantifiers over all `2^n` subsets of nodes.  This is exponential in the
//! quantifier depth but exact, and the trees the bounded checker feeds it are
//! small; the automata pipeline in [`crate::automata`]/[`mod@crate::compile`]
//! provides the polynomial-per-tree alternative for the core fragment.

use std::collections::{BTreeSet, HashMap};

use crate::formula::{FoVar, Formula, SoVar};
use crate::tree::{LabeledTree, NodeId};

/// An assignment of free variables to nodes and node sets.
#[derive(Debug, Clone, Default)]
pub struct Assignment {
    /// First-order assignments.
    pub fo: HashMap<FoVar, NodeId>,
    /// Second-order assignments.
    pub so: HashMap<SoVar, BTreeSet<NodeId>>,
}

impl Assignment {
    /// The empty assignment (for closed formulas).
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a first-order variable.
    pub fn bind_fo(mut self, var: impl Into<String>, node: NodeId) -> Self {
        self.fo.insert(FoVar::new(var), node);
        self
    }

    /// Binds a second-order variable.
    pub fn bind_so<I: IntoIterator<Item = NodeId>>(
        mut self,
        var: impl Into<String>,
        nodes: I,
    ) -> Self {
        self.so.insert(SoVar::new(var), nodes.into_iter().collect());
        self
    }
}

/// Evaluates `formula` on `tree` under `assignment`.
///
/// # Panics
///
/// Panics when the formula mentions a free variable that is not bound by the
/// assignment (that is a bug in the calling encoding, not a property of the
/// model).
pub fn eval(formula: &Formula, tree: &LabeledTree, assignment: &Assignment) -> bool {
    let mut env = Env {
        tree,
        fo: assignment.fo.clone(),
        so: assignment.so.clone(),
    };
    go(formula, &mut env)
}

struct Env<'a> {
    tree: &'a LabeledTree,
    fo: HashMap<FoVar, NodeId>,
    so: HashMap<SoVar, BTreeSet<NodeId>>,
}

impl Env<'_> {
    fn node(&self, var: &FoVar) -> NodeId {
        *self
            .fo
            .get(var)
            .unwrap_or_else(|| panic!("unbound first-order variable {var}"))
    }

    fn set(&self, var: &SoVar) -> &BTreeSet<NodeId> {
        self.so
            .get(var)
            .unwrap_or_else(|| panic!("unbound second-order variable {var}"))
    }
}

fn go(formula: &Formula, env: &mut Env<'_>) -> bool {
    match formula {
        Formula::True => true,
        Formula::False => false,
        Formula::Eq(a, b) => env.node(a) == env.node(b),
        Formula::Root(a) => env.node(a) == env.tree.root(),
        Formula::Left(a, b) => env.tree.left(env.node(a)) == Some(env.node(b)),
        Formula::Right(a, b) => env.tree.right(env.node(a)) == Some(env.node(b)),
        Formula::Reach(a, b) => env.tree.reaches(env.node(a), env.node(b)),
        Formula::Leaf(a) => env.tree.is_leaf(env.node(a)),
        Formula::In(a, x) => {
            let node = env.node(a);
            env.set(x).contains(&node)
        }
        Formula::Subset(x, y) => env.set(x).is_subset(env.set(y)),
        Formula::Not(inner) => !go(inner, env),
        Formula::And(a, b) => go(a, env) && go(b, env),
        Formula::Or(a, b) => go(a, env) || go(b, env),
        Formula::Implies(a, b) => !go(a, env) || go(b, env),
        Formula::Iff(a, b) => go(a, env) == go(b, env),
        Formula::ExistsFo(var, body) => {
            let saved = env.fo.get(var).copied();
            let nodes: Vec<NodeId> = env.tree.nodes().collect();
            let mut found = false;
            for node in nodes {
                env.fo.insert(var.clone(), node);
                if go(body, env) {
                    found = true;
                    break;
                }
            }
            restore_fo(env, var, saved);
            found
        }
        Formula::ForallFo(var, body) => {
            let saved = env.fo.get(var).copied();
            let nodes: Vec<NodeId> = env.tree.nodes().collect();
            let mut all = true;
            for node in nodes {
                env.fo.insert(var.clone(), node);
                if !go(body, env) {
                    all = false;
                    break;
                }
            }
            restore_fo(env, var, saved);
            all
        }
        Formula::ExistsSo(var, body) => {
            let saved = env.so.get(var).cloned();
            let mut found = false;
            let n = env.tree.len();
            for subset in subsets(env.tree, n) {
                env.so.insert(var.clone(), subset);
                if go(body, env) {
                    found = true;
                    break;
                }
            }
            restore_so(env, var, saved);
            found
        }
        Formula::ForallSo(var, body) => {
            let saved = env.so.get(var).cloned();
            let mut all = true;
            let n = env.tree.len();
            for subset in subsets(env.tree, n) {
                env.so.insert(var.clone(), subset);
                if !go(body, env) {
                    all = false;
                    break;
                }
            }
            restore_so(env, var, saved);
            all
        }
    }
}

fn restore_fo(env: &mut Env<'_>, var: &FoVar, saved: Option<NodeId>) {
    match saved {
        Some(node) => {
            env.fo.insert(var.clone(), node);
        }
        None => {
            env.fo.remove(var);
        }
    }
}

fn restore_so(env: &mut Env<'_>, var: &SoVar, saved: Option<BTreeSet<NodeId>>) {
    match saved {
        Some(set) => {
            env.so.insert(var.clone(), set);
        }
        None => {
            env.so.remove(var);
        }
    }
}

/// Iterator over all subsets of the nodes of a tree (2^n of them).
fn subsets(tree: &LabeledTree, n: usize) -> impl Iterator<Item = BTreeSet<NodeId>> + '_ {
    assert!(n <= 20, "subset enumeration limited to 20 nodes");
    let nodes: Vec<NodeId> = tree.nodes().collect();
    (0u32..(1 << n)).map(move |mask| {
        nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &node)| node)
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::complete_tree;

    #[test]
    fn structural_predicates() {
        let mut tree = LabeledTree::single();
        let root = tree.root();
        let l = tree.add_left(root);
        let r = tree.add_right(root);

        let assignment = Assignment::new()
            .bind_fo("x", root)
            .bind_fo("y", l)
            .bind_fo("z", r);
        assert!(eval(&Formula::Root(FoVar::new("x")), &tree, &assignment));
        assert!(!eval(&Formula::Root(FoVar::new("y")), &tree, &assignment));
        assert!(eval(
            &Formula::Left(FoVar::new("x"), FoVar::new("y")),
            &tree,
            &assignment
        ));
        assert!(eval(
            &Formula::Right(FoVar::new("x"), FoVar::new("z")),
            &tree,
            &assignment
        ));
        assert!(eval(&Formula::Leaf(FoVar::new("y")), &tree, &assignment));
        assert!(!eval(&Formula::Leaf(FoVar::new("x")), &tree, &assignment));
        assert!(eval(
            &Formula::Reach(FoVar::new("x"), FoVar::new("z")),
            &tree,
            &assignment
        ));
        assert!(!eval(
            &Formula::Reach(FoVar::new("y"), FoVar::new("z")),
            &tree,
            &assignment
        ));
    }

    #[test]
    fn every_tree_has_a_unique_root() {
        // ∃x. root(x) ∧ ∀y. (root(y) → y = x)
        let formula = Formula::exists_fo(
            "x",
            Formula::and(
                Formula::Root(FoVar::new("x")),
                Formula::forall_fo(
                    "y",
                    Formula::implies(
                        Formula::Root(FoVar::new("y")),
                        Formula::Eq(FoVar::new("y"), FoVar::new("x")),
                    ),
                ),
            ),
        );
        for tree in crate::tree::all_trees_up_to(4) {
            assert!(eval(&formula, &tree, &Assignment::new()));
        }
    }

    #[test]
    fn membership_and_subset() {
        let mut tree = complete_tree(2);
        let root = tree.root();
        let l = tree.left(root).unwrap();
        tree.add_label(root, 0);

        let assignment = Assignment::new()
            .bind_fo("x", root)
            .bind_so("X", vec![root])
            .bind_so("Y", vec![root, l]);
        assert!(eval(
            &Formula::In(FoVar::new("x"), SoVar::new("X")),
            &tree,
            &assignment
        ));
        assert!(eval(
            &Formula::Subset(SoVar::new("X"), SoVar::new("Y")),
            &tree,
            &assignment
        ));
        assert!(!eval(
            &Formula::Subset(SoVar::new("Y"), SoVar::new("X")),
            &tree,
            &assignment
        ));
    }

    #[test]
    fn second_order_quantification() {
        // ∃X. (x ∈ X ∧ y ∉ X): holds whenever x ≠ y.
        let formula = Formula::exists_so(
            "X",
            Formula::and(
                Formula::In(FoVar::new("x"), SoVar::new("X")),
                Formula::not(Formula::In(FoVar::new("y"), SoVar::new("X"))),
            ),
        );
        let tree = complete_tree(2);
        let root = tree.root();
        let l = tree.left(root).unwrap();
        assert!(eval(
            &formula,
            &tree,
            &Assignment::new().bind_fo("x", root).bind_fo("y", l)
        ));
        assert!(!eval(
            &formula,
            &tree,
            &Assignment::new().bind_fo("x", root).bind_fo("y", root)
        ));
    }

    #[test]
    fn downward_closed_sets() {
        // ∀x ∀y. (x ∈ X ∧ reach(x, y)) → y ∈ X  — "X is downward closed".
        let downward = Formula::forall_fo(
            "x",
            Formula::forall_fo(
                "y",
                Formula::implies(
                    Formula::and(
                        Formula::In(FoVar::new("x"), SoVar::new("X")),
                        Formula::Reach(FoVar::new("x"), FoVar::new("y")),
                    ),
                    Formula::In(FoVar::new("y"), SoVar::new("X")),
                ),
            ),
        );
        let tree = complete_tree(3);
        let root = tree.root();
        let l = tree.left(root).unwrap();
        // The whole subtree under l is downward closed …
        let subtree: Vec<NodeId> = tree.nodes().filter(|&n| tree.reaches(l, n)).collect();
        assert!(eval(
            &downward,
            &tree,
            &Assignment::new().bind_so("X", subtree)
        ));
        // … but {root} alone is not.
        assert!(!eval(
            &downward,
            &tree,
            &Assignment::new().bind_so("X", vec![root])
        ));
    }

    #[test]
    #[should_panic(expected = "unbound first-order variable")]
    fn unbound_variables_panic() {
        let tree = LabeledTree::single();
        eval(
            &Formula::Root(FoVar::new("missing")),
            &tree,
            &Assignment::new(),
        );
    }
}
