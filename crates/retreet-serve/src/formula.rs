//! The wire syntax for MSO validity queries: parenthesized prefix
//! expressions over the [`retreet_mso::formula::Formula`] constructors.
//!
//! The in-tree crates build formulas programmatically; a service request
//! arrives as text, so validity queries carry a compact s-expression:
//!
//! ```text
//! (forall r (implies (root r) (forall x (reach r x))))
//! ```
//!
//! | form | meaning |
//! |------|---------|
//! | `true` / `false` | constants |
//! | `(eq x y)` `(root x)` `(leaf x)` | node predicates |
//! | `(left x y)` `(right x y)` `(reach x y)` | structural predicates |
//! | `(in x X)` `(subset X Y)` | set predicates |
//! | `(not f)` `(and f…)` `(or f…)` `(implies f g)` `(iff f g)` | connectives |
//! | `(exists x f)` `(forall x f)` | first-order quantifiers |
//! | `(exists2 X f)` `(forall2 X f)` | second-order quantifiers |
//!
//! `and`/`or` accept any number of operands (folded with
//! [`Formula::conj`]/[`Formula::disj`]).

use retreet_mso::formula::{FoVar, Formula, SoVar};

/// Maximum formula-nesting depth.  The parser is recursive-descent, so a
/// hostile `(not (not (not …` request line must come back as a parse error
/// rather than overflow the serving thread's stack; real queries nest a
/// few dozen levels at most.
const MAX_DEPTH: usize = 64;

/// Parses the s-expression wire syntax into a [`Formula`].
pub fn parse_formula(input: &str) -> Result<Formula, String> {
    let tokens = tokenize(input)?;
    let mut pos = 0;
    let formula = parse_expr(&tokens, &mut pos, 0)?;
    if pos != tokens.len() {
        return Err(format!("trailing input after formula: `{}`", tokens[pos]));
    }
    Ok(formula)
}

fn tokenize(input: &str) -> Result<Vec<String>, String> {
    let mut tokens = Vec::new();
    let mut symbol = String::new();
    for c in input.chars() {
        match c {
            '(' | ')' => {
                if !symbol.is_empty() {
                    tokens.push(std::mem::take(&mut symbol));
                }
                tokens.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !symbol.is_empty() {
                    tokens.push(std::mem::take(&mut symbol));
                }
            }
            c if c.is_alphanumeric() || c == '_' || c == '-' || c == '2' => symbol.push(c),
            c => return Err(format!("unexpected character `{c}` in formula")),
        }
    }
    if !symbol.is_empty() {
        tokens.push(symbol);
    }
    if tokens.is_empty() {
        return Err(String::from("empty formula"));
    }
    Ok(tokens)
}

fn parse_expr(tokens: &[String], pos: &mut usize, depth: usize) -> Result<Formula, String> {
    if depth > MAX_DEPTH {
        return Err(format!("formula nests deeper than {MAX_DEPTH} levels"));
    }
    let token = tokens
        .get(*pos)
        .ok_or("unexpected end of formula")?
        .as_str();
    *pos += 1;
    match token {
        "true" => Ok(Formula::True),
        "false" => Ok(Formula::False),
        "(" => {
            let head = tokens
                .get(*pos)
                .ok_or("unexpected end of formula after `(`")?
                .clone();
            *pos += 1;
            let formula = parse_form(&head, tokens, pos, depth)?;
            match tokens.get(*pos).map(String::as_str) {
                Some(")") => {
                    *pos += 1;
                    Ok(formula)
                }
                _ => Err(format!("missing `)` after `{head}` form")),
            }
        }
        ")" => Err(String::from("unexpected `)`")),
        other => Err(format!("expected `true`, `false` or `(`, found `{other}`")),
    }
}

fn parse_form(
    head: &str,
    tokens: &[String],
    pos: &mut usize,
    depth: usize,
) -> Result<Formula, String> {
    let mut symbol = |role: &str| -> Result<String, String> {
        match tokens.get(*pos).map(String::as_str) {
            Some("(") | Some(")") | None => Err(format!("`{head}` expects a {role} name")),
            Some(name) => {
                *pos += 1;
                Ok(name.to_string())
            }
        }
    };
    match head {
        "eq" => Ok(Formula::Eq(
            FoVar::new(symbol("variable")?),
            FoVar::new(symbol("variable")?),
        )),
        "root" => Ok(Formula::Root(FoVar::new(symbol("variable")?))),
        "leaf" => Ok(Formula::Leaf(FoVar::new(symbol("variable")?))),
        "left" => Ok(Formula::Left(
            FoVar::new(symbol("variable")?),
            FoVar::new(symbol("variable")?),
        )),
        "right" => Ok(Formula::Right(
            FoVar::new(symbol("variable")?),
            FoVar::new(symbol("variable")?),
        )),
        "reach" => Ok(Formula::Reach(
            FoVar::new(symbol("variable")?),
            FoVar::new(symbol("variable")?),
        )),
        "in" => Ok(Formula::In(
            FoVar::new(symbol("variable")?),
            SoVar::new(symbol("set-variable")?),
        )),
        "subset" => Ok(Formula::Subset(
            SoVar::new(symbol("set-variable")?),
            SoVar::new(symbol("set-variable")?),
        )),
        "not" => Ok(Formula::not(parse_expr(tokens, pos, depth + 1)?)),
        "and" | "or" => {
            let mut parts = Vec::new();
            while tokens.get(*pos).map(String::as_str) != Some(")") {
                // The fold below nests one `And`/`Or` level per operand
                // beyond the first, so operands count toward the depth
                // budget: a flat `(and true × 500k)` would otherwise pass
                // the s-expression depth guard yet produce a 500k-deep
                // formula whose recursive Hash/eval/Drop overflow the
                // serving thread's stack.
                if depth + parts.len() > MAX_DEPTH {
                    return Err(format!(
                        "`{head}` with this many operands nests deeper than {MAX_DEPTH} levels"
                    ));
                }
                parts.push(parse_expr(tokens, pos, depth + 1)?);
            }
            Ok(if head == "and" {
                Formula::conj(parts)
            } else {
                Formula::disj(parts)
            })
        }
        "implies" => Ok(Formula::implies(
            parse_expr(tokens, pos, depth + 1)?,
            parse_expr(tokens, pos, depth + 1)?,
        )),
        "iff" => Ok(Formula::iff(
            parse_expr(tokens, pos, depth + 1)?,
            parse_expr(tokens, pos, depth + 1)?,
        )),
        "exists" => {
            let var = symbol("variable")?;
            Ok(Formula::exists_fo(var, parse_expr(tokens, pos, depth + 1)?))
        }
        "forall" => {
            let var = symbol("variable")?;
            Ok(Formula::forall_fo(var, parse_expr(tokens, pos, depth + 1)?))
        }
        "exists2" => {
            let var = symbol("set-variable")?;
            Ok(Formula::exists_so(var, parse_expr(tokens, pos, depth + 1)?))
        }
        "forall2" => {
            let var = symbol("set-variable")?;
            Ok(Formula::forall_so(var, parse_expr(tokens, pos, depth + 1)?))
        }
        other => Err(format!("unknown formula form `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_root_reaches_all_tautology() {
        let formula =
            parse_formula("(forall r (implies (root r) (forall x (reach r x))))").unwrap();
        let expected = Formula::forall_fo(
            "r",
            Formula::implies(
                Formula::Root(FoVar::new("r")),
                Formula::forall_fo("x", Formula::Reach(FoVar::new("r"), FoVar::new("x"))),
            ),
        );
        assert_eq!(formula, expected);
    }

    #[test]
    fn variadic_and_folds_like_conj() {
        let formula = parse_formula("(and true false true)").unwrap();
        assert_eq!(
            formula,
            Formula::conj(vec![Formula::True, Formula::False, Formula::True])
        );
        assert_eq!(parse_formula("(and)").unwrap(), Formula::True);
        assert_eq!(parse_formula("(or)").unwrap(), Formula::False);
    }

    #[test]
    fn second_order_quantifiers_and_set_predicates() {
        let formula = parse_formula("(exists2 X (forall x (in x X)))").unwrap();
        assert_eq!(
            formula,
            Formula::exists_so(
                "X",
                Formula::forall_fo("x", Formula::In(FoVar::new("x"), SoVar::new("X")))
            )
        );
    }

    #[test]
    fn pathological_nesting_is_rejected_not_a_stack_overflow() {
        let deep = format!("{}true{}", "(not ".repeat(100_000), ")".repeat(100_000));
        assert!(parse_formula(&deep).is_err());
        let fine = format!("{}true{}", "(not ".repeat(60), ")".repeat(60));
        assert!(parse_formula(&fine).is_ok());
        // A flat variadic conjunction folds into a chain one level deep per
        // operand — the operand count must hit the same depth budget.
        let wide = format!("(and {})", "true ".repeat(500_000));
        assert!(parse_formula(&wide).is_err());
        let wide_ok = format!("(and {})", "true ".repeat(50));
        assert!(parse_formula(&wide_ok).is_ok());
    }

    #[test]
    fn malformed_formulas_are_rejected_with_messages() {
        assert!(parse_formula("").is_err());
        assert!(parse_formula("(unknown x)").is_err());
        assert!(parse_formula("(root x").is_err());
        assert!(parse_formula("(eq x)").is_err());
        assert!(parse_formula("(root x) extra").is_err());
        assert!(parse_formula("(exists (root x) true)").is_err());
    }
}
