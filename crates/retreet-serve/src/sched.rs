//! The two-lane scheduler's cold lane: a fixed worker pool draining a
//! *bounded* queue of cold verification jobs.
//!
//! The serving tier probes every verification request first
//! ([`retreet_verify::Verifier::probe`]): warm queries — cache hits and
//! coalescible in-flight duplicates — are answered inline on the connection
//! thread and never queue here.  Only cold queries (a fresh portfolio
//! dispatch) pass through this pool, so a burst of expensive cold work can
//! never head-of-line-block the warm lane.  When the cold queue is full the
//! submission fails *immediately* with [`Admission::Overloaded`] — explicit
//! load-shedding, never an unbounded queue or a silent stall.
//!
//! Shutdown is a first-class state: [`ColdPool::close`] drops the intake
//! side of the queue, workers drain what was already admitted and exit, and
//! later submissions fail with [`Admission::ShuttingDown`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A unit of cold-lane work.  The job itself carries everything it needs
/// (verifier handle, parsed query, response channel); the pool is oblivious
/// to request shapes.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// The outcome of submitting a job to the cold lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// The job was queued (or handed straight to an idle worker).
    Accepted,
    /// The bounded queue is full: the service is past its configured cold
    /// capacity and sheds the request instead of queueing without limit.
    Overloaded,
    /// The intake was closed by shutdown; nothing new is admitted.
    ShuttingDown,
}

/// The cold-lane worker pool.  See the module docs.
pub(crate) struct ColdPool {
    /// `None` once [`Self::close`] ran; dropping the sender is what lets
    /// the workers' `recv` loop end after the queue drains.
    sender: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
    queue_depth: usize,
    executed: AtomicU64,
    shed: AtomicU64,
}

/// Monotonic counters of the cold lane, surfaced through the service's
/// `stats` response and `bench_service`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct ColdStats {
    /// Jobs a worker finished executing.
    pub executed: u64,
    /// Submissions rejected because the queue was full.
    pub shed: u64,
}

impl ColdPool {
    /// Spawns `workers` threads draining a queue bounded at `queue_depth`
    /// jobs.  Both are clamped to at least 1: a pool that cannot run or
    /// admit anything would deadlock every cold query.
    pub(crate) fn new(workers: usize, queue_depth: usize) -> Self {
        let workers = workers.max(1);
        let queue_depth = queue_depth.max(1);
        let (sender, receiver) = mpsc::sync_channel::<Job>(queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("retreet-cold-{i}"))
                    .spawn(move || run_worker(&receiver))
                    .expect("spawn cold-lane worker")
            })
            .collect();
        ColdPool {
            sender: Mutex::new(Some(sender)),
            workers: Mutex::new(handles),
            worker_count: workers,
            queue_depth,
            executed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Tries to admit one job; never blocks.
    pub(crate) fn submit(&self, job: Job) -> Admission {
        let sender = self.sender.lock().expect("cold-lane intake poisoned");
        let Some(sender) = sender.as_ref() else {
            return Admission::ShuttingDown;
        };
        match sender.try_send(job) {
            Ok(()) => Admission::Accepted,
            Err(TrySendError::Full(_)) => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                Admission::Overloaded
            }
            Err(TrySendError::Disconnected(_)) => Admission::ShuttingDown,
        }
    }

    /// Records that one admitted job finished executing.  Jobs call this
    /// themselves (the pool runs opaque closures and cannot see inside).
    pub(crate) fn note_executed(&self) {
        self.executed.fetch_add(1, Ordering::Relaxed);
    }

    /// Closes the intake: later [`Self::submit`]s fail with
    /// [`Admission::ShuttingDown`], and workers exit once the already-
    /// admitted jobs drain.  Idempotent.
    pub(crate) fn close(&self) {
        self.sender
            .lock()
            .expect("cold-lane intake poisoned")
            .take();
    }

    /// Joins every worker thread.  Call after [`Self::close`] (joining an
    /// open pool would block forever).  Idempotent — a second call finds no
    /// handles left.
    pub(crate) fn join(&self) {
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("cold-lane worker list poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Configured worker count.
    pub(crate) fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// Configured queue bound.
    pub(crate) fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> ColdStats {
        ColdStats {
            executed: self.executed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

fn run_worker(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while *taking* a job, never while running it.
        let job = match receiver.lock() {
            Ok(receiver) => receiver.recv(),
            Err(_) => return,
        };
        match job {
            // A panicking job must not kill the worker: the submitter sees
            // its response channel close and answers `internal`; the pool
            // keeps serving.  (Engine panics are already confined inside
            // the verifier; this guards the glue around it.)
            Ok(job) => {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            }
            Err(_) => return, // intake closed and queue drained
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_full_queues_shed() {
        // One worker, one queue slot: park the worker on a gate, fill the
        // slot, and the third submission must shed.
        let pool = ColdPool::new(1, 1);
        let (gate_tx, gate_rx) = channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let blocker: Job = Box::new(move || {
            let _ = gate_rx.lock().unwrap().recv();
        });
        assert_eq!(pool.submit(blocker), Admission::Accepted);
        // Give the worker a moment to take the blocker off the queue, then
        // fill the single queue slot.
        std::thread::sleep(Duration::from_millis(30));
        let ran = Arc::new(AtomicUsize::new(0));
        let ran_clone = Arc::clone(&ran);
        assert_eq!(
            pool.submit(Box::new(move || {
                ran_clone.fetch_add(1, Ordering::Relaxed);
            })),
            Admission::Accepted
        );
        let ran_clone = Arc::clone(&ran);
        assert_eq!(
            pool.submit(Box::new(move || {
                ran_clone.fetch_add(1, Ordering::Relaxed);
            })),
            Admission::Overloaded,
            "the bounded queue must shed, not grow"
        );
        assert_eq!(pool.stats().shed, 1);
        // Release the gate; the queued job still runs (drain semantics).
        gate_tx.send(()).unwrap();
        pool.close();
        pool.join();
        assert_eq!(ran.load(Ordering::Relaxed), 1, "admitted job drained");
    }

    #[test]
    fn closed_pools_refuse_new_work_but_drain_admitted_jobs() {
        let pool = ColdPool::new(2, 8);
        let (done_tx, done_rx) = channel();
        for _ in 0..4 {
            let done_tx = done_tx.clone();
            assert_eq!(
                pool.submit(Box::new(move || {
                    let _ = done_tx.send(());
                })),
                Admission::Accepted
            );
        }
        pool.close();
        assert_eq!(
            pool.submit(Box::new(|| {})),
            Admission::ShuttingDown,
            "no admissions after close"
        );
        pool.join();
        let drained = done_rx.try_iter().count();
        assert_eq!(drained, 4, "every admitted job ran before the join");
    }
}
