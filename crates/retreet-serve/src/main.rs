//! The `retreet-serve` binary: a long-running verification service.
//!
//! ```text
//! retreet-serve [--listen ADDR] [--parallel] [--warm-start]
//!               [--max-nodes N] [--race-nodes N] [--equiv-nodes N]
//!               [--validity-nodes N] [--valuations N] [--cache-capacity N]
//!               [--workers N] [--cold-queue N] [--deadline-ms MS]
//!               [--max-connections N] [--drain-ms MS]
//!               [--persist PATH] [--fail-open]
//! ```
//!
//! Without `--listen` the service speaks newline-delimited JSON on
//! stdin/stdout (one request per line, one response per line) until EOF or
//! a `{"kind": "shutdown"}` request.  With `--listen ADDR` (e.g.
//! `127.0.0.1:7878`) it accepts up to `--max-connections` concurrent TCP
//! clients, all sharing one verifier — one sharded verdict cache, one
//! single-flight table, one cold-lane worker pool.  Either way the process
//! drains in-flight requests, flushes the verdict store and exits 0 on
//! graceful shutdown.  See the crate docs for the request and response
//! schema and the two-lane scheduler.

use std::io::{stdin, stdout, BufWriter};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;

use retreet_serve::{serve_lines, serve_tcp, ServeOptions, Service};

struct Args {
    options: ServeOptions,
    listen: Option<String>,
    warm_start: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        options: ServeOptions::default(),
        listen: None,
        warm_start: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        let parse = |name: &str, value: String| -> Result<usize, String> {
            value.parse().map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--listen" => args.listen = Some(value("--listen")?),
            "--parallel" => args.options.parallel = true,
            "--warm-start" => args.warm_start = true,
            "--max-nodes" => {
                let nodes = parse("--max-nodes", value("--max-nodes")?)?;
                args.options.race_nodes = nodes;
                args.options.equiv_nodes = nodes;
                args.options.validity_nodes = nodes;
            }
            "--race-nodes" => {
                args.options.race_nodes = parse("--race-nodes", value("--race-nodes")?)?
            }
            "--equiv-nodes" => {
                args.options.equiv_nodes = parse("--equiv-nodes", value("--equiv-nodes")?)?
            }
            "--validity-nodes" => {
                args.options.validity_nodes = parse("--validity-nodes", value("--validity-nodes")?)?
            }
            "--valuations" => {
                args.options.valuations = parse("--valuations", value("--valuations")?)?
            }
            "--cache-capacity" => {
                args.options.cache_capacity = parse("--cache-capacity", value("--cache-capacity")?)?
            }
            "--workers" => args.options.workers = parse("--workers", value("--workers")?)?,
            "--cold-queue" => {
                args.options.cold_queue = parse("--cold-queue", value("--cold-queue")?)?
            }
            "--deadline-ms" => {
                args.options.deadline_ms = parse("--deadline-ms", value("--deadline-ms")?)? as u64
            }
            "--max-connections" => {
                args.options.max_connections =
                    parse("--max-connections", value("--max-connections")?)?
            }
            "--drain-ms" => {
                args.options.drain_ms = parse("--drain-ms", value("--drain-ms")?)? as u64
            }
            "--persist" => args.options.persist = Some(PathBuf::from(value("--persist")?)),
            "--fail-open" => args.options.fail_open = true,
            "--help" | "-h" => {
                println!(
                    "retreet-serve [--listen ADDR] [--parallel] [--warm-start] \
                     [--max-nodes N] [--race-nodes N] [--equiv-nodes N] \
                     [--validity-nodes N] [--valuations N] [--cache-capacity N] \
                     [--workers N] [--cold-queue N] [--deadline-ms MS] \
                     [--max-connections N] [--drain-ms MS] [--persist PATH] [--fail-open]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("retreet-serve: {message}");
            std::process::exit(2);
        }
    };
    let service = match Service::try_new(&args.options) {
        Ok(service) => service,
        Err(err) => {
            eprintln!("retreet-serve: {err}");
            std::process::exit(1);
        }
    };
    if args.warm_start {
        let preloaded = service.warm_start();
        eprintln!("retreet-serve: warm start preloaded {preloaded} corpus verdicts");
    }
    if let Some(stats) = service.verifier().store_stats() {
        eprintln!(
            "retreet-serve: verdict store recovered {} verdicts ({} skipped, {} bytes truncated)",
            stats.loaded, stats.skipped, stats.truncated_bytes
        );
    }
    match args.listen {
        Some(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(listener) => listener,
                Err(err) => {
                    eprintln!("retreet-serve: cannot listen on {addr}: {err}");
                    std::process::exit(1);
                }
            };
            eprintln!(
                "retreet-serve: listening on {}",
                listener.local_addr().map_or(addr, |a| a.to_string())
            );
            // serve_tcp drains (Service::finish) before returning.
            if let Err(err) = serve_tcp(Arc::new(service), listener) {
                eprintln!("retreet-serve: listener failed: {err}");
                std::process::exit(1);
            }
        }
        None => {
            let input = stdin().lock();
            let output = BufWriter::new(stdout().lock());
            let result = serve_lines(&service, input, output);
            // EOF or a shutdown request: drain in-flight work and flush
            // the store, then exit 0 — graceful either way.
            let drained = service.finish();
            if let Err(err) = result {
                eprintln!("retreet-serve: {err}");
                std::process::exit(1);
            }
            if !drained {
                eprintln!("retreet-serve: drain deadline hit; stragglers were cancelled");
            }
        }
    }
}
