//! The `retreet-serve` binary: a long-running verification service.
//!
//! ```text
//! retreet-serve [--listen ADDR] [--parallel] [--warm-start]
//!               [--max-nodes N] [--race-nodes N] [--equiv-nodes N]
//!               [--validity-nodes N] [--valuations N] [--cache-capacity N]
//! ```
//!
//! Without `--listen` the service speaks newline-delimited JSON on
//! stdin/stdout (one request per line, one response per line) until EOF.
//! With `--listen ADDR` (e.g. `127.0.0.1:7878`) it accepts any number of
//! concurrent TCP clients, all sharing one verifier — one sharded verdict
//! cache, one single-flight table.  See the crate docs for the request and
//! response schema.

use std::io::{stdin, stdout, BufWriter};
use std::net::TcpListener;
use std::sync::Arc;

use retreet_serve::{serve_lines, serve_tcp, ServeOptions, Service};

struct Args {
    options: ServeOptions,
    listen: Option<String>,
    warm_start: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        options: ServeOptions::default(),
        listen: None,
        warm_start: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        let parse = |name: &str, value: String| -> Result<usize, String> {
            value.parse().map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--listen" => args.listen = Some(value("--listen")?),
            "--parallel" => args.options.parallel = true,
            "--warm-start" => args.warm_start = true,
            "--max-nodes" => {
                let nodes = parse("--max-nodes", value("--max-nodes")?)?;
                args.options.race_nodes = nodes;
                args.options.equiv_nodes = nodes;
                args.options.validity_nodes = nodes;
            }
            "--race-nodes" => {
                args.options.race_nodes = parse("--race-nodes", value("--race-nodes")?)?
            }
            "--equiv-nodes" => {
                args.options.equiv_nodes = parse("--equiv-nodes", value("--equiv-nodes")?)?
            }
            "--validity-nodes" => {
                args.options.validity_nodes = parse("--validity-nodes", value("--validity-nodes")?)?
            }
            "--valuations" => {
                args.options.valuations = parse("--valuations", value("--valuations")?)?
            }
            "--cache-capacity" => {
                args.options.cache_capacity = parse("--cache-capacity", value("--cache-capacity")?)?
            }
            "--help" | "-h" => {
                println!(
                    "retreet-serve [--listen ADDR] [--parallel] [--warm-start] \
                     [--max-nodes N] [--race-nodes N] [--equiv-nodes N] \
                     [--validity-nodes N] [--valuations N] [--cache-capacity N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("retreet-serve: {message}");
            std::process::exit(2);
        }
    };
    let service = Service::new(&args.options);
    if args.warm_start {
        let preloaded = service.warm_start();
        eprintln!("retreet-serve: warm start preloaded {preloaded} corpus verdicts");
    }
    match args.listen {
        Some(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(listener) => listener,
                Err(err) => {
                    eprintln!("retreet-serve: cannot listen on {addr}: {err}");
                    std::process::exit(1);
                }
            };
            eprintln!(
                "retreet-serve: listening on {}",
                listener.local_addr().map_or(addr, |a| a.to_string())
            );
            if let Err(err) = serve_tcp(Arc::new(service), listener) {
                eprintln!("retreet-serve: listener failed: {err}");
                std::process::exit(1);
            }
        }
        None => {
            let input = stdin().lock();
            let output = BufWriter::new(stdout().lock());
            if let Err(err) = serve_lines(&service, input, output) {
                eprintln!("retreet-serve: {err}");
                std::process::exit(1);
            }
        }
    }
}
