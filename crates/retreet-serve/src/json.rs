//! A minimal JSON reader/writer for the NDJSON wire protocol.
//!
//! The build container has no registry access (see `crates/shims/`), so the
//! service cannot use `serde`; this module is a from-scratch recursive-
//! descent parser for exactly the JSON the protocol needs — objects,
//! arrays, strings (with the standard escapes), numbers, booleans and
//! null — plus the escaping helper responses are rendered with.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; the protocol's numbers are small).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.  Key order is not significant in the protocol, so a
    /// sorted map keeps rendering deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object map, when this value is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The array items, when this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    /// Renders the value back to compact JSON (used to echo request ids).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if !n.is_finite() {
                    // JSON has no inf/NaN (reachable via an overflowing
                    // literal like 1e999, which Rust parses to infinity);
                    // render the nearest valid JSON value rather than
                    // corrupt the response line.
                    write!(f, "null")
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => write!(f, "\"{}\"", escape(s)),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                write!(f, "{{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{}", escape(key), value)?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Escapes a string for embedding in a JSON document (the one shared
/// implementation — `retreet-bench`'s report writers use it too).
///
/// Only ASCII bytes ever need escaping, so the input is scanned bytewise
/// and maximal escape-free runs are appended as whole slices (UTF-8
/// continuation bytes are all ≥ 0x80 and pass through untouched).  The
/// common no-escape case does exactly one allocation and one memcpy.
pub fn escape(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = String::with_capacity(input.len() + 2);
    let mut run_start = 0;
    for (i, &byte) in bytes.iter().enumerate() {
        let escape: Option<&str> = match byte {
            b'"' => Some("\\\""),
            b'\\' => Some("\\\\"),
            b'\n' => Some("\\n"),
            b'\r' => Some("\\r"),
            b'\t' => Some("\\t"),
            0x00..=0x1f => Some(""), // \u escape, formatted below
            _ => None,
        };
        if let Some(escape) = escape {
            out.push_str(&input[run_start..i]);
            if escape.is_empty() {
                out.push_str(&format!("\\u{byte:04x}"));
            } else {
                out.push_str(escape);
            }
            run_start = i + 1;
        }
    }
    out.push_str(&input[run_start..]);
    out
}

/// Maximum container-nesting depth the parser accepts.  The parser is
/// recursive-descent, so without a cap a single request line of a million
/// `[`s would overflow the serving thread's stack and abort the whole
/// process; the protocol never nests more than a handful of levels.
const MAX_DEPTH: usize = 64;

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing input at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.enter()?;
                let array = self.array();
                self.depth -= 1;
                array
            }
            Some(b'{') => {
                self.enter()?;
                let object = self.object();
                self.depth -= 1;
                object
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err(String::from("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("invalid number `{text}`: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(String::from("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by the protocol;
                            // lone surrogates map to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy everything up to the next quote or escape.
                    // `"` and `\` are ASCII, so the byte positions found
                    // here are char boundaries of the (already valid UTF-8)
                    // input — and copying a run at a time keeps parsing a
                    // multi-megabyte string O(n), not O(n²) per-char
                    // re-validation.
                    let rest = &self.bytes[self.pos..];
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    let chunk = std::str::from_utf8(&rest[..run]).map_err(|_| "invalid utf-8")?;
                    out.push_str(chunk);
                    self.pos += run;
                }
            }
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let value = parse(
            r#"{"id": 7, "kind": "race", "program": "fn Main(n) {\n  return 0;\n}", "flag": true}"#,
        )
        .unwrap();
        let map = value.as_object().unwrap();
        assert_eq!(map["kind"].as_str(), Some("race"));
        assert_eq!(map["id"], Value::Number(7.0));
        assert_eq!(map["flag"], Value::Bool(true));
        assert!(map["program"].as_str().unwrap().contains('\n'));
    }

    #[test]
    fn parses_arrays_and_nested_objects() {
        let value =
            parse(r#"{"queries": [{"kind": "validity"}, {"kind": "race"}], "n": -1.5}"#).unwrap();
        let map = value.as_object().unwrap();
        assert_eq!(map["queries"].as_array().unwrap().len(), 2);
        assert_eq!(map["n"], Value::Number(-1.5));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse(r#"{"a": 1} trailing"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let original = "line\nbreak \"quoted\" back\\slash\ttab";
        let rendered = format!("\"{}\"", escape(original));
        assert_eq!(parse(&rendered).unwrap().as_str(), Some(original));
    }

    #[test]
    fn display_renders_compact_json() {
        let value = parse(r#"{"b": [1, 2], "a": "x"}"#).unwrap();
        assert_eq!(value.to_string(), r#"{"a":"x","b":[1,2]}"#);
    }

    #[test]
    fn pathological_nesting_is_rejected_not_a_stack_overflow() {
        // One hostile request line must come back as a parse error, never
        // abort the serving process by exhausting the stack.
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
        let deep_objects = "{\"a\":".repeat(100_000);
        assert!(parse(&deep_objects).is_err());
        // Wide-but-shallow input is fine: sibling containers do not
        // accumulate depth.
        let wide = format!("[{}]", vec!["[]"; 1000].join(","));
        assert!(parse(&wide).is_ok());
        // ... and so is moderate real nesting.
        let nested = format!("{}1{}", "[".repeat(60), "]".repeat(60));
        assert!(parse(&nested).is_ok());
    }

    #[test]
    fn megabyte_strings_parse_in_linear_time() {
        // Guards the bulk-copy path: a large legal payload (the size of a
        // big `program` field) must parse in milliseconds, not re-validate
        // the remaining input once per character.
        let payload = "x".repeat(4 * 1024 * 1024);
        let doc = format!(r#"{{"program": "{payload}"}}"#);
        let start = std::time::Instant::now();
        let value = parse(&doc).unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "quadratic string parse ({:?})",
            start.elapsed()
        );
        assert_eq!(
            value.as_object().unwrap()["program"].as_str().map(str::len),
            Some(payload.len())
        );
    }

    #[test]
    fn overflowing_numbers_round_trip_as_valid_json() {
        // `1e999` parses to f64 infinity; echoing it back must still be
        // valid JSON (null), never a bare `inf` token.
        let value = parse(r#"{"id": 1e999}"#).unwrap();
        let rendered = value.to_string();
        assert_eq!(rendered, r#"{"id":null}"#);
        assert!(parse(&rendered).is_ok());
    }
}
