//! # retreet-serve — the concurrent verification service
//!
//! The ROADMAP's north star is a verifier that serves heavy concurrent
//! traffic; this crate is that serving tier.  It wraps one shared
//! [`retreet_verify::Verifier`] — sharded verdict cache, single-flight
//! coalescing, batch fan-out — in a long-running loop speaking
//! newline-delimited JSON over stdin/stdout or a TCP listener:
//!
//! ```text
//! → {"id": 1, "kind": "race", "program": "fn Main(n) { ... }"}
//! ← {"id": 1, "status": "ok", "kind": "race", "verdict": "race-free",
//!    "positive": true, "engine": "configuration", "soundness": "bounded:4",
//!    "cached": false, "coalesced": false, "elapsed_us": 1234,
//!    "trees_checked": 14, "detail": ""}
//! ```
//!
//! Request kinds:
//!
//! * `race` — `program` (Retreet source); Theorem 2.
//! * `equivalence` — `original` + `transformed` (Retreet source); Theorem 3.
//! * `validity` — `formula` (the s-expression syntax of [`formula`]).
//! * `batch` — `queries`: an array of the above; answered through
//!   [`Verifier::verify_batch`], results in input order.
//! * `run` — `program` plus optional `height` (complete-tree height, default
//!   6, capped) and `seed` (field valuation); *executes* the program through
//!   the `retreet-runtime` compiled tier (bytecode VM with certified
//!   iterative lowering, interpreter fallback) and answers with the returned
//!   values, the executing tier and the certified-lowered functions.
//!   Executors are compiled once per distinct source and cached.
//! * `stats` — cache and serving counters of the shared verifier, plus the
//!   codegen tier's compile/execute counters.
//!
//! Every verdict response carries the engine provenance, the soundness
//! caveat, and the `cached` / `coalesced` serving flags, so a client can
//! always tell how its answer was produced.  Malformed requests are
//! answered with `{"status": "error", ...}` on the same line — the
//! connection (and the service) stays up.
//!
//! [`Service::warm_start`] preloads the §5 corpus verdicts so a fresh
//! replica answers the common queries from the cache immediately.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod formula;
pub mod json;

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use retreet_analysis::vtree::ValueTree;
use retreet_lang::ast::Program;
use retreet_lang::corpus;
use retreet_mso::formula::Formula;
use retreet_runtime::exec::{ExecTier, ProgramExecutor};
use retreet_verify::{Outcome, Query, Soundness, Verdict, Verifier, VerifyError};

use json::Value;

/// Budget and portfolio options of a service verifier (a trimmed mirror of
/// the [`Verifier`] builder knobs, so `main` can parse them from flags).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Largest tree (in nodes) enumerated for data-race queries.
    pub race_nodes: usize,
    /// Largest tree (in nodes) enumerated for equivalence queries.
    pub equiv_nodes: usize,
    /// Largest tree (in nodes) enumerated for bounded validity queries.
    pub validity_nodes: usize,
    /// Deterministic field valuations per tree shape.
    pub valuations: usize,
    /// Run the applicable engines concurrently per query.
    pub parallel: bool,
    /// Verdict-cache capacity (0 disables caching and coalescing).
    pub cache_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            race_nodes: 4,
            equiv_nodes: 5,
            validity_nodes: 5,
            valuations: 2,
            parallel: false,
            cache_capacity: 4096,
        }
    }
}

impl ServeOptions {
    /// Builds the verifier these options describe.
    pub fn build_verifier(&self) -> Verifier {
        Verifier::builder()
            .race_nodes(self.race_nodes)
            .equiv_nodes(self.equiv_nodes)
            .validity_nodes(self.validity_nodes)
            .valuations(self.valuations)
            .parallel(self.parallel)
            .cache_capacity(self.cache_capacity)
            .build()
    }
}

/// The service: one shared verifier plus request accounting.  `Sync` — one
/// instance serves any number of client threads/connections.
pub struct Service {
    verifier: Verifier,
    requests: AtomicU64,
    /// Compiled executors, keyed by program source (a `run` request pays
    /// compilation and lowering certification once per distinct program).
    executors: Mutex<HashMap<String, Arc<ProgramExecutor>>>,
    compiles: AtomicU64,
    vm_runs: AtomicU64,
    interp_runs: AtomicU64,
}

/// One parsed sub-query with owned subjects (the borrow source for the
/// [`Query`]s handed to the verifier).
enum ParsedQuery {
    Race(Program),
    Equivalence(Program, Program),
    Validity(Formula),
}

impl ParsedQuery {
    fn kind(&self) -> &'static str {
        match self {
            ParsedQuery::Race(_) => "race",
            ParsedQuery::Equivalence(_, _) => "equivalence",
            ParsedQuery::Validity(_) => "validity",
        }
    }

    fn as_query(&self) -> Query<'_> {
        match self {
            ParsedQuery::Race(p) => Query::DataRace(p),
            ParsedQuery::Equivalence(a, b) => Query::Equivalence(a, b),
            ParsedQuery::Validity(f) => Query::Validity(f),
        }
    }
}

impl Service {
    /// A service over a fresh verifier built from `options`.
    pub fn new(options: &ServeOptions) -> Self {
        Service::from_verifier(options.build_verifier())
    }

    /// A service over a caller-built verifier.
    pub fn from_verifier(verifier: Verifier) -> Self {
        Service {
            verifier,
            requests: AtomicU64::new(0),
            executors: Mutex::new(HashMap::new()),
            compiles: AtomicU64::new(0),
            vm_runs: AtomicU64::new(0),
            interp_runs: AtomicU64::new(0),
        }
    }

    /// The shared verifier (for stats or direct queries).
    pub fn verifier(&self) -> &Verifier {
        &self.verifier
    }

    /// Total requests handled so far (every NDJSON line counts once;
    /// a batch counts once plus nothing per sub-query).
    pub fn requests_handled(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Preloads the verdict cache with the §5 corpus: a race query per
    /// corpus program and an equivalence query per known fusion pair.
    /// Returns the number of queries preloaded, so a fresh replica starts
    /// warm instead of paying the engine cost on first contact.
    pub fn warm_start(&self) -> usize {
        let mut preloaded = 0;
        for (_, program) in corpus::all() {
            if self.verifier.verify(Query::DataRace(&program)).is_ok() {
                preloaded += 1;
            }
        }
        let pairs = [
            (
                corpus::size_counting_sequential(),
                corpus::size_counting_fused(),
            ),
            (
                corpus::size_counting_sequential(),
                corpus::size_counting_fused_invalid(),
            ),
            (
                corpus::tree_mutation_original(),
                corpus::tree_mutation_fused(),
            ),
            (corpus::css_minify_original(), corpus::css_minify_fused()),
            (corpus::cycletree_original(), corpus::cycletree_fused()),
        ];
        for (original, transformed) in &pairs {
            if self
                .verifier
                .verify(Query::Equivalence(original, transformed))
                .is_ok()
            {
                preloaded += 1;
            }
        }
        preloaded
    }

    /// Handles one NDJSON request line and returns the one-line response.
    /// Never panics on malformed input — parse and protocol errors come
    /// back as `{"status": "error", ...}`.
    pub fn handle_line(&self, line: &str) -> String {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let value = match json::parse(line) {
            Ok(value) => value,
            Err(err) => return error_response(None, &format!("invalid JSON: {err}")),
        };
        let Some(request) = value.as_object() else {
            return error_response(None, "request must be a JSON object");
        };
        let id = request.get("id");
        let kind = match request.get("kind").and_then(Value::as_str) {
            Some(kind) => kind,
            None => return error_response(id, "missing string field `kind`"),
        };
        match kind {
            "race" | "equivalence" | "validity" => match parse_query(kind, request) {
                Ok(parsed) => {
                    let result = self.verifier.verify(parsed.as_query());
                    verdict_response(id, &parsed, &result)
                }
                Err(err) => error_response(id, &err),
            },
            "batch" => self.handle_batch(id, request),
            "run" => self.handle_run(id, request),
            "stats" => self.stats_response(id),
            other => error_response(id, &format!("unknown request kind `{other}`")),
        }
    }

    fn handle_batch(
        &self,
        id: Option<&Value>,
        request: &std::collections::BTreeMap<String, Value>,
    ) -> String {
        let Some(items) = request.get("queries").and_then(Value::as_array) else {
            return error_response(id, "batch requests need an array field `queries`");
        };
        // Parse every sub-request first; parse failures keep their slot so
        // `results[i]` always answers `queries[i]`.
        let parsed: Vec<Result<ParsedQuery, String>> = items
            .iter()
            .map(|item| {
                let Some(object) = item.as_object() else {
                    return Err(String::from("batch query must be a JSON object"));
                };
                let kind = object
                    .get("kind")
                    .and_then(Value::as_str)
                    .ok_or("missing string field `kind`")?;
                parse_query(kind, object)
            })
            .collect();
        let queries: Vec<Query<'_>> = parsed
            .iter()
            .filter_map(|p| p.as_ref().ok())
            .map(ParsedQuery::as_query)
            .collect();
        let mut verdicts = self.verifier.verify_batch(&queries).into_iter();
        let results: Vec<String> = parsed
            .iter()
            .map(|entry| match entry {
                Ok(parsed) => {
                    let result = verdicts.next().expect("one verdict per parsed query");
                    verdict_response(None, parsed, &result)
                }
                Err(err) => error_response(None, err),
            })
            .collect();
        let mut out = String::from("{");
        push_id(&mut out, id);
        out.push_str("\"status\":\"ok\",\"kind\":\"batch\",\"results\":[");
        out.push_str(&results.join(","));
        out.push_str("]}");
        out
    }

    /// The cached executor for `source`, compiling (with certified lowering
    /// through the shared verifier) on first sight.
    fn executor_for(&self, source: &str, program: &Program) -> Arc<ProgramExecutor> {
        let mut executors = self.executors.lock().expect("executor cache lock");
        if let Some(executor) = executors.get(source) {
            return Arc::clone(executor);
        }
        // Bound the cache: a flood of distinct programs resets it rather
        // than growing without limit (compilation is cheap; certified
        // lowering verdicts stay warm in the verifier's own cache).
        if executors.len() >= MAX_CACHED_EXECUTORS {
            executors.clear();
        }
        let executor = Arc::new(ProgramExecutor::with_verifier(&self.verifier, program));
        self.compiles.fetch_add(1, Ordering::Relaxed);
        executors.insert(source.to_string(), Arc::clone(&executor));
        executor
    }

    fn handle_run(
        &self,
        id: Option<&Value>,
        request: &std::collections::BTreeMap<String, Value>,
    ) -> String {
        let Some(source) = request.get("program").and_then(Value::as_str) else {
            return error_response(id, "`run` requests need a string field `program`");
        };
        if source_nesting(source) > MAX_PROGRAM_NESTING {
            return error_response(
                id,
                &format!("`program` nests deeper than {MAX_PROGRAM_NESTING} levels"),
            );
        }
        let program = match retreet_lang::parse_program(source) {
            Ok(program) => program,
            Err(err) => return error_response(id, &format!("cannot parse `program`: {err}")),
        };
        let height = match request.get("height") {
            None => DEFAULT_RUN_HEIGHT,
            Some(Value::Number(h)) if *h >= 1.0 && *h <= MAX_RUN_HEIGHT as f64 => *h as usize,
            Some(_) => {
                return error_response(
                    id,
                    &format!("`height` must be a number between 1 and {MAX_RUN_HEIGHT}"),
                )
            }
        };
        let seed = match request.get("seed") {
            None => 0,
            Some(Value::Number(s)) => *s as u64,
            Some(_) => return error_response(id, "`seed` must be a number"),
        };
        let executor = self.executor_for(source, &program);
        let fields = retreet_codegen::program_fields(&program);
        let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        let mut tree = ValueTree::complete(height, &field_refs, |_, _| 0);
        tree.fill_fields(&field_refs, seed);
        let started = std::time::Instant::now();
        match executor.run(&tree) {
            Ok(outcome) => {
                match outcome.tier {
                    ExecTier::Vm => self.vm_runs.fetch_add(1, Ordering::Relaxed),
                    ExecTier::Interpreter => self.interp_runs.fetch_add(1, Ordering::Relaxed),
                };
                let returns: Vec<String> = outcome.returns.iter().map(|v| v.to_string()).collect();
                let lowered: Vec<String> = executor
                    .lowerings()
                    .iter()
                    .map(|c| format!("\"{}\"", json::escape(&c.func)))
                    .collect();
                let mut out = String::from("{");
                push_id(&mut out, id);
                out.push_str(&format!(
                    "\"status\":\"ok\",\"kind\":\"run\",\"tier\":\"{}\",\
                     \"returns\":[{}],\"lowered\":[{}],\"nodes\":{},\"elapsed_us\":{}}}",
                    outcome.tier,
                    returns.join(","),
                    lowered.join(","),
                    tree.len(),
                    started.elapsed().as_micros(),
                ));
                out
            }
            Err(err) => error_response(id, &format!("execution failed: {err}")),
        }
    }

    fn stats_response(&self, id: Option<&Value>) -> String {
        let cache = self.verifier.cache_stats();
        let serving = self.verifier.serving_stats();
        let mut out = String::from("{");
        push_id(&mut out, id);
        out.push_str(&format!(
            "\"status\":\"ok\",\"kind\":\"stats\",\"requests\":{},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"collisions\":{},\"entries\":{}}},\
             \"serving\":{{\"engine_runs\":{},\"cancelled_runs\":{},\"coalesced\":{}}},\
             \"codegen\":{{\"compiles\":{},\"vm_runs\":{},\"interp_runs\":{}}}}}",
            self.requests_handled(),
            cache.hits,
            cache.misses,
            cache.collisions,
            cache.entries,
            serving.engine_runs,
            serving.cancelled_runs,
            serving.coalesced,
            self.compiles.load(Ordering::Relaxed),
            self.vm_runs.load(Ordering::Relaxed),
            self.interp_runs.load(Ordering::Relaxed),
        ));
        out
    }
}

/// Default complete-tree height for `run` requests (2^6 - 1 = 63 nodes).
const DEFAULT_RUN_HEIGHT: usize = 6;

/// Largest complete-tree height a `run` request may ask for (2^16 - 1 nodes
/// ≈ 0.5 MB per field column — bounded, so a hostile request cannot make the
/// shared service allocate without limit).
const MAX_RUN_HEIGHT: usize = 16;

/// Most compiled executors the service keeps cached; see
/// [`Service::executor_for`].
const MAX_CACHED_EXECUTORS: usize = 128;

/// Deepest brace/parenthesis nesting a request program may use.  The
/// Retreet parser (and the analyses behind it) recurse per nesting level
/// with no cap of their own, so a hostile `fn Main(n) {{{{…` line — one
/// byte per level, far under the request-size bound — would abort the
/// shared service by stack overflow.  Corpus programs nest under 10.
const MAX_PROGRAM_NESTING: usize = 256;

/// Maximum brace/paren nesting of a candidate source, scanned iteratively
/// (so the guard itself is O(n) with no recursion).
fn source_nesting(source: &str) -> usize {
    let mut depth = 0usize;
    let mut max = 0;
    for byte in source.bytes() {
        match byte {
            b'{' | b'(' => {
                depth += 1;
                max = max.max(depth);
            }
            b'}' | b')' => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    max
}

fn parse_query(
    kind: &str,
    request: &std::collections::BTreeMap<String, Value>,
) -> Result<ParsedQuery, String> {
    let program = |field: &str| -> Result<Program, String> {
        let source = request
            .get(field)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("`{kind}` requests need a string field `{field}`"))?;
        if source_nesting(source) > MAX_PROGRAM_NESTING {
            return Err(format!(
                "`{field}` nests deeper than {MAX_PROGRAM_NESTING} levels"
            ));
        }
        retreet_lang::parse_program(source).map_err(|err| format!("cannot parse `{field}`: {err}"))
    };
    match kind {
        "race" => Ok(ParsedQuery::Race(program("program")?)),
        "equivalence" => Ok(ParsedQuery::Equivalence(
            program("original")?,
            program("transformed")?,
        )),
        "validity" => {
            let text = request
                .get("formula")
                .and_then(Value::as_str)
                .ok_or("`validity` requests need a string field `formula`")?;
            let formula = formula::parse_formula(text)
                .map_err(|err| format!("cannot parse `formula`: {err}"))?;
            Ok(ParsedQuery::Validity(formula))
        }
        other => Err(format!("unknown request kind `{other}`")),
    }
}

fn push_id(out: &mut String, id: Option<&Value>) {
    if let Some(id) = id {
        out.push_str(&format!("\"id\":{id},"));
    }
}

fn error_response(id: Option<&Value>, message: &str) -> String {
    let mut out = String::from("{");
    push_id(&mut out, id);
    out.push_str(&format!(
        "\"status\":\"error\",\"error\":\"{}\"}}",
        json::escape(message)
    ));
    out
}

fn verdict_response(
    id: Option<&Value>,
    parsed: &ParsedQuery,
    result: &Result<Verdict, VerifyError>,
) -> String {
    let verdict = match result {
        Ok(verdict) => verdict,
        Err(err) => return error_response(id, &err.to_string()),
    };
    let (word, detail) = describe_outcome(&verdict.outcome);
    let soundness = match verdict.soundness {
        Soundness::Unbounded => String::from("unbounded"),
        Soundness::BoundedUpTo { max_nodes } => format!("bounded:{max_nodes}"),
    };
    let mut out = String::from("{");
    push_id(&mut out, id);
    out.push_str(&format!(
        "\"status\":\"ok\",\"kind\":\"{}\",\"verdict\":\"{}\",\"positive\":{},\
         \"engine\":\"{}\",\"soundness\":\"{}\",\"cached\":{},\"coalesced\":{},\
         \"elapsed_us\":{},\"trees_checked\":{},\"detail\":\"{}\"}}",
        parsed.kind(),
        word,
        verdict.is_positive(),
        verdict.engine.name(),
        soundness,
        verdict.cached,
        verdict.coalesced,
        verdict.elapsed.as_micros(),
        verdict.trees_checked(),
        json::escape(&detail),
    ));
    out
}

fn describe_outcome(outcome: &Outcome) -> (&'static str, String) {
    match outcome {
        Outcome::RaceFree { .. } => ("race-free", String::new()),
        Outcome::Race(witness) => (
            "race",
            format!(
                "race on {}.{} between {} and {}",
                witness.node, witness.field, witness.first, witness.second
            ),
        ),
        Outcome::Equivalent { .. } => ("equivalent", String::new()),
        Outcome::NotEquivalent(ce) => (
            "not-equivalent",
            format!("counterexample: {:?}", ce.disagreement),
        ),
        Outcome::Valid { .. } => ("valid", String::new()),
        Outcome::Invalid(model) => (
            "invalid",
            match model {
                Some(tree) => format!("falsified by a {}-node tree", tree.len()),
                None => String::from("refuted by the automata engine (no model attached)"),
            },
        ),
    }
}

/// Longest request line the service buffers.  The §5 corpus programs are a
/// few KB each; 8 MiB leaves two orders of magnitude of headroom while
/// keeping one newline-less client from growing an unbounded `String` and
/// taking the shared service down with it.
const MAX_REQUEST_LINE_BYTES: usize = 8 * 1024 * 1024;

/// One read request line, bounded and UTF-8-checked.
enum RequestLine {
    /// End of the input stream.
    Eof,
    /// A complete line (without the trailing newline / carriage return).
    Line(String),
    /// The line was not valid UTF-8 — a malformed request, not a dead
    /// connection.
    NotUtf8,
    /// The line exceeded [`MAX_REQUEST_LINE_BYTES`]; the remainder was
    /// discarded (without buffering) up to the next newline.
    TooLong,
}

/// Reads one newline-terminated line with a hard memory bound.
/// `BufRead::lines` has no cap — one hostile client streaming bytes
/// without a newline would OOM the process — so the service reads through
/// this instead.
fn read_request_line(input: &mut impl BufRead) -> std::io::Result<RequestLine> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let available = input.fill_buf()?;
        if available.is_empty() {
            if buf.is_empty() {
                return Ok(RequestLine::Eof);
            }
            return Ok(line_from(buf));
        }
        if let Some(newline) = available.iter().position(|&b| b == b'\n') {
            if buf.len() + newline > MAX_REQUEST_LINE_BYTES {
                input.consume(newline + 1);
                return Ok(RequestLine::TooLong);
            }
            buf.extend_from_slice(&available[..newline]);
            input.consume(newline + 1);
            return Ok(line_from(buf));
        }
        let chunk = available.len();
        buf.extend_from_slice(available);
        input.consume(chunk);
        if buf.len() > MAX_REQUEST_LINE_BYTES {
            drop(buf);
            // Resynchronize on the next newline, discarding as we go (no
            // buffering, so the hostile line costs no memory).
            loop {
                let available = input.fill_buf()?;
                if available.is_empty() {
                    return Ok(RequestLine::TooLong);
                }
                match available.iter().position(|&b| b == b'\n') {
                    Some(newline) => {
                        input.consume(newline + 1);
                        return Ok(RequestLine::TooLong);
                    }
                    None => {
                        let chunk = available.len();
                        input.consume(chunk);
                    }
                }
            }
        }
    }
}

fn line_from(mut buf: Vec<u8>) -> RequestLine {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(line) => RequestLine::Line(line),
        Err(_) => RequestLine::NotUtf8,
    }
}

/// Serves NDJSON requests from `input` to `output` until EOF — the stdin
/// mode of the `retreet-serve` binary, and the harness tests' entry point.
/// Malformed lines (invalid UTF-8, over the size bound) are answered with
/// an error response and the loop keeps serving; real I/O errors end it.
pub fn serve_lines(
    service: &Service,
    mut input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<()> {
    loop {
        let response = match read_request_line(&mut input)? {
            RequestLine::Eof => return Ok(()),
            RequestLine::Line(line) if line.trim().is_empty() => continue,
            RequestLine::Line(line) => service.handle_line(&line),
            RequestLine::NotUtf8 => error_response(None, "request line is not valid UTF-8"),
            RequestLine::TooLong => error_response(
                None,
                &format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes and was dropped"),
            ),
        };
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
    }
}

/// Accepts TCP connections forever, one handler thread per client, all
/// sharing `service` (and therefore one cache and one in-flight table).
/// Returns only when the listener errors.
pub fn serve_tcp(service: Arc<Service>, listener: TcpListener) -> std::io::Result<()> {
    loop {
        let (stream, peer) = listener.accept()?;
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            if let Err(err) = serve_connection(&service, &stream) {
                eprintln!("retreet-serve: connection {peer} closed: {err}");
            }
        });
    }
}

fn serve_connection(service: &Service, stream: &TcpStream) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    serve_lines(service, reader, stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_service() -> Service {
        Service::new(&ServeOptions {
            race_nodes: 3,
            equiv_nodes: 3,
            validity_nodes: 3,
            valuations: 1,
            parallel: false,
            cache_capacity: 1024,
        })
    }

    fn field(response: &str, name: &str) -> Value {
        let parsed = json::parse(response).expect("response is valid JSON");
        parsed.as_object().unwrap()[name].clone()
    }

    #[test]
    fn race_requests_round_trip() {
        let service = quick_service();
        let program = json::escape(corpus::SIZE_COUNTING_PARALLEL_SRC);
        let request = format!(r#"{{"id": 1, "kind": "race", "program": "{program}"}}"#);
        let response = service.handle_line(&request);
        assert_eq!(field(&response, "status").as_str(), Some("ok"));
        assert_eq!(field(&response, "verdict").as_str(), Some("race-free"));
        assert_eq!(field(&response, "id"), Value::Number(1.0));
        assert_eq!(field(&response, "cached"), Value::Bool(false));
        // The identical query again: served from the cache.
        let response = service.handle_line(&request);
        assert_eq!(field(&response, "cached"), Value::Bool(true));
    }

    #[test]
    fn equivalence_and_validity_requests_round_trip() {
        let service = quick_service();
        let original = json::escape(corpus::SIZE_COUNTING_SEQUENTIAL_SRC);
        let transformed = json::escape(corpus::SIZE_COUNTING_FUSED_SRC);
        let request = format!(
            r#"{{"kind": "equivalence", "original": "{original}", "transformed": "{transformed}"}}"#
        );
        let response = service.handle_line(&request);
        assert_eq!(field(&response, "verdict").as_str(), Some("equivalent"));

        let response =
            service.handle_line(r#"{"kind": "validity", "formula": "(exists x (root x))"}"#);
        assert_eq!(field(&response, "verdict").as_str(), Some("valid"));
        assert_eq!(field(&response, "engine").as_str(), Some("automata"));
        assert_eq!(field(&response, "soundness").as_str(), Some("unbounded"));
    }

    #[test]
    fn malformed_requests_are_errors_not_crashes() {
        let service = quick_service();
        let deep_program = format!(
            r#"{{"kind": "race", "program": "fn Main(n) {}"}}"#,
            "{".repeat(500_000)
        );
        for request in [
            "not json at all",
            "[1, 2, 3]",
            r#"{"kind": "unknown"}"#,
            r#"{"kind": "race"}"#,
            r#"{"kind": "race", "program": "fn !! syntax error"}"#,
            r#"{"kind": "validity", "formula": "(unknown x)"}"#,
            r#"{"kind": "batch"}"#,
            // One byte per nesting level: must be rejected by the nesting
            // guard before the recursive-descent program parser sees it.
            deep_program.as_str(),
        ] {
            let response = service.handle_line(request);
            assert_eq!(
                field(&response, "status").as_str(),
                Some("error"),
                "request {request:?} must answer an error"
            );
        }
        // The service keeps answering after errors.
        let response =
            service.handle_line(r#"{"kind": "validity", "formula": "(exists x (root x))"}"#);
        assert_eq!(field(&response, "status").as_str(), Some("ok"));
    }

    #[test]
    fn batch_requests_answer_in_input_order_with_errors_in_place() {
        let service = quick_service();
        let racy = json::escape(corpus::CYCLETREE_PARALLEL_SRC);
        let free = json::escape(corpus::SIZE_COUNTING_PARALLEL_SRC);
        let request = format!(
            r#"{{"id": "b1", "kind": "batch", "queries": [
                {{"kind": "race", "program": "{racy}"}},
                {{"kind": "race", "program": "not a program"}},
                {{"kind": "race", "program": "{free}"}},
                {{"kind": "validity", "formula": "(exists x (root x))"}}
            ]}}"#
        );
        let response = service.handle_line(&request);
        let parsed = json::parse(&response).unwrap();
        let object = parsed.as_object().unwrap();
        assert_eq!(object["status"].as_str(), Some("ok"));
        let results = object["results"].as_array().unwrap();
        assert_eq!(results.len(), 4);
        let verdict =
            |i: usize, key: &str| -> Value { results[i].as_object().unwrap()[key].clone() };
        assert_eq!(verdict(0, "verdict").as_str(), Some("race"));
        assert_eq!(verdict(1, "status").as_str(), Some("error"));
        assert_eq!(verdict(2, "verdict").as_str(), Some("race-free"));
        assert_eq!(verdict(3, "verdict").as_str(), Some("valid"));
    }

    #[test]
    fn run_requests_execute_on_the_vm_tier_and_count_in_stats() {
        let service = quick_service();
        let program = json::escape(corpus::SIZE_COUNTING_SEQUENTIAL_SRC);
        let request = format!(r#"{{"id": 4, "kind": "run", "program": "{program}", "height": 5}}"#);
        let response = service.handle_line(&request);
        assert_eq!(
            field(&response, "status").as_str(),
            Some("ok"),
            "{response}"
        );
        assert_eq!(field(&response, "tier").as_str(), Some("vm"));
        // A complete height-5 tree: layers 1/3/5 hold 1+4+16 = 21 nodes,
        // layers 2/4 hold 2+8 = 10.
        let returns = field(&response, "returns");
        let returns = returns.as_array().unwrap();
        assert_eq!(returns[0], Value::Number(21.0));
        assert_eq!(returns[1], Value::Number(10.0));
        // Same program again: compiled once, run twice.
        service.handle_line(&request);
        let stats = service.handle_line(r#"{"kind": "stats"}"#);
        let parsed = json::parse(&stats).unwrap();
        let codegen = parsed.as_object().unwrap()["codegen"].as_object().unwrap();
        assert_eq!(codegen["compiles"], Value::Number(1.0));
        assert_eq!(codegen["vm_runs"], Value::Number(2.0));
        assert_eq!(codegen["interp_runs"], Value::Number(0.0));
    }

    #[test]
    fn run_requests_report_certified_lowerings_and_bound_height() {
        let service = quick_service();
        let program = json::escape(corpus::TREE_MUTATION_ORIGINAL_SRC);
        let request = format!(r#"{{"kind": "run", "program": "{program}"}}"#);
        let response = service.handle_line(&request);
        assert_eq!(
            field(&response, "status").as_str(),
            Some("ok"),
            "{response}"
        );
        let lowered = field(&response, "lowered");
        assert!(
            !lowered.as_array().unwrap().is_empty(),
            "tree_mutation traversals should certify for lowering: {response}"
        );
        // Height beyond the cap is refused, the service stays up.
        let request = format!(r#"{{"kind": "run", "program": "{program}", "height": 40}}"#);
        let response = service.handle_line(&request);
        assert_eq!(field(&response, "status").as_str(), Some("error"));
    }

    #[test]
    fn warm_start_preloads_and_stats_report_it() {
        let service = quick_service();
        let preloaded = service.warm_start();
        assert!(preloaded >= 10, "corpus + fusion pairs, got {preloaded}");
        let response = service.handle_line(r#"{"id": 9, "kind": "stats"}"#);
        let parsed = json::parse(&response).unwrap();
        let object = parsed.as_object().unwrap();
        assert_eq!(object["status"].as_str(), Some("ok"));
        let cache = object["cache"].as_object().unwrap();
        assert_eq!(cache["entries"], Value::Number(preloaded as f64));
        // A corpus query after warm start is a cache hit.
        let program = json::escape(corpus::CYCLETREE_PARALLEL_SRC);
        let request = format!(r#"{{"kind": "race", "program": "{program}"}}"#);
        let response = service.handle_line(&request);
        assert_eq!(field(&response, "cached"), Value::Bool(true));
    }

    #[test]
    fn non_utf8_lines_answer_an_error_and_the_service_keeps_running() {
        let service = quick_service();
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"\xff\xfe garbage\n");
        input.extend_from_slice(b"{\"id\": 1, \"kind\": \"stats\"}\n");
        let mut output = Vec::new();
        serve_lines(&service, &input[..], &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(field(lines[0], "status").as_str(), Some("error"));
        assert_eq!(field(lines[1], "status").as_str(), Some("ok"));
    }

    #[test]
    fn oversized_lines_answer_an_error_without_buffering_the_line() {
        let service = quick_service();
        let mut input: Vec<u8> = Vec::with_capacity(MAX_REQUEST_LINE_BYTES + 64);
        input.resize(MAX_REQUEST_LINE_BYTES + 10, b'[');
        input.push(b'\n');
        input.extend_from_slice(b"{\"id\": 1, \"kind\": \"stats\"}\n");
        let mut output = Vec::new();
        serve_lines(&service, &input[..], &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(field(lines[0], "status").as_str(), Some("error"));
        assert!(lines[0].contains("exceeds"), "{}", lines[0]);
        assert_eq!(field(lines[1], "status").as_str(), Some("ok"));
    }

    #[test]
    fn serve_lines_speaks_ndjson_until_eof() {
        let service = quick_service();
        let input = b"{\"id\": 1, \"kind\": \"stats\"}\n\n{\"id\": 2, \"kind\": \"stats\"}\n";
        let mut output = Vec::new();
        serve_lines(&service, &input[..], &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "blank lines are skipped");
        assert_eq!(field(lines[0], "id"), Value::Number(1.0));
        assert_eq!(field(lines[1], "id"), Value::Number(2.0));
    }
}
