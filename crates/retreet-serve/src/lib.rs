//! # retreet-serve — the concurrent verification service
//!
//! The ROADMAP's north star is a verifier that serves heavy concurrent
//! traffic; this crate is that serving tier.  It wraps one shared
//! [`retreet_verify::Verifier`] — sharded verdict cache, single-flight
//! coalescing, batch fan-out — in a long-running loop speaking
//! newline-delimited JSON over stdin/stdout or a TCP listener:
//!
//! ```text
//! → {"id": 1, "kind": "race", "program": "fn Main(n) { ... }"}
//! ← {"id": 1, "status": "ok", "kind": "race", "verdict": "race-free",
//!    "positive": true, "engine": "configuration", "soundness": "bounded:4",
//!    "cached": false, "coalesced": false, "elapsed_us": 1234,
//!    "trees_checked": 14, "detail": ""}
//! ```
//!
//! Request kinds:
//!
//! * `race` — `program` (Retreet source); Theorem 2.
//! * `equivalence` — `original` + `transformed` (Retreet source); Theorem 3.
//! * `validity` — `formula` (the s-expression syntax of [`formula`]).
//! * `batch` — `queries`: an array of the above; answered through
//!   [`Verifier::verify_batch`], results in input order.
//! * `run` — `program` plus optional `height` (complete-tree height, default
//!   6, capped), `seed` (field valuation) and `arity` (complete-tree arity,
//!   default: the program's declared arity, so binary programs run on binary
//!   complete trees; out-of-range axes are a `bad_request`); *executes* the
//!   program through the `retreet-runtime` compiled tier (bytecode VM with
//!   certified iterative lowering, interpreter fallback) and answers with
//!   the returned values, the executing tier and the certified-lowered
//!   functions.  Executors are compiled once per distinct source and cached.
//! * `tune` — `program` plus optional `height` / `seed` / `arity` (same
//!   rules as `run`): runs the certified schedule autotuner
//!   (`retreet_runtime::tune_and_compile`) over the program's pass pipeline
//!   and answers with the winning schedule's source, its certificate
//!   provenance (kind, engine, soundness), the baseline and tuned costs,
//!   and the full candidate table — certified candidates with measured VM
//!   costs, refused candidates with their refusal.  Results are cached by
//!   `(program, height, seed, arity)`; the winner's executor is pre-seeded
//!   into the `run` cache.
//! * `stats` — cache and serving counters of the shared verifier, plus the
//!   codegen tier's compile/execute counters.
//!
//! Every verdict response carries the engine provenance, the soundness
//! caveat, the `cached` / `coalesced` serving flags and the `degraded`
//! deadline marker, so a client can always tell how its answer was
//! produced.  Malformed requests are answered with
//! `{"status": "error", "code": ..., ...}` on the same line — the
//! connection (and the service) stays up.
//!
//! # The two-lane scheduler
//!
//! Every verification request is first *probed* against the shared
//! verifier ([`Verifier::probe`]):
//!
//! ```text
//!              ┌─ probe ──────────────────────────────────────────┐
//!   request ──►│ Hit / InFlight ──► warm lane: answered inline    │──► response
//!              │                    (cache read / coalesced wait) │
//!              │ Cold ────────────► cold lane: bounded queue ───► │
//!              │                    worker pool (portfolio run)   │
//!              └──────── queue full? ──► {"code":"overloaded"} ───┘
//! ```
//!
//! Warm lookups are answered on the connection thread and can never queue
//! behind expensive cold verifications; cold work goes through a *bounded*
//! queue drained by a fixed worker pool, and when that queue is full the
//! request is shed with an explicit `overloaded` error instead of growing
//! an unbounded backlog.  See [`ServeOptions::workers`] /
//! [`ServeOptions::cold_queue`].
//!
//! # Robustness
//!
//! * **Deadlines** — [`ServeOptions::deadline_ms`] arms a per-query
//!   wall-clock budget; an expired query resolves fail-closed (a verdict
//!   marked `degraded` when a finished engine's answer can be served,
//!   the typed `deadline_exceeded` error otherwise — never a wrong or
//!   truncated verdict).
//! * **Persistence** — [`ServeOptions::persist`] backs the verdict cache
//!   with a crash-safe append-only log; a restarted replica reloads every
//!   verdict it ever computed and serves them as cache hits.
//! * **Graceful shutdown** — a `{"kind": "shutdown"}` request (or
//!   [`Service::finish`]) stops intake, drains in-flight requests under
//!   [`ServeOptions::drain_ms`], flushes the store and lets the process
//!   exit 0 with no in-flight response lost.
//! * **Fault injection** — a seeded [`retreet_verify::FaultPlan`] drives
//!   engine panics/stalls, store write faults and connection drops for
//!   the chaos suite; the service isolates each, and the shared process
//!   survives.
//!
//! [`Service::warm_start`] preloads the §5 corpus verdicts so a fresh
//! replica answers the common queries from the cache immediately; a
//! persistent store generalizes this to every verdict ever computed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod formula;
pub mod json;
mod sched;

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use retreet_analysis::vtree::ValueTree;
use retreet_lang::ast::Program;
use retreet_lang::corpus;
use retreet_mso::formula::Formula;
use retreet_runtime::exec::{ExecTier, ProgramExecutor};
use retreet_verify::{
    CorruptionPolicy, FaultPlan, FaultSite, InjectedFault, Outcome, Query, Soundness, Verdict,
    Verifier, VerifyError, Warmth,
};

use json::Value;
use sched::{Admission, ColdPool};

/// Budget and portfolio options of a service verifier (a trimmed mirror of
/// the [`Verifier`] builder knobs, so `main` can parse them from flags).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Largest tree (in nodes) enumerated for data-race queries.
    pub race_nodes: usize,
    /// Largest tree (in nodes) enumerated for equivalence queries.
    pub equiv_nodes: usize,
    /// Largest tree (in nodes) enumerated for bounded validity queries.
    pub validity_nodes: usize,
    /// Deterministic field valuations per tree shape.
    pub valuations: usize,
    /// Run the applicable engines concurrently per query.
    pub parallel: bool,
    /// Verdict-cache capacity (0 disables caching and coalescing).
    pub cache_capacity: usize,
    /// Cold-lane worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Bound of the cold-lane queue; a full queue sheds with `overloaded`.
    pub cold_queue: usize,
    /// Per-query wall-clock budget in milliseconds (0 = no deadline).
    pub deadline_ms: u64,
    /// Most simultaneous TCP connections [`serve_tcp`] accepts; further
    /// clients are answered one `overloaded` error line and disconnected.
    pub max_connections: usize,
    /// How long [`Service::finish`] waits for in-flight requests before
    /// cancelling what remains.
    pub drain_ms: u64,
    /// Back the verdict cache with a crash-safe log at this path.
    pub persist: Option<PathBuf>,
    /// With [`Self::persist`]: refuse to open a corrupt store instead of
    /// skipping bad records.
    pub fail_open: bool,
    /// Seeded fault-injection plan shared by the verifier's engine/store
    /// sites and this crate's connection writer.  Chaos-testing hook —
    /// never set in production.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            race_nodes: 4,
            equiv_nodes: 5,
            validity_nodes: 5,
            valuations: 2,
            parallel: false,
            cache_capacity: 4096,
            workers: 2,
            cold_queue: 256,
            deadline_ms: 0,
            max_connections: 64,
            drain_ms: 2_000,
            persist: None,
            fail_open: false,
            faults: None,
        }
    }
}

impl ServeOptions {
    /// Builds the verifier these options describe, reporting store-open
    /// failures instead of panicking.
    pub fn try_build_verifier(&self) -> Result<Verifier, VerifyError> {
        let mut builder = Verifier::builder()
            .race_nodes(self.race_nodes)
            .equiv_nodes(self.equiv_nodes)
            .validity_nodes(self.validity_nodes)
            .valuations(self.valuations)
            .parallel(self.parallel)
            .cache_capacity(self.cache_capacity);
        if self.deadline_ms > 0 {
            builder = builder.default_deadline(Duration::from_millis(self.deadline_ms));
        }
        if let Some(plan) = &self.faults {
            builder = builder.shared_fault_plan(Arc::clone(plan));
        }
        if let Some(path) = &self.persist {
            let policy = if self.fail_open {
                CorruptionPolicy::FailOpen
            } else {
                CorruptionPolicy::SkipAndLog
            };
            builder = builder.persist_with_policy(path.clone(), policy);
        }
        builder.try_build()
    }

    /// Builds the verifier these options describe (panics on a store-open
    /// failure; use [`Self::try_build_verifier`] to handle it).
    pub fn build_verifier(&self) -> Verifier {
        self.try_build_verifier()
            .expect("ServeOptions::build_verifier: verdict store failed to open")
    }
}

/// The service: one shared verifier, the two-lane scheduler and request
/// accounting.  `Sync` — one instance serves any number of client
/// threads/connections.
pub struct Service {
    verifier: Arc<Verifier>,
    /// The cold lane: bounded queue + worker pool (see [`crate`] docs).
    cold: ColdPool,
    /// Connection-writer fault hook (mirrors the verifier's plan).
    faults: Option<Arc<FaultPlan>>,
    requests: AtomicU64,
    /// Requests answered inline on the warm lane (cache hit or coalesced).
    warm_inline: AtomicU64,
    /// Requests currently being handled by a serving loop (the drain gauge:
    /// counted from read to *flushed response*).
    inflight: AtomicU64,
    /// Raised by a `shutdown` request or [`Self::finish`]; serving loops
    /// stop reading and new verification work is refused.
    shutting_down: AtomicBool,
    max_connections: usize,
    drain_ms: u64,
    /// Compiled executors, keyed by program source (a `run` request pays
    /// compilation and lowering certification once per distinct program).
    executors: Mutex<HashMap<String, Arc<ProgramExecutor>>>,
    compiles: AtomicU64,
    vm_runs: AtomicU64,
    interp_runs: AtomicU64,
    /// Autotuner responses, keyed by `(program, height, seed)` — tuning is
    /// the most expensive request kind, so repeats are answered from here.
    tuned: Mutex<HashMap<String, Arc<String>>>,
    tunes: AtomicU64,
}

/// One parsed sub-query with owned subjects (the borrow source for the
/// [`Query`]s handed to the verifier).
enum ParsedQuery {
    Race(Program),
    Equivalence(Program, Program),
    Validity(Formula),
}

impl ParsedQuery {
    fn kind(&self) -> &'static str {
        match self {
            ParsedQuery::Race(_) => "race",
            ParsedQuery::Equivalence(_, _) => "equivalence",
            ParsedQuery::Validity(_) => "validity",
        }
    }

    fn as_query(&self) -> Query<'_> {
        match self {
            ParsedQuery::Race(p) => Query::DataRace(p),
            ParsedQuery::Equivalence(a, b) => Query::Equivalence(a, b),
            ParsedQuery::Validity(f) => Query::Validity(f),
        }
    }
}

impl Service {
    /// A service over a fresh verifier built from `options`.  Panics if the
    /// persistent store fails to open; [`Self::try_new`] reports it.
    pub fn new(options: &ServeOptions) -> Self {
        Service::try_new(options).expect("Service::new: verdict store failed to open")
    }

    /// A service over a fresh verifier built from `options`, reporting
    /// store-open failures.
    pub fn try_new(options: &ServeOptions) -> Result<Self, VerifyError> {
        let verifier = options.try_build_verifier()?;
        Ok(Service::assemble(verifier, options))
    }

    /// A service over a caller-built verifier (scheduler knobs take their
    /// defaults; the verifier's fault plan, if any, also drives the
    /// connection-writer site).
    pub fn from_verifier(verifier: Verifier) -> Self {
        Service::assemble(verifier, &ServeOptions::default())
    }

    fn assemble(verifier: Verifier, options: &ServeOptions) -> Self {
        let faults = verifier.fault_plan();
        Service {
            verifier: Arc::new(verifier),
            cold: ColdPool::new(options.workers, options.cold_queue),
            faults,
            requests: AtomicU64::new(0),
            warm_inline: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            max_connections: options.max_connections.max(1),
            drain_ms: options.drain_ms,
            executors: Mutex::new(HashMap::new()),
            compiles: AtomicU64::new(0),
            vm_runs: AtomicU64::new(0),
            interp_runs: AtomicU64::new(0),
            tuned: Mutex::new(HashMap::new()),
            tunes: AtomicU64::new(0),
        }
    }

    /// The shared verifier (for stats or direct queries).
    pub fn verifier(&self) -> &Verifier {
        &self.verifier
    }

    /// Total requests handled so far (every NDJSON line counts once;
    /// a batch counts once plus nothing per sub-query).
    pub fn requests_handled(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Whether shutdown was requested (serving loops stop after their
    /// current response).
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: refuse new verification work, wait up to the
    /// configured drain budget for in-flight requests to flush their
    /// responses, cancel whatever remains, join the cold-lane workers and
    /// durably flush the verdict store.  Idempotent.  Returns `true` when
    /// everything drained inside the budget (`false` = stragglers were
    /// cancelled).
    pub fn finish(&self) -> bool {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.cold.close();
        let deadline = Instant::now() + Duration::from_millis(self.drain_ms);
        let drained = loop {
            if self.inflight.load(Ordering::SeqCst) == 0 {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        if !drained {
            // Past the drain budget: raise the cooperative-cancel flag of
            // every live dispatch so stuck engines resolve fail-closed and
            // the workers can exit.
            self.verifier.abort_inflight();
        }
        self.cold.join();
        self.verifier.flush_store();
        drained
    }

    /// Preloads the verdict cache with the §5 corpus: a race query per
    /// corpus program and an equivalence query per known fusion pair.
    /// Returns the number of queries preloaded, so a fresh replica starts
    /// warm instead of paying the engine cost on first contact.
    pub fn warm_start(&self) -> usize {
        let mut preloaded = 0;
        for (_, program) in corpus::all() {
            if self.verifier.verify(Query::DataRace(&program)).is_ok() {
                preloaded += 1;
            }
        }
        let pairs = [
            (
                corpus::size_counting_sequential(),
                corpus::size_counting_fused(),
            ),
            (
                corpus::size_counting_sequential(),
                corpus::size_counting_fused_invalid(),
            ),
            (
                corpus::tree_mutation_original(),
                corpus::tree_mutation_fused(),
            ),
            (corpus::css_minify_original(), corpus::css_minify_fused()),
            (corpus::cycletree_original(), corpus::cycletree_fused()),
        ];
        for (original, transformed) in &pairs {
            if self
                .verifier
                .verify(Query::Equivalence(original, transformed))
                .is_ok()
            {
                preloaded += 1;
            }
        }
        preloaded
    }

    /// Handles one NDJSON request line and returns the one-line response.
    /// Never panics on malformed input — parse and protocol errors come
    /// back as `{"status": "error", "code": ..., ...}`.
    pub fn handle_line(&self, line: &str) -> String {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let value = match json::parse(line) {
            Ok(value) => value,
            Err(err) => {
                return error_response(None, "bad_request", &format!("invalid JSON: {err}"))
            }
        };
        let Some(request) = value.as_object() else {
            return error_response(None, "bad_request", "request must be a JSON object");
        };
        let id = request.get("id");
        let kind = match request.get("kind").and_then(Value::as_str) {
            Some(kind) => kind,
            None => return error_response(id, "bad_request", "missing string field `kind`"),
        };
        if self.is_shutting_down()
            && matches!(
                kind,
                "race" | "equivalence" | "validity" | "batch" | "run" | "tune"
            )
        {
            return error_response(id, "shutting_down", "service is draining for shutdown");
        }
        match kind {
            "race" | "equivalence" | "validity" => match parse_query(kind, request) {
                Ok(parsed) => self.answer_query(id, parsed),
                Err(err) => error_response(id, "bad_request", &err),
            },
            "batch" => self.handle_batch(id, request),
            "run" => self.handle_run(id, request),
            "tune" => self.handle_tune(id, request),
            "stats" => self.stats_response(id),
            "shutdown" => self.handle_shutdown(id),
            other => error_response(
                id,
                "bad_request",
                &format!("unknown request kind `{other}`"),
            ),
        }
    }

    /// The two-lane scheduler (see the crate docs): warm queries answer
    /// inline; cold queries go through the bounded worker pool and are shed
    /// with `overloaded` when it is full.
    fn answer_query(&self, id: Option<&Value>, parsed: ParsedQuery) -> String {
        match self.verifier.probe(&parsed.as_query()) {
            Warmth::Hit | Warmth::InFlight => {
                self.warm_inline.fetch_add(1, Ordering::Relaxed);
                let result = self.verifier.verify(parsed.as_query());
                verdict_response(id, &parsed, &result)
            }
            Warmth::Cold => {
                let verifier = Arc::clone(&self.verifier);
                let id_owned: Option<Value> = id.cloned();
                let (tx, rx) = mpsc::channel::<String>();
                let admission = self.cold.submit(Box::new(move || {
                    let result = verifier.verify(parsed.as_query());
                    let _ = tx.send(verdict_response(id_owned.as_ref(), &parsed, &result));
                }));
                self.await_cold(id, admission, &rx)
            }
        }
    }

    /// Maps a cold-lane admission to its response, blocking on the worker
    /// when the job was accepted.
    fn await_cold(
        &self,
        id: Option<&Value>,
        admission: Admission,
        rx: &mpsc::Receiver<String>,
    ) -> String {
        match admission {
            Admission::Accepted => match rx.recv() {
                Ok(response) => {
                    self.cold.note_executed();
                    response
                }
                // The worker died mid-job (a panic outside the verifier's
                // own isolation): fail this request, keep the service up.
                Err(_) => error_response(id, "internal", "cold-lane worker failed mid-query"),
            },
            Admission::Overloaded => error_response(
                id,
                "overloaded",
                "cold verification queue is full; retry later",
            ),
            Admission::ShuttingDown => {
                error_response(id, "shutting_down", "service is draining for shutdown")
            }
        }
    }

    fn handle_batch(
        &self,
        id: Option<&Value>,
        request: &std::collections::BTreeMap<String, Value>,
    ) -> String {
        let Some(items) = request.get("queries").and_then(Value::as_array) else {
            return error_response(
                id,
                "bad_request",
                "batch requests need an array field `queries`",
            );
        };
        // Parse every sub-request first; parse failures keep their slot so
        // `results[i]` always answers `queries[i]`.
        let parsed: Vec<Result<ParsedQuery, String>> = items
            .iter()
            .map(|item| {
                let Some(object) = item.as_object() else {
                    return Err(String::from("batch query must be a JSON object"));
                };
                let kind = object
                    .get("kind")
                    .and_then(Value::as_str)
                    .ok_or("missing string field `kind`")?;
                parse_query(kind, object)
            })
            .collect();
        // A batch with only warm sub-queries stays on the warm lane; one
        // cold member sends the whole batch through the pool (its fan-out
        // runs on a worker, not on the connection thread).
        let any_cold = parsed.iter().any(|entry| match entry {
            Ok(parsed) => self.verifier.probe(&parsed.as_query()) == Warmth::Cold,
            Err(_) => false,
        });
        if !any_cold {
            self.warm_inline.fetch_add(1, Ordering::Relaxed);
            return batch_response(&self.verifier, id, &parsed);
        }
        let verifier = Arc::clone(&self.verifier);
        let id_owned: Option<Value> = id.cloned();
        let (tx, rx) = mpsc::channel::<String>();
        let admission = self.cold.submit(Box::new(move || {
            let _ = tx.send(batch_response(&verifier, id_owned.as_ref(), &parsed));
        }));
        self.await_cold(id, admission, &rx)
    }

    fn handle_shutdown(&self, id: Option<&Value>) -> String {
        // Flag first, then close the intake: a request racing past the
        // flag still cannot be admitted.
        self.shutting_down.store(true, Ordering::SeqCst);
        self.cold.close();
        let mut out = String::from("{");
        push_id(&mut out, id);
        out.push_str("\"status\":\"ok\",\"kind\":\"shutdown\",\"draining\":true}");
        out
    }

    /// The cached executor for `source`, compiling (with certified lowering
    /// through the shared verifier) on first sight.
    fn executor_for(&self, source: &str, program: &Program) -> Arc<ProgramExecutor> {
        let mut executors = self.executors.lock().expect("executor cache lock");
        if let Some(executor) = executors.get(source) {
            return Arc::clone(executor);
        }
        // Bound the cache: a flood of distinct programs resets it rather
        // than growing without limit (compilation is cheap; certified
        // lowering verdicts stay warm in the verifier's own cache).
        if executors.len() >= MAX_CACHED_EXECUTORS {
            executors.clear();
        }
        let executor = Arc::new(ProgramExecutor::with_verifier(&self.verifier, program));
        self.compiles.fetch_add(1, Ordering::Relaxed);
        executors.insert(source.to_string(), Arc::clone(&executor));
        executor
    }

    fn handle_run(
        &self,
        id: Option<&Value>,
        request: &std::collections::BTreeMap<String, Value>,
    ) -> String {
        let Some(source) = request.get("program").and_then(Value::as_str) else {
            return error_response(
                id,
                "bad_request",
                "`run` requests need a string field `program`",
            );
        };
        if source_nesting(source) > MAX_PROGRAM_NESTING {
            return error_response(
                id,
                "bad_request",
                &format!("`program` nests deeper than {MAX_PROGRAM_NESTING} levels"),
            );
        }
        let program = match retreet_lang::parse_program(source) {
            Ok(program) => program,
            Err(err) => {
                return error_response(id, "bad_request", &format!("cannot parse `program`: {err}"))
            }
        };
        let height = match request.get("height") {
            None => DEFAULT_RUN_HEIGHT,
            Some(Value::Number(h)) if *h >= 1.0 && *h <= MAX_RUN_HEIGHT as f64 => *h as usize,
            Some(_) => {
                return error_response(
                    id,
                    "bad_request",
                    &format!("`height` must be a number between 1 and {MAX_RUN_HEIGHT}"),
                )
            }
        };
        let seed = match request.get("seed") {
            None => 0,
            Some(Value::Number(s)) => *s as u64,
            Some(_) => return error_response(id, "bad_request", "`seed` must be a number"),
        };
        let arity = match parse_arity(request, &program) {
            Ok(arity) => arity,
            Err(err) => return error_response(id, "bad_request", &err),
        };
        let executor = self.executor_for(source, &program);
        let fields = retreet_codegen::program_fields(&program);
        let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        let mut tree = ValueTree::complete_kary(arity, height, &field_refs, |_, _| 0);
        tree.fill_fields(&field_refs, seed);
        let started = std::time::Instant::now();
        match executor.run(&tree) {
            Ok(outcome) => {
                match outcome.tier {
                    ExecTier::Vm => self.vm_runs.fetch_add(1, Ordering::Relaxed),
                    ExecTier::Interpreter => self.interp_runs.fetch_add(1, Ordering::Relaxed),
                };
                let returns: Vec<String> = outcome.returns.iter().map(|v| v.to_string()).collect();
                let lowered: Vec<String> = executor
                    .lowerings()
                    .iter()
                    .map(|c| format!("\"{}\"", json::escape(&c.func)))
                    .collect();
                let mut out = String::from("{");
                push_id(&mut out, id);
                out.push_str(&format!(
                    "\"status\":\"ok\",\"kind\":\"run\",\"tier\":\"{}\",\
                     \"returns\":[{}],\"lowered\":[{}],\"nodes\":{},\"elapsed_us\":{}}}",
                    outcome.tier,
                    returns.join(","),
                    lowered.join(","),
                    tree.len(),
                    started.elapsed().as_micros(),
                ));
                out
            }
            Err(err) => error_response(id, "internal", &format!("execution failed: {err}")),
        }
    }

    /// The `tune` request: run the certified schedule autotuner over the
    /// program's pass pipeline (VM-measured, verifier-certified) and answer
    /// with the winner, its certificate provenance and the full candidate
    /// table.  Tuning is by far the most expensive request kind, so results
    /// are cached by `(program, height, seed)` and repeats answer from the
    /// cache with `"cached":true`.
    fn handle_tune(
        &self,
        id: Option<&Value>,
        request: &std::collections::BTreeMap<String, Value>,
    ) -> String {
        let Some(source) = request.get("program").and_then(Value::as_str) else {
            return error_response(
                id,
                "bad_request",
                "`tune` requests need a string field `program`",
            );
        };
        if source_nesting(source) > MAX_PROGRAM_NESTING {
            return error_response(
                id,
                "bad_request",
                &format!("`program` nests deeper than {MAX_PROGRAM_NESTING} levels"),
            );
        }
        let height = match request.get("height") {
            None => DEFAULT_TUNE_HEIGHT,
            Some(Value::Number(h)) if *h >= 1.0 && *h <= MAX_RUN_HEIGHT as f64 => *h as usize,
            Some(_) => {
                return error_response(
                    id,
                    "bad_request",
                    &format!("`height` must be a number between 1 and {MAX_RUN_HEIGHT}"),
                )
            }
        };
        let seed = match request.get("seed") {
            None => 0,
            Some(Value::Number(s)) => *s as u64,
            Some(_) => return error_response(id, "bad_request", "`seed` must be a number"),
        };
        let program = match retreet_lang::parse_program(source) {
            Ok(program) => program,
            Err(err) => {
                return error_response(id, "bad_request", &format!("cannot parse `program`: {err}"))
            }
        };
        let arity = match parse_arity(request, &program) {
            Ok(arity) => arity,
            Err(err) => return error_response(id, "bad_request", &err),
        };
        let cache_key = format!("{source}\u{1f}{height}\u{1f}{seed}\u{1f}{arity}");
        if let Some(body) = self.tuned.lock().expect("tune cache lock").get(&cache_key) {
            let mut out = String::from("{");
            push_id(&mut out, id);
            out.push_str("\"status\":\"ok\",\"kind\":\"tune\",\"cached\":true,");
            out.push_str(body);
            out.push('}');
            return out;
        }
        let options = retreet_transform::TuneOptions {
            tree_height: height,
            tree_arity: arity,
            seed,
            ..retreet_transform::TuneOptions::quick()
        };
        let started = std::time::Instant::now();
        let tuned = match retreet_runtime::tune_and_compile(&self.verifier, &program, &options) {
            Ok(tuned) => tuned,
            Err(err) => {
                return error_response(id, "untunable", &format!("autotuning refused: {err}"))
            }
        };
        self.tunes.fetch_add(1, Ordering::Relaxed);
        let schedule = &tuned.schedule;

        // Pre-seed the `run` executor cache with the winner so a follow-up
        // `run` of the tuned source starts warm.
        let winner_source = schedule.winner.transformed_source();
        {
            let mut executors = self.executors.lock().expect("executor cache lock");
            if !executors.contains_key(&winner_source) {
                if executors.len() >= MAX_CACHED_EXECUTORS {
                    executors.clear();
                }
                executors.insert(winner_source.clone(), Arc::new(tuned.executor));
                self.compiles.fetch_add(1, Ordering::Relaxed);
            }
        }

        let candidates: Vec<String> = schedule
            .candidates
            .iter()
            .map(|candidate| {
                let mut entry = format!(
                    "{{\"label\":\"{}\",\"schedule\":\"{}\"",
                    json::escape(&candidate.label),
                    candidate.schedule
                );
                match &candidate.status {
                    retreet_transform::CandidateStatus::Certified {
                        equivalence,
                        race,
                        cost,
                    } => {
                        entry.push_str(&format!(
                            ",\"certified\":true,\"engine\":\"{}\",\"soundness\":\"{}\"",
                            equivalence.engine, equivalence.soundness
                        ));
                        if let Some(race) = race {
                            entry.push_str(&format!(",\"race_engine\":\"{}\"", race.engine));
                        }
                        match cost {
                            Ok(seconds) => entry.push_str(&format!(",\"seconds\":{seconds:e}")),
                            Err(reason) => entry
                                .push_str(&format!(",\"unmeasured\":\"{}\"", json::escape(reason))),
                        }
                    }
                    retreet_transform::CandidateStatus::Refused(reason) => {
                        entry.push_str(&format!(
                            ",\"certified\":false,\"refusal\":\"{}\"",
                            json::escape(&reason.to_string())
                        ));
                    }
                }
                entry.push('}');
                entry
            })
            .collect();

        let certificate = &schedule.winner.certificate;
        let mut body = format!(
            "\"winner\":{{\"label\":\"{}\",\"source\":\"{}\",\
             \"certificate\":{{\"kind\":\"{}\",\"engine\":\"{}\",\"soundness\":\"{}\",\
             \"trees_checked\":{}}},\"seconds\":{:e}}},\
             \"baseline\":{{\"original_seconds\":{:e},\"fused_seconds\":{}}},\
             \"speedup\":{:.4},\"certified\":{},\"refused\":{},",
            json::escape(&schedule.winner_label),
            json::escape(&winner_source),
            certificate.kind,
            certificate.engine(),
            certificate.soundness(),
            certificate.trees_checked(),
            schedule.winner_seconds,
            schedule.baseline_original_seconds,
            schedule
                .baseline_fused_seconds
                .map(|s| format!("{s:e}"))
                .unwrap_or_else(|| String::from("null")),
            schedule.speedup(),
            schedule.certified_count(),
            schedule.refused_count(),
        );
        body.push_str(&format!(
            "\"candidates\":[{}],\"elapsed_us\":{}",
            candidates.join(","),
            started.elapsed().as_micros(),
        ));

        {
            let mut tuned_cache = self.tuned.lock().expect("tune cache lock");
            if tuned_cache.len() >= MAX_CACHED_EXECUTORS {
                tuned_cache.clear();
            }
            tuned_cache.insert(cache_key, Arc::new(body.clone()));
        }

        let mut out = String::from("{");
        push_id(&mut out, id);
        out.push_str("\"status\":\"ok\",\"kind\":\"tune\",\"cached\":false,");
        out.push_str(&body);
        out.push('}');
        out
    }

    fn stats_response(&self, id: Option<&Value>) -> String {
        let cache = self.verifier.cache_stats();
        let serving = self.verifier.serving_stats();
        let cold = self.cold.stats();
        let mut out = String::from("{");
        push_id(&mut out, id);
        out.push_str(&format!(
            "\"status\":\"ok\",\"kind\":\"stats\",\"requests\":{},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"collisions\":{},\"entries\":{}}},\
             \"serving\":{{\"engine_runs\":{},\"cancelled_runs\":{},\"panicked_runs\":{},\
             \"deadline_hits\":{},\"degraded\":{},\"coalesced\":{}}},\
             \"sched\":{{\"workers\":{},\"queue_depth\":{},\"cold_executed\":{},\"shed\":{},\
             \"warm_inline\":{},\"inflight\":{},\"shutting_down\":{}}},\
             \"codegen\":{{\"compiles\":{},\"vm_runs\":{},\"interp_runs\":{},\"tunes\":{}}}",
            self.requests_handled(),
            cache.hits,
            cache.misses,
            cache.collisions,
            cache.entries,
            serving.engine_runs,
            serving.cancelled_runs,
            serving.panicked_runs,
            serving.deadline_hits,
            serving.degraded,
            serving.coalesced,
            self.cold.worker_count(),
            self.cold.queue_depth(),
            cold.executed,
            cold.shed,
            self.warm_inline.load(Ordering::Relaxed),
            self.inflight.load(Ordering::SeqCst),
            self.is_shutting_down(),
            self.compiles.load(Ordering::Relaxed),
            self.vm_runs.load(Ordering::Relaxed),
            self.interp_runs.load(Ordering::Relaxed),
            self.tunes.load(Ordering::Relaxed),
        ));
        if let Some(store) = self.verifier.store_stats() {
            out.push_str(&format!(
                ",\"store\":{{\"entries\":{},\"loaded\":{},\"skipped\":{},\"truncated_bytes\":{},\
                 \"appends\":{},\"write_errors\":{},\"compactions\":{}}}",
                store.entries,
                store.loaded,
                store.skipped,
                store.truncated_bytes,
                store.appends,
                store.write_errors,
                store.compactions,
            ));
        }
        if let Some(counts) = self.verifier.fault_counts() {
            out.push_str(&format!(",\"faults_injected\":{}", counts.total()));
        }
        out.push('}');
        out
    }
}

impl Drop for Service {
    /// Dropping the service tears the worker pool down (close the intake,
    /// join the threads).  Callers wanting a *graceful* drain call
    /// [`Service::finish`] first — this is the backstop, not the protocol.
    fn drop(&mut self) {
        self.cold.close();
        self.cold.join();
    }
}

/// Default complete-tree height for `run` requests (2^6 - 1 = 63 nodes).
const DEFAULT_RUN_HEIGHT: usize = 6;

/// Default measurement-tree height for `tune` requests — taller than the
/// `run` default so VM timings dominate dispatch overhead, still well under
/// the [`MAX_RUN_HEIGHT`] allocation bound.
const DEFAULT_TUNE_HEIGHT: usize = 8;

/// Largest complete-tree height a `run` request may ask for (2^16 - 1 nodes
/// ≈ 0.5 MB per field column — bounded, so a hostile request cannot make the
/// shared service allocate without limit).
const MAX_RUN_HEIGHT: usize = 16;

/// Most compiled executors the service keeps cached; see
/// [`Service::executor_for`].
const MAX_CACHED_EXECUTORS: usize = 128;

/// Deepest brace/parenthesis nesting a request program may use.  The
/// Retreet parser (and the analyses behind it) recurse per nesting level
/// with no cap of their own, so a hostile `fn Main(n) {{{{…` line — one
/// byte per level, far under the request-size bound — would abort the
/// shared service by stack overflow.  Corpus programs nest under 10.
const MAX_PROGRAM_NESTING: usize = 256;

/// Maximum brace/paren nesting of a candidate source, scanned iteratively
/// (so the guard itself is O(n) with no recursion).
fn source_nesting(source: &str) -> usize {
    let mut depth = 0usize;
    let mut max = 0;
    for byte in source.bytes() {
        match byte {
            b'{' | b'(' => {
                depth += 1;
                max = max.max(depth);
            }
            b'}' | b')' => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    max
}

fn parse_query(
    kind: &str,
    request: &std::collections::BTreeMap<String, Value>,
) -> Result<ParsedQuery, String> {
    let program = |field: &str| -> Result<Program, String> {
        let source = request
            .get(field)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("`{kind}` requests need a string field `{field}`"))?;
        if source_nesting(source) > MAX_PROGRAM_NESTING {
            return Err(format!(
                "`{field}` nests deeper than {MAX_PROGRAM_NESTING} levels"
            ));
        }
        retreet_lang::parse_program(source).map_err(|err| format!("cannot parse `{field}`: {err}"))
    };
    match kind {
        "race" => Ok(ParsedQuery::Race(program("program")?)),
        "equivalence" => Ok(ParsedQuery::Equivalence(
            program("original")?,
            program("transformed")?,
        )),
        "validity" => {
            let text = request
                .get("formula")
                .and_then(Value::as_str)
                .ok_or("`validity` requests need a string field `formula`")?;
            let formula = formula::parse_formula(text)
                .map_err(|err| format!("cannot parse `formula`: {err}"))?;
            Ok(ParsedQuery::Validity(formula))
        }
        other => Err(format!("unknown request kind `{other}`")),
    }
}

/// Renders one batch response: verify every successfully parsed sub-query
/// through the coalescing batch fan-out, keep errors in their slots.
/// Shared by the warm (inline) and cold (worker) lanes.
fn batch_response(
    verifier: &Verifier,
    id: Option<&Value>,
    parsed: &[Result<ParsedQuery, String>],
) -> String {
    let queries: Vec<Query<'_>> = parsed
        .iter()
        .filter_map(|p| p.as_ref().ok())
        .map(ParsedQuery::as_query)
        .collect();
    let mut verdicts = verifier.verify_batch(&queries).into_iter();
    let results: Vec<String> = parsed
        .iter()
        .map(|entry| match entry {
            Ok(parsed) => {
                let result = verdicts.next().expect("one verdict per parsed query");
                verdict_response(None, parsed, &result)
            }
            Err(err) => error_response(None, "bad_request", err),
        })
        .collect();
    let mut out = String::from("{");
    push_id(&mut out, id);
    out.push_str("\"status\":\"ok\",\"kind\":\"batch\",\"results\":[");
    out.push_str(&results.join(","));
    out.push_str("]}");
    out
}

/// Parses the optional `arity` field of `run`/`tune` requests: the arity of
/// the complete tree the request is answered on.  Defaults to the program's
/// declared arity (binary complete trees for binary programs).  An explicit
/// arity outside `2..=MAX_ARITY`, or one that would leave some of the
/// program's child axes without a tree column, is a `bad_request`.
fn parse_arity(
    request: &std::collections::BTreeMap<String, Value>,
    program: &Program,
) -> Result<u8, String> {
    use retreet_lang::ast::MAX_ARITY;
    let requested = match request.get("arity") {
        None => return Ok(program.arity.max(2)),
        Some(Value::Number(a)) if *a >= 2.0 && *a <= MAX_ARITY as f64 && a.fract() == 0.0 => {
            *a as u8
        }
        Some(_) => {
            return Err(format!(
                "`arity` must be an integer between 2 and {MAX_ARITY}"
            ))
        }
    };
    if requested < program.arity {
        return Err(format!(
            "tree arity {requested} leaves child axes {}..{} of the arity-{} program out of range",
            requested,
            program.arity - 1,
            program.arity
        ));
    }
    Ok(requested)
}

fn push_id(out: &mut String, id: Option<&Value>) {
    if let Some(id) = id {
        out.push_str(&format!("\"id\":{id},"));
    }
}

/// One error line.  `code` is a stable machine-readable discriminator:
/// `bad_request`, `request_too_large`, `overloaded`, `shutting_down`,
/// `deadline_exceeded`, `unsupported` or `internal`.
fn error_response(id: Option<&Value>, code: &str, message: &str) -> String {
    let mut out = String::from("{");
    push_id(&mut out, id);
    out.push_str(&format!(
        "\"status\":\"error\",\"code\":\"{}\",\"error\":\"{}\"}}",
        code,
        json::escape(message)
    ));
    out
}

/// The error code a [`VerifyError`] surfaces as on the wire.
fn error_code(err: &VerifyError) -> &'static str {
    match err {
        VerifyError::InvalidProgram { .. } => "bad_request",
        VerifyError::NoApplicableEngine { .. } => "unsupported",
        VerifyError::DeadlineExceeded { .. } => "deadline_exceeded",
        VerifyError::PortfolioFailed { .. } | VerifyError::StoreFailed { .. } => "internal",
    }
}

fn verdict_response(
    id: Option<&Value>,
    parsed: &ParsedQuery,
    result: &Result<Verdict, VerifyError>,
) -> String {
    let verdict = match result {
        Ok(verdict) => verdict,
        Err(err) => return error_response(id, error_code(err), &err.to_string()),
    };
    let (word, detail) = describe_outcome(&verdict.outcome);
    let soundness = match verdict.soundness {
        Soundness::Unbounded => String::from("unbounded"),
        Soundness::BoundedUpTo { max_nodes } => format!("bounded:{max_nodes}"),
    };
    let mut out = String::from("{");
    push_id(&mut out, id);
    out.push_str(&format!(
        "\"status\":\"ok\",\"kind\":\"{}\",\"verdict\":\"{}\",\"positive\":{},\
         \"engine\":\"{}\",\"soundness\":\"{}\",\"cached\":{},\"coalesced\":{},\
         \"degraded\":{},\"elapsed_us\":{},\"trees_checked\":{},\"detail\":\"{}\"}}",
        parsed.kind(),
        word,
        verdict.is_positive(),
        verdict.engine.name(),
        soundness,
        verdict.cached,
        verdict.coalesced,
        verdict.degraded,
        verdict.elapsed.as_micros(),
        verdict.trees_checked(),
        json::escape(&detail),
    ));
    out
}

fn describe_outcome(outcome: &Outcome) -> (&'static str, String) {
    match outcome {
        Outcome::RaceFree { .. } => ("race-free", String::new()),
        Outcome::Race(witness) => (
            "race",
            format!(
                "race on {}.{} between {} and {}",
                witness.node, witness.field, witness.first, witness.second
            ),
        ),
        Outcome::Equivalent { .. } => ("equivalent", String::new()),
        Outcome::NotEquivalent(ce) => (
            "not-equivalent",
            format!("counterexample: {:?}", ce.disagreement),
        ),
        Outcome::Valid { .. } => ("valid", String::new()),
        Outcome::Invalid(model) => (
            "invalid",
            match model {
                Some(tree) => format!("falsified by a {}-node tree", tree.len()),
                None => String::from("refuted by the automata engine (no model attached)"),
            },
        ),
    }
}

/// Longest request line the service buffers.  The §5 corpus programs are a
/// few KB each; 8 MiB leaves two orders of magnitude of headroom while
/// keeping one newline-less client from growing an unbounded `String` and
/// taking the shared service down with it.
const MAX_REQUEST_LINE_BYTES: usize = 8 * 1024 * 1024;

/// One read request line, bounded and UTF-8-checked.
enum RequestLine {
    /// End of the input stream.
    Eof,
    /// A complete line (without the trailing newline / carriage return).
    Line(String),
    /// The line was not valid UTF-8 — a malformed request, not a dead
    /// connection.
    NotUtf8,
    /// The line exceeded [`MAX_REQUEST_LINE_BYTES`]; the remainder was
    /// discarded (without buffering) up to the next newline.
    TooLong,
}

/// Reads one newline-terminated line with a hard memory bound.
/// `BufRead::lines` has no cap — one hostile client streaming bytes
/// without a newline would OOM the process — so the service reads through
/// this instead.
fn read_request_line(input: &mut impl BufRead) -> std::io::Result<RequestLine> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let available = input.fill_buf()?;
        if available.is_empty() {
            if buf.is_empty() {
                return Ok(RequestLine::Eof);
            }
            return Ok(line_from(buf));
        }
        if let Some(newline) = available.iter().position(|&b| b == b'\n') {
            if buf.len() + newline > MAX_REQUEST_LINE_BYTES {
                input.consume(newline + 1);
                return Ok(RequestLine::TooLong);
            }
            buf.extend_from_slice(&available[..newline]);
            input.consume(newline + 1);
            return Ok(line_from(buf));
        }
        let chunk = available.len();
        buf.extend_from_slice(available);
        input.consume(chunk);
        if buf.len() > MAX_REQUEST_LINE_BYTES {
            drop(buf);
            // Resynchronize on the next newline, discarding as we go (no
            // buffering, so the hostile line costs no memory).
            loop {
                let available = input.fill_buf()?;
                if available.is_empty() {
                    return Ok(RequestLine::TooLong);
                }
                match available.iter().position(|&b| b == b'\n') {
                    Some(newline) => {
                        input.consume(newline + 1);
                        return Ok(RequestLine::TooLong);
                    }
                    None => {
                        let chunk = available.len();
                        input.consume(chunk);
                    }
                }
            }
        }
    }
}

fn line_from(mut buf: Vec<u8>) -> RequestLine {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(line) => RequestLine::Line(line),
        Err(_) => RequestLine::NotUtf8,
    }
}

/// Decrements the service's in-flight gauge on drop, so the drain in
/// [`Service::finish`] sees a request as in-flight until its response is
/// flushed (or its connection provably died) — never longer.
struct InflightGuard<'a>(&'a Service);

impl<'a> InflightGuard<'a> {
    fn enter(service: &'a Service) -> Self {
        service.inflight.fetch_add(1, Ordering::SeqCst);
        InflightGuard(service)
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Serves NDJSON requests from `input` to `output` until EOF or graceful
/// shutdown — the stdin mode of the `retreet-serve` binary, the TCP
/// per-connection loop, and the harness tests' entry point.  Malformed
/// lines (invalid UTF-8, over the size bound) are answered with an error
/// response and the loop keeps serving; real I/O errors end it.
pub fn serve_lines(
    service: &Service,
    mut input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<()> {
    loop {
        let response = match read_request_line(&mut input)? {
            RequestLine::Eof => return Ok(()),
            RequestLine::Line(line) if line.trim().is_empty() => continue,
            RequestLine::Line(line) => {
                let guard = InflightGuard::enter(service);
                let response = service.handle_line(&line);
                write_response(service, &mut output, &response)?;
                drop(guard);
                // A shutdown request was answered (here or on a sibling
                // connection): this loop's work is done.
                if service.is_shutting_down() {
                    return Ok(());
                }
                continue;
            }
            RequestLine::NotUtf8 => {
                error_response(None, "bad_request", "request line is not valid UTF-8")
            }
            RequestLine::TooLong => error_response(
                None,
                "request_too_large",
                &format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes and was dropped"),
            ),
        };
        write_response(service, &mut output, &response)?;
        if service.is_shutting_down() {
            return Ok(());
        }
    }
}

/// Writes one response line, rolling the connection-drop fault site first:
/// an injected drop writes a *partial* line and kills this connection (the
/// caller's loop ends with an error; the shared service keeps serving).
fn write_response(
    service: &Service,
    output: &mut impl Write,
    response: &str,
) -> std::io::Result<()> {
    if let Some(plan) = &service.faults {
        if plan.roll(FaultSite::ConnectionWrite) == Some(InjectedFault::ConnectionDrop) {
            let half = response.len() / 2;
            output.write_all(&response.as_bytes()[..half])?;
            let _ = output.flush();
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "injected connection drop",
            ));
        }
    }
    output.write_all(response.as_bytes())?;
    output.write_all(b"\n")?;
    output.flush()
}

/// How long the accept loop sleeps when no connection is pending (it polls
/// so it can observe shutdown).
const ACCEPT_POLL: Duration = Duration::from_millis(15);

/// Accepts TCP connections — one handler thread per client, all sharing
/// `service` (one cache, one in-flight table, one cold lane) — until the
/// service begins shutting down, then drains via [`Service::finish`] and
/// returns.  At most [`ServeOptions::max_connections`] clients are served
/// simultaneously; an excess client is answered a single `overloaded`
/// error line and disconnected at accept time, before it can submit work.
pub fn serve_tcp(service: Arc<Service>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let open = Arc::new(AtomicUsize::new(0));
    loop {
        if service.is_shutting_down() {
            service.finish();
            return Ok(());
        }
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(err) => {
                // The listener died: still drain what was accepted.
                service.finish();
                return Err(err);
            }
        };
        // The listener's nonblocking flag is inherited; handlers want
        // blocking reads.
        stream.set_nonblocking(false)?;
        if open.load(Ordering::SeqCst) >= service.max_connections {
            let mut stream = stream;
            let refusal =
                error_response(None, "overloaded", "connection limit reached; retry later");
            let _ = stream.write_all(refusal.as_bytes());
            let _ = stream.write_all(b"\n");
            continue;
        }
        open.fetch_add(1, Ordering::SeqCst);
        let service = Arc::clone(&service);
        let open = Arc::clone(&open);
        std::thread::spawn(move || {
            if let Err(err) = serve_connection(&service, &stream) {
                eprintln!("retreet-serve: connection {peer} closed: {err}");
            }
            open.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

fn serve_connection(service: &Service, stream: &TcpStream) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    serve_lines(service, reader, stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options() -> ServeOptions {
        ServeOptions {
            race_nodes: 3,
            equiv_nodes: 3,
            validity_nodes: 3,
            valuations: 1,
            parallel: false,
            cache_capacity: 1024,
            ..ServeOptions::default()
        }
    }

    fn quick_service() -> Service {
        Service::new(&quick_options())
    }

    fn field(response: &str, name: &str) -> Value {
        let parsed = json::parse(response).expect("response is valid JSON");
        parsed.as_object().unwrap()[name].clone()
    }

    #[test]
    fn race_requests_round_trip() {
        let service = quick_service();
        let program = json::escape(corpus::SIZE_COUNTING_PARALLEL_SRC);
        let request = format!(r#"{{"id": 1, "kind": "race", "program": "{program}"}}"#);
        let response = service.handle_line(&request);
        assert_eq!(field(&response, "status").as_str(), Some("ok"));
        assert_eq!(field(&response, "verdict").as_str(), Some("race-free"));
        assert_eq!(field(&response, "id"), Value::Number(1.0));
        assert_eq!(field(&response, "cached"), Value::Bool(false));
        // The identical query again: served from the cache.
        let response = service.handle_line(&request);
        assert_eq!(field(&response, "cached"), Value::Bool(true));
    }

    #[test]
    fn equivalence_and_validity_requests_round_trip() {
        let service = quick_service();
        let original = json::escape(corpus::SIZE_COUNTING_SEQUENTIAL_SRC);
        let transformed = json::escape(corpus::SIZE_COUNTING_FUSED_SRC);
        let request = format!(
            r#"{{"kind": "equivalence", "original": "{original}", "transformed": "{transformed}"}}"#
        );
        let response = service.handle_line(&request);
        assert_eq!(field(&response, "verdict").as_str(), Some("equivalent"));

        let response =
            service.handle_line(r#"{"kind": "validity", "formula": "(exists x (root x))"}"#);
        assert_eq!(field(&response, "verdict").as_str(), Some("valid"));
        assert_eq!(field(&response, "engine").as_str(), Some("automata"));
        assert_eq!(field(&response, "soundness").as_str(), Some("unbounded"));
    }

    #[test]
    fn malformed_requests_are_errors_not_crashes() {
        let service = quick_service();
        let deep_program = format!(
            r#"{{"kind": "race", "program": "fn Main(n) {}"}}"#,
            "{".repeat(500_000)
        );
        for request in [
            "not json at all",
            "[1, 2, 3]",
            r#"{"kind": "unknown"}"#,
            r#"{"kind": "race"}"#,
            r#"{"kind": "race", "program": "fn !! syntax error"}"#,
            r#"{"kind": "validity", "formula": "(unknown x)"}"#,
            r#"{"kind": "batch"}"#,
            // One byte per nesting level: must be rejected by the nesting
            // guard before the recursive-descent program parser sees it.
            deep_program.as_str(),
        ] {
            let response = service.handle_line(request);
            assert_eq!(
                field(&response, "status").as_str(),
                Some("error"),
                "request {request:?} must answer an error"
            );
        }
        // The service keeps answering after errors.
        let response =
            service.handle_line(r#"{"kind": "validity", "formula": "(exists x (root x))"}"#);
        assert_eq!(field(&response, "status").as_str(), Some("ok"));
    }

    #[test]
    fn batch_requests_answer_in_input_order_with_errors_in_place() {
        let service = quick_service();
        let racy = json::escape(corpus::CYCLETREE_PARALLEL_SRC);
        let free = json::escape(corpus::SIZE_COUNTING_PARALLEL_SRC);
        let request = format!(
            r#"{{"id": "b1", "kind": "batch", "queries": [
                {{"kind": "race", "program": "{racy}"}},
                {{"kind": "race", "program": "not a program"}},
                {{"kind": "race", "program": "{free}"}},
                {{"kind": "validity", "formula": "(exists x (root x))"}}
            ]}}"#
        );
        let response = service.handle_line(&request);
        let parsed = json::parse(&response).unwrap();
        let object = parsed.as_object().unwrap();
        assert_eq!(object["status"].as_str(), Some("ok"));
        let results = object["results"].as_array().unwrap();
        assert_eq!(results.len(), 4);
        let verdict =
            |i: usize, key: &str| -> Value { results[i].as_object().unwrap()[key].clone() };
        assert_eq!(verdict(0, "verdict").as_str(), Some("race"));
        assert_eq!(verdict(1, "status").as_str(), Some("error"));
        assert_eq!(verdict(2, "verdict").as_str(), Some("race-free"));
        assert_eq!(verdict(3, "verdict").as_str(), Some("valid"));
    }

    #[test]
    fn run_requests_execute_on_the_vm_tier_and_count_in_stats() {
        let service = quick_service();
        let program = json::escape(corpus::SIZE_COUNTING_SEQUENTIAL_SRC);
        let request = format!(r#"{{"id": 4, "kind": "run", "program": "{program}", "height": 5}}"#);
        let response = service.handle_line(&request);
        assert_eq!(
            field(&response, "status").as_str(),
            Some("ok"),
            "{response}"
        );
        assert_eq!(field(&response, "tier").as_str(), Some("vm"));
        // A complete height-5 tree: layers 1/3/5 hold 1+4+16 = 21 nodes,
        // layers 2/4 hold 2+8 = 10.
        let returns = field(&response, "returns");
        let returns = returns.as_array().unwrap();
        assert_eq!(returns[0], Value::Number(21.0));
        assert_eq!(returns[1], Value::Number(10.0));
        // Same program again: compiled once, run twice.
        service.handle_line(&request);
        let stats = service.handle_line(r#"{"kind": "stats"}"#);
        let parsed = json::parse(&stats).unwrap();
        let codegen = parsed.as_object().unwrap()["codegen"].as_object().unwrap();
        assert_eq!(codegen["compiles"], Value::Number(1.0));
        assert_eq!(codegen["vm_runs"], Value::Number(2.0));
        assert_eq!(codegen["interp_runs"], Value::Number(0.0));
    }

    #[test]
    fn run_requests_report_certified_lowerings_and_bound_height() {
        let service = quick_service();
        let program = json::escape(corpus::TREE_MUTATION_ORIGINAL_SRC);
        let request = format!(r#"{{"kind": "run", "program": "{program}"}}"#);
        let response = service.handle_line(&request);
        assert_eq!(
            field(&response, "status").as_str(),
            Some("ok"),
            "{response}"
        );
        let lowered = field(&response, "lowered");
        assert!(
            !lowered.as_array().unwrap().is_empty(),
            "tree_mutation traversals should certify for lowering: {response}"
        );
        // Height beyond the cap is refused, the service stays up.
        let request = format!(r#"{{"kind": "run", "program": "{program}", "height": 40}}"#);
        let response = service.handle_line(&request);
        assert_eq!(field(&response, "status").as_str(), Some("error"));
    }

    #[test]
    fn run_requests_accept_an_arity_field_and_default_to_the_programs() {
        let service = quick_service();
        // A ternary program runs on a ternary complete tree by default: a
        // height-3 complete ternary tree has 1 + 3 + 9 = 13 nodes, and the
        // ternary sum over `v` seeded to zero is 0.
        let ternary = json::escape(corpus::TERNARY_SUM_PARALLEL_SRC);
        let request = format!(r#"{{"kind": "run", "program": "{ternary}", "height": 3}}"#);
        let response = service.handle_line(&request);
        assert_eq!(
            field(&response, "status").as_str(),
            Some("ok"),
            "{response}"
        );
        assert_eq!(field(&response, "nodes"), Value::Number(13.0));
        // A binary program honours an explicit wider arity: the extra axes
        // exist in the tree but the program never descends them, so only
        // the binary skeleton of the arity-3 tree is visited.
        let binary = json::escape(corpus::SIZE_COUNTING_SEQUENTIAL_SRC);
        let request =
            format!(r#"{{"kind": "run", "program": "{binary}", "height": 3, "arity": 3}}"#);
        let response = service.handle_line(&request);
        assert_eq!(
            field(&response, "status").as_str(),
            Some("ok"),
            "{response}"
        );
        assert_eq!(field(&response, "nodes"), Value::Number(13.0));
    }

    #[test]
    fn out_of_range_arities_are_typed_bad_requests() {
        let service = quick_service();
        let ternary = json::escape(corpus::TERNARY_SUM_PARALLEL_SRC);
        let binary = json::escape(corpus::SIZE_COUNTING_SEQUENTIAL_SRC);
        for request in [
            // Below the minimum, above MAX_ARITY, non-integer.
            format!(r#"{{"kind": "run", "program": "{binary}", "arity": 1}}"#),
            format!(r#"{{"kind": "run", "program": "{binary}", "arity": 9}}"#),
            format!(r#"{{"kind": "run", "program": "{binary}", "arity": 2.5}}"#),
            // A ternary program on a binary tree would strand axis 2.
            format!(r#"{{"kind": "run", "program": "{ternary}", "arity": 2}}"#),
            format!(r#"{{"kind": "tune", "program": "{binary}", "arity": 0}}"#),
        ] {
            let response = service.handle_line(&request);
            assert_eq!(
                field(&response, "status").as_str(),
                Some("error"),
                "{response}"
            );
            assert_eq!(
                field(&response, "code").as_str(),
                Some("bad_request"),
                "{response}"
            );
        }
    }

    #[test]
    fn tune_requests_answer_winner_certificate_and_candidate_table() {
        let service = quick_service();
        let program = json::escape(corpus::SIZE_COUNTING_SEQUENTIAL_SRC);
        let request =
            format!(r#"{{"id": 7, "kind": "tune", "program": "{program}", "height": 5}}"#);
        let response = service.handle_line(&request);
        assert_eq!(
            field(&response, "status").as_str(),
            Some("ok"),
            "{response}"
        );
        assert_eq!(field(&response, "cached"), Value::Bool(false));
        let winner = field(&response, "winner");
        let winner = winner.as_object().unwrap();
        let certificate = winner["certificate"].as_object().unwrap();
        assert_eq!(certificate["kind"].as_str(), Some("equivalence"));
        assert!(certificate["engine"].as_str().is_some());
        assert!(certificate["soundness"].as_str().is_some());
        let candidates = field(&response, "candidates");
        assert!(
            !candidates.as_array().unwrap().is_empty(),
            "the candidate table must be reported: {response}"
        );
        // The identical request again answers from the tune cache.
        let response = service.handle_line(&request);
        assert_eq!(field(&response, "cached"), Value::Bool(true));
        let stats = service.handle_line(r#"{"kind": "stats"}"#);
        let parsed = json::parse(&stats).unwrap();
        let codegen = parsed.as_object().unwrap()["codegen"].as_object().unwrap();
        assert_eq!(codegen["tunes"], Value::Number(1.0));
    }

    #[test]
    fn tune_requests_refuse_untunable_programs_and_stay_up() {
        let service = quick_service();
        // An already-fused single-pass Main has no fusable run to tune.
        let program = json::escape(corpus::SIZE_COUNTING_FUSED_SRC);
        let request = format!(r#"{{"kind": "tune", "program": "{program}", "height": 4}}"#);
        let response = service.handle_line(&request);
        assert_eq!(field(&response, "status").as_str(), Some("error"));
        assert_eq!(field(&response, "code").as_str(), Some("untunable"));
        // The service keeps answering.
        let response = service.handle_line(r#"{"kind": "stats"}"#);
        assert_eq!(field(&response, "status").as_str(), Some("ok"));
    }

    #[test]
    fn warm_start_preloads_and_stats_report_it() {
        let service = quick_service();
        let preloaded = service.warm_start();
        assert!(preloaded >= 10, "corpus + fusion pairs, got {preloaded}");
        let response = service.handle_line(r#"{"id": 9, "kind": "stats"}"#);
        let parsed = json::parse(&response).unwrap();
        let object = parsed.as_object().unwrap();
        assert_eq!(object["status"].as_str(), Some("ok"));
        let cache = object["cache"].as_object().unwrap();
        assert_eq!(cache["entries"], Value::Number(preloaded as f64));
        // A corpus query after warm start is a cache hit.
        let program = json::escape(corpus::CYCLETREE_PARALLEL_SRC);
        let request = format!(r#"{{"kind": "race", "program": "{program}"}}"#);
        let response = service.handle_line(&request);
        assert_eq!(field(&response, "cached"), Value::Bool(true));
    }

    #[test]
    fn non_utf8_lines_answer_an_error_and_the_service_keeps_running() {
        let service = quick_service();
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"\xff\xfe garbage\n");
        input.extend_from_slice(b"{\"id\": 1, \"kind\": \"stats\"}\n");
        let mut output = Vec::new();
        serve_lines(&service, &input[..], &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(field(lines[0], "status").as_str(), Some("error"));
        assert_eq!(field(lines[1], "status").as_str(), Some("ok"));
    }

    #[test]
    fn oversized_lines_answer_an_error_without_buffering_the_line() {
        let service = quick_service();
        let mut input: Vec<u8> = Vec::with_capacity(MAX_REQUEST_LINE_BYTES + 64);
        input.resize(MAX_REQUEST_LINE_BYTES + 10, b'[');
        input.push(b'\n');
        input.extend_from_slice(b"{\"id\": 1, \"kind\": \"stats\"}\n");
        let mut output = Vec::new();
        serve_lines(&service, &input[..], &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(field(lines[0], "status").as_str(), Some("error"));
        assert_eq!(
            field(lines[0], "code").as_str(),
            Some("request_too_large"),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("exceeds"), "{}", lines[0]);
        assert_eq!(field(lines[1], "status").as_str(), Some("ok"));
    }

    #[test]
    fn two_lane_scheduler_routes_cold_to_workers_and_warm_inline() {
        let service = quick_service();
        let program = json::escape(corpus::SIZE_COUNTING_PARALLEL_SRC);
        let request = format!(r#"{{"kind": "race", "program": "{program}"}}"#);
        // Cold: through the worker pool.
        let response = service.handle_line(&request);
        assert_eq!(field(&response, "status").as_str(), Some("ok"));
        assert_eq!(field(&response, "degraded"), Value::Bool(false));
        // Warm: inline on the connection thread.
        let response = service.handle_line(&request);
        assert_eq!(field(&response, "cached"), Value::Bool(true));
        let stats = service.handle_line(r#"{"kind": "stats"}"#);
        let parsed = json::parse(&stats).unwrap();
        let sched = parsed.as_object().unwrap()["sched"].as_object().unwrap();
        assert_eq!(sched["cold_executed"], Value::Number(1.0));
        assert_eq!(sched["warm_inline"], Value::Number(1.0));
        assert_eq!(sched["shed"], Value::Number(0.0));
    }

    #[test]
    fn full_cold_queues_shed_with_a_typed_overloaded_error() {
        // One worker stalled 400 ms per engine run, one queue slot: three
        // concurrent cold queries cannot all be admitted — at least one is
        // shed with `overloaded`, and every admitted one still answers.
        let service = Arc::new(Service::new(&ServeOptions {
            workers: 1,
            cold_queue: 1,
            faults: Some(Arc::new(
                FaultPlan::builder(11).engine_stall(1.0, 400).build(),
            )),
            ..quick_options()
        }));
        let programs = [
            corpus::SIZE_COUNTING_PARALLEL_SRC,
            corpus::CYCLETREE_PARALLEL_SRC,
            corpus::TREE_MUTATION_ORIGINAL_SRC,
        ];
        let responses: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = programs
                .iter()
                .map(|source| {
                    let service = Arc::clone(&service);
                    let request = format!(
                        r#"{{"kind": "race", "program": "{}"}}"#,
                        json::escape(source)
                    );
                    scope.spawn(move || service.handle_line(&request))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let shed = responses
            .iter()
            .filter(|r| r.contains(r#""code":"overloaded""#))
            .count();
        let answered = responses
            .iter()
            .filter(|r| field(r, "status").as_str() == Some("ok"))
            .count();
        assert!(
            shed >= 1,
            "queue of 1 cannot hold two waiters: {responses:?}"
        );
        assert!(
            answered >= 1,
            "admitted queries still answer: {responses:?}"
        );
        assert_eq!(shed + answered, 3, "{responses:?}");
        let stats = service.handle_line(r#"{"kind": "stats"}"#);
        let parsed = json::parse(&stats).unwrap();
        let sched = parsed.as_object().unwrap()["sched"].as_object().unwrap();
        assert_eq!(sched["shed"], Value::Number(shed as f64));
    }

    #[test]
    fn shutdown_refuses_new_work_answers_stats_and_drains() {
        let service = quick_service();
        let response = service.handle_line(r#"{"id": 7, "kind": "shutdown"}"#);
        assert_eq!(field(&response, "status").as_str(), Some("ok"));
        assert_eq!(field(&response, "draining"), Value::Bool(true));
        assert!(service.is_shutting_down());
        // New verification work is refused with the typed code…
        let program = json::escape(corpus::SIZE_COUNTING_PARALLEL_SRC);
        let refused =
            service.handle_line(&format!(r#"{{"kind": "race", "program": "{program}"}}"#));
        assert_eq!(field(&refused, "code").as_str(), Some("shutting_down"));
        // …but stats stay observable during the drain.
        let stats = service.handle_line(r#"{"kind": "stats"}"#);
        assert_eq!(field(&stats, "status").as_str(), Some("ok"));
        assert!(service.finish(), "nothing in flight: drain is clean");
    }

    #[test]
    fn serve_lines_speaks_ndjson_until_eof() {
        let service = quick_service();
        let input = b"{\"id\": 1, \"kind\": \"stats\"}\n\n{\"id\": 2, \"kind\": \"stats\"}\n";
        let mut output = Vec::new();
        serve_lines(&service, &input[..], &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "blank lines are skipped");
        assert_eq!(field(lines[0], "id"), Value::Number(1.0));
        assert_eq!(field(lines[1], "id"), Value::Number(2.0));
    }
}
