//! Offline, in-tree substitute for the subset of [proptest] this workspace
//! uses.
//!
//! The container has no registry access, so the real proptest cannot be
//! vendored.  This shim keeps the property-test sources unchanged — the
//! `proptest!` macro with `arg in strategy` bindings, `any::<T>()`, integer
//! range strategies, tuple strategies, `proptest::collection::vec`, and the
//! `prop_assert*` macros — and runs each property over a deterministic
//! pseudo-random sample (default 32 cases, `PROPTEST_CASES` overrides).
//! There is no shrinking: a failing case panics with the sampled inputs via
//! the ordinary assert messages, which is enough for a CI signal.
//!
//! [proptest]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

/// Deterministic random number generation for test-case sampling.
pub mod test_runner {
    /// How many cases each property runs (override with `PROPTEST_CASES`).
    pub fn case_count() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32)
    }

    /// A splitmix64 generator, seeded deterministically per test name so
    /// failures are reproducible run over run.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
            for byte in name.bytes() {
                seed ^= u64::from(byte);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Strategies: how to sample a value of some type.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of sampled values (the shim's take on proptest's trait of
    /// the same name; no shrinking).
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;
        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($($name:ident/$idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

    /// Strategy for "any value of `T`" — see [`crate::arbitrary::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Types that can be sampled unconstrained.
pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// A type with a canonical unconstrained sampling strategy.
    pub trait Arbitrary {
        /// Samples an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The `any::<T>()` entry point of the real proptest.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy producing vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Samples `Vec`s whose elements come from `element` and whose length is
    /// drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `arg in strategy` binding is sampled per
/// case, and the body runs for every case.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..cases {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng); )*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(-10i64..10), &mut rng);
            assert!((-10..10).contains(&v));
            let u = Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = TestRng::deterministic("vec_strategy_respects_length_range");
        for _ in 0..200 {
            let v = Strategy::sample(&crate::collection::vec((-5i64..5, 0i64..3), 1..6), &mut rng);
            assert!((1..6).contains(&v.len()));
            for (a, b) in v {
                assert!((-5..5).contains(&a));
                assert!((0..3).contains(&b));
            }
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        /// The macro itself works end to end.
        #[test]
        fn macro_smoke(x in 0i64..100, y in any::<u64>()) {
            prop_assert!((0..100).contains(&x));
            prop_assert_eq!(y, y);
            prop_assert_ne!(x, 100);
        }
    }
}
