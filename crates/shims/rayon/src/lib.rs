//! Offline, in-tree substitute for the subset of [rayon] this workspace
//! uses: [`join`], [`scope`] and [`current_num_threads`].
//!
//! The container this reproduction builds in has no registry access, so the
//! real rayon cannot be vendored.  This shim provides the same semantics
//! (fork–join parallelism over OS threads) with a much simpler scheduler: a
//! global token counter bounds the number of live worker threads to the
//! machine's parallelism, and once the tokens are exhausted every further
//! `join`/`spawn` degrades gracefully to sequential execution in the calling
//! thread.  That is exactly the behaviour the traversal schedules and the
//! verifier portfolio rely on (correctness never depends on real
//! concurrency, only speed does).
//!
//! [rayon]: https://crates.io/crates/rayon

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Number of threads the shim is willing to keep busy (the machine's
/// available parallelism).
///
/// Cached after the first call: `std::thread::available_parallelism` reads
/// procfs/cgroupfs on Linux (tens of microseconds), and this function sits
/// on the `join`/`spawn` hot path.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Tries to reserve one worker token; returns whether the reservation
/// succeeded.  Tokens bound the total number of extra OS threads alive at
/// any moment, across nested joins and scopes.
fn try_reserve_worker() -> bool {
    let limit = current_num_threads();
    let mut current = ACTIVE_WORKERS.load(Ordering::Relaxed);
    loop {
        if current + 1 >= limit {
            return false;
        }
        match ACTIVE_WORKERS.compare_exchange_weak(
            current,
            current + 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return true,
            Err(observed) => current = observed,
        }
    }
}

/// Releases its worker token when dropped — including on unwind, so a
/// panicking task cannot leak the token and silently degrade the whole
/// process toward sequential execution.
struct WorkerToken;

impl Drop for WorkerToken {
    fn drop(&mut self) {
        ACTIVE_WORKERS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs the two closures, potentially in parallel, and returns both results.
///
/// Mirrors `rayon::join`: `b` is offloaded to another thread when a worker
/// token is available, otherwise both closures run sequentially in the
/// calling thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if try_reserve_worker() {
        std::thread::scope(|s| {
            let handle = s.spawn(move || {
                let _token = WorkerToken;
                b()
            });
            let ra = a();
            let rb = handle.join().expect("rayon-shim: joined task panicked");
            (ra, rb)
        })
    } else {
        (a(), b())
    }
}

/// Spawns a fire-and-forget task, mirroring `rayon::spawn`: the task runs
/// on another thread when a worker token is available and inline in the
/// calling thread otherwise.  There is no join handle; synchronize through
/// channels or atomics.
pub fn spawn<F>(f: F)
where
    F: FnOnce() + Send + 'static,
{
    if try_reserve_worker() {
        std::thread::spawn(move || {
            let _token = WorkerToken;
            f();
        });
    } else {
        f();
    }
}

/// A fork–join scope: tasks spawned on it may run in parallel and are all
/// joined before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task onto the scope.  Falls back to running the task
    /// immediately in the calling thread when no worker token is available.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        if try_reserve_worker() {
            let inner = self.inner;
            inner.spawn(move || {
                let _token = WorkerToken;
                f(&Scope { inner });
            });
        } else {
            f(self);
        }
    }
}

/// Creates a fork–join scope, mirroring `rayon::scope`: every task spawned
/// inside has completed by the time `scope` returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_joins_do_not_deadlock_or_leak_tokens() {
        fn sum(depth: u32) -> u64 {
            if depth == 0 {
                return 1;
            }
            let (l, r) = join(|| sum(depth - 1), || sum(depth - 1));
            l + r
        }
        assert_eq!(sum(10), 1024);
        assert_eq!(ACTIVE_WORKERS.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let counter = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 32);
        assert_eq!(ACTIVE_WORKERS.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
