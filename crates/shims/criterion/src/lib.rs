//! Offline, in-tree substitute for the subset of the [criterion] benchmark
//! harness this workspace uses.
//!
//! The container has no registry access, so the real criterion cannot be
//! vendored.  This shim keeps the bench sources unchanged — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — and
//! implements a simple but honest measurement loop: each benchmark is warmed
//! up once, then timed over `sample_size` samples, and the per-iteration
//! mean, minimum and maximum are printed in a criterion-like format.
//!
//! CLI arguments (criterion filters, `--bench`, `--save-baseline`, …) are
//! accepted and ignored except for a positional substring filter, which
//! selects matching benchmark ids just like the real harness.
//!
//! [criterion]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A benchmark identifier made of a function name and a parameter, printed
/// as `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id with a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Mean/min/max per-iteration time of the last `iter` call.
    last: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `samples` timed calls.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine()); // warm-up
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
            max = max.max(elapsed);
        }
        let mean = total / self.samples as u32;
        self.last = Some((mean, min, max));
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// The top-level harness: owns configuration and the benchmark filter.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Positional (non-flag) CLI argument acts as a substring filter on
        // benchmark ids, like the real harness; flags are ignored.
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        Criterion {
            filter,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the default number of samples for benches in this harness.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.default_sample_size = samples.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let samples = self.default_sample_size;
        self.run_one(id, samples, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter
            .as_deref()
            .is_none_or(|needle| id.contains(needle))
    }

    fn run_one(&self, id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
        if !self.matches(id) {
            return;
        }
        let mut bencher = Bencher {
            samples,
            last: None,
        };
        f(&mut bencher);
        match bencher.last {
            Some((mean, min, max)) => println!(
                "{id:<60} time: [{} {} {}]",
                format_duration(min),
                format_duration(mean),
                format_duration(max),
            ),
            None => println!("{id:<60} (no measurement)"),
        }
    }
}

/// A group of related benchmarks sharing a name prefix and a sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benches in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = Some(samples.max(1));
        self
    }

    fn effective_samples(&self) -> usize {
        self.samples.unwrap_or(self.criterion.default_sample_size)
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.effective_samples(), f);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&full, self.effective_samples(), |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut criterion = Criterion::default().sample_size(3);
        let mut ran = 0usize;
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        // warm-up + 2 samples
        assert_eq!(ran, 3);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("fused", 100).to_string(), "fused/100");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn duration_formatting_picks_sensible_units() {
        assert!(format_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(10)).ends_with("ms"));
    }
}
