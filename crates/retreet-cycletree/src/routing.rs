//! Router-data computation (`ComputeRouting`, Fig. 9) and the point-to-point
//! routing algorithm that consumes it.
//!
//! After the cyclic numbering, every node stores the minimum and maximum
//! cycle positions found in its subtree (`min`/`max`) and in each child
//! subtree (`lmin`/`lmax`, `rmin`/`rmax`).  A message addressed to cycle
//! position `t` is routed with purely local decisions: deliver if `t` is this
//! node's position, descend into the child whose interval contains `t`, or
//! climb to the parent when `t` lies outside the subtree — the routing scheme
//! the cycletree papers rely on.

use retreet_runtime::tree::TreeNode;

use crate::numbering::CycleNode;

/// Applies the per-node block of `ComputeRouting` (Fig. 9): assumes both
/// children already carry correct router data.
pub fn update_router_data(node: &mut TreeNode<CycleNode>) {
    let (left, right) = (node.left.as_deref(), node.right.as_deref());
    let value = &mut node.value;
    value.min = value.num;
    value.max = value.num;
    if let Some(left) = left {
        value.lmin = left.value.min;
        value.lmax = left.value.max;
        value.min = value.min.min(value.lmin);
        value.max = value.max.max(value.lmax);
    }
    if let Some(right) = right {
        value.rmin = right.value.min;
        value.rmax = right.value.max;
        value.min = value.min.min(value.rmin);
        value.max = value.max.max(value.rmax);
    }
}

/// The standalone `ComputeRouting` traversal (post-order over the tree).
///
/// Implemented as an explicit recursion (rather than a
/// `retreet_runtime::visit` visitor) because the per-node block needs the
/// children's freshly-computed router data, i.e. whole-child access rather
/// than payload-only access.
pub fn compute_routing(tree: &mut TreeNode<CycleNode>) {
    fn go(node: &mut TreeNode<CycleNode>) {
        if let Some(left) = node.left.as_deref_mut() {
            go(left);
        }
        if let Some(right) = node.right.as_deref_mut() {
            go(right);
        }
        update_router_data(node);
    }
    go(tree);
}

/// The local routing decision at one node for a message addressed to cycle
/// position `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextHop {
    /// The message is for this node.
    Deliver,
    /// Forward into the left subtree.
    Left,
    /// Forward into the right subtree.
    Right,
    /// Forward to the parent (the target is outside this subtree).
    Up,
}

/// Computes the local next-hop decision from a node's router data.
pub fn route_next_hop(node: &CycleNode, has_left: bool, has_right: bool, target: i64) -> NextHop {
    if target == node.num {
        return NextHop::Deliver;
    }
    if has_left && target >= node.lmin && target <= node.lmax {
        return NextHop::Left;
    }
    if has_right && target >= node.rmin && target <= node.rmax {
        return NextHop::Right;
    }
    NextHop::Up
}

/// Routes a message from cycle position `from` to cycle position `to`,
/// returning the sequence of cycle positions visited (inclusive of both
/// endpoints).  Panics if either endpoint does not exist in the tree.
pub fn route_path(root: &TreeNode<CycleNode>, from: i64, to: i64) -> Vec<i64> {
    // Locate the source node, remembering the ancestor chain.
    let mut ancestors: Vec<&TreeNode<CycleNode>> = Vec::new();
    let mut current = root;
    loop {
        if current.value.num == from {
            break;
        }
        let has_left = current.left.is_some();
        let has_right = current.right.is_some();
        match route_next_hop(&current.value, has_left, has_right, from) {
            NextHop::Left => {
                ancestors.push(current);
                current = current
                    .left
                    .as_deref()
                    .expect("router data promised a left child");
            }
            NextHop::Right => {
                ancestors.push(current);
                current = current
                    .right
                    .as_deref()
                    .expect("router data promised a right child");
            }
            NextHop::Deliver => break,
            NextHop::Up => panic!("source position {from} does not exist in the tree"),
        }
    }
    // Walk toward the destination using local decisions only.
    let mut path = vec![current.value.num];
    let mut steps = 0usize;
    loop {
        if current.value.num == to {
            return path;
        }
        steps += 1;
        assert!(
            steps <= 4 * root.len() + 4,
            "routing did not converge; router data is inconsistent"
        );
        let has_left = current.left.is_some();
        let has_right = current.right.is_some();
        match route_next_hop(&current.value, has_left, has_right, to) {
            NextHop::Deliver => return path,
            NextHop::Left => {
                ancestors.push(current);
                current = current.left.as_deref().expect("left child");
            }
            NextHop::Right => {
                ancestors.push(current);
                current = current.right.as_deref().expect("right child");
            }
            NextHop::Up => {
                current = ancestors
                    .pop()
                    .unwrap_or_else(|| panic!("destination position {to} does not exist"));
            }
        }
        path.push(current.value.num);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numbering::{complete_cycletree, number_cycletree, random_cycletree};

    fn prepared(height: usize) -> TreeNode<CycleNode> {
        let mut tree = complete_cycletree(height);
        number_cycletree(&mut tree);
        compute_routing(&mut tree);
        tree
    }

    #[test]
    fn router_data_brackets_the_subtree() {
        let tree = prepared(4);
        fn check(node: &TreeNode<CycleNode>) {
            let nums: Vec<i64> = node.preorder().into_iter().map(|n| n.num).collect();
            assert_eq!(node.value.min, *nums.iter().min().unwrap());
            assert_eq!(node.value.max, *nums.iter().max().unwrap());
            if let Some(left) = node.left.as_deref() {
                assert_eq!(node.value.lmin, left.value.min);
                assert_eq!(node.value.lmax, left.value.max);
                check(left);
            }
            if let Some(right) = node.right.as_deref() {
                assert_eq!(node.value.rmin, right.value.min);
                assert_eq!(node.value.rmax, right.value.max);
                check(right);
            }
        }
        check(&tree);
    }

    #[test]
    fn next_hop_decisions() {
        let tree = prepared(3);
        let root = &tree.value;
        assert_eq!(route_next_hop(root, true, true, root.num), NextHop::Deliver);
        assert_eq!(route_next_hop(root, true, true, root.lmin), NextHop::Left);
        assert_eq!(route_next_hop(root, true, true, root.rmax), NextHop::Right);
        // A target outside the whole tree goes up.
        assert_eq!(route_next_hop(root, true, true, 10_000), NextHop::Up);
    }

    #[test]
    fn routing_reaches_every_destination() {
        let tree = prepared(4);
        let n = tree.len() as i64;
        for from in 0..n {
            for to in 0..n {
                let path = route_path(&tree, from, to);
                assert_eq!(*path.first().unwrap(), from);
                assert_eq!(*path.last().unwrap(), to);
                // Paths never exceed twice the height-bounded diameter.
                assert!(path.len() <= 2 * tree.height() + 1);
            }
        }
    }

    #[test]
    fn routing_works_on_irregular_trees() {
        for seed in 0..5 {
            let mut tree = random_cycletree(25, seed);
            number_cycletree(&mut tree);
            compute_routing(&mut tree);
            for to in 0..25 {
                let path = route_path(&tree, 0, to);
                assert_eq!(*path.last().unwrap(), to);
            }
        }
    }

    #[test]
    fn route_to_self_is_a_single_hop() {
        let tree = prepared(3);
        assert_eq!(route_path(&tree, 3, 3), vec![3]);
    }
}
