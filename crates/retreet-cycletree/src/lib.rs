//! # retreet-cycletree — the cycletree case-study substrate (§5, Fig. 9)
//!
//! Cycletrees (Veanes & Barklund) are binary trees augmented with a
//! Hamiltonian cycle over their nodes, used as an interconnection topology
//! that supports both tree-style broadcast and ring-style point-to-point
//! communication.  The paper's hardest case study fuses the cyclic-numbering
//! construction (the four mutually recursive modes `RootMode`, `PreMode`,
//! `InMode`, `PostMode`) with the router-data computation
//! (`ComputeRouting`), and shows that *parallelizing* the two traversals
//! instead is racy.
//!
//! This crate implements the substrate end to end:
//!
//! * [`numbering`] — the four-mode cyclic numbering over owned binary trees,
//!   both as two separate passes (number, then route) and as the fused
//!   single pass, plus the cycle-order extraction;
//! * [`routing`] — router data (`lmin`/`lmax`/`rmin`/`rmax`/`min`/`max`) and
//!   the point-to-point routing algorithm that uses it;
//! * a bridge to the Retreet corpus programs so the analysis verdicts (E4a:
//!   fusion valid, E4b: parallelization racy) are checked against the same
//!   code that runs here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod numbering;
pub mod routing;

pub use numbering::{cycle_order, fused_number_and_route, number_cycletree, CycleNode, Mode};
pub use routing::{compute_routing, route_next_hop, route_path};
