//! Cyclic numbering of binary trees via the four mutually recursive modes of
//! Fig. 9.
//!
//! Every node receives a distinct position `num` in the cyclic order.  The
//! *mode* of a subtree decides where its root is numbered relative to its
//! children, exactly as in the paper's `RootMode` / `PreMode` / `InMode` /
//! `PostMode` functions:
//!
//! | mode | order |
//! |------|-------|
//! | `Root` | self, left (`Pre`), right (`Post`) |
//! | `Pre`  | self, left (`Pre`), right (`In`)   |
//! | `In`   | left (`Post`), self, right (`Pre`) |
//! | `Post` | left (`In`), right (`Post`), self  |
//!
//! The paper's Retreet rendering passes the counter by value (a
//! simplification its analysis permits); the executable substrate threads a
//! real counter so that the numbering is a permutation `0..n-1` — the cyclic
//! order the routing algorithm of [`crate::routing`] relies on.  The analysis
//! verdicts (fusion valid, parallelization racy) are established on the
//! corpus programs in `retreet-lang::corpus`, which mirror Fig. 9 verbatim.

use retreet_runtime::tree::TreeNode;

/// The per-node payload of a cycletree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleNode {
    /// A stable identifier assigned at construction (used by tests and the
    /// routing examples).
    pub id: usize,
    /// Position of the node in the cyclic order.
    pub num: i64,
    /// Minimum `num` in the subtree rooted here.
    pub min: i64,
    /// Maximum `num` in the subtree rooted here.
    pub max: i64,
    /// Router data: minimum `num` in the left subtree (0 when absent).
    pub lmin: i64,
    /// Router data: maximum `num` in the left subtree.
    pub lmax: i64,
    /// Router data: minimum `num` in the right subtree.
    pub rmin: i64,
    /// Router data: maximum `num` in the right subtree.
    pub rmax: i64,
}

impl CycleNode {
    /// A fresh node with the given identifier.
    pub fn with_id(id: usize) -> Self {
        CycleNode {
            id,
            ..CycleNode::default()
        }
    }
}

/// The traversal mode of a subtree (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The root mode (used once, at the root of the whole tree).
    Root,
    /// Pre-order style: the node comes before both subtrees.
    Pre,
    /// In-order style: the node comes between its subtrees.
    In,
    /// Post-order style: the node comes after both subtrees.
    Post,
}

impl Mode {
    /// The modes the two subtrees are numbered in.
    pub fn child_modes(self) -> (Mode, Mode) {
        match self {
            Mode::Root => (Mode::Pre, Mode::Post),
            Mode::Pre => (Mode::Pre, Mode::In),
            Mode::In => (Mode::Post, Mode::Pre),
            Mode::Post => (Mode::In, Mode::Post),
        }
    }
}

/// Numbers the tree in the cyclic order, starting at 0 (the standalone
/// numbering traversal: the first pass of Fig. 9's `Main`).
pub fn number_cycletree(tree: &mut TreeNode<CycleNode>) {
    let mut counter = 0i64;
    number(tree, Mode::Root, &mut counter);
}

fn number(node: &mut TreeNode<CycleNode>, mode: Mode, counter: &mut i64) {
    let (left_mode, right_mode) = mode.child_modes();
    match mode {
        Mode::Root | Mode::Pre => {
            node.value.num = *counter;
            *counter += 1;
            if let Some(left) = node.left.as_deref_mut() {
                number(left, left_mode, counter);
            }
            if let Some(right) = node.right.as_deref_mut() {
                number(right, right_mode, counter);
            }
        }
        Mode::In => {
            if let Some(left) = node.left.as_deref_mut() {
                number(left, left_mode, counter);
            }
            node.value.num = *counter;
            *counter += 1;
            if let Some(right) = node.right.as_deref_mut() {
                number(right, right_mode, counter);
            }
        }
        Mode::Post => {
            if let Some(left) = node.left.as_deref_mut() {
                number(left, left_mode, counter);
            }
            if let Some(right) = node.right.as_deref_mut() {
                number(right, right_mode, counter);
            }
            node.value.num = *counter;
            *counter += 1;
        }
    }
}

/// The fused traversal of §5/E4a: numbering and router-data computation in a
/// single pass over the tree (each node's routing block runs right after its
/// subtrees are fully processed).
pub fn fused_number_and_route(tree: &mut TreeNode<CycleNode>) {
    let mut counter = 0i64;
    fused(tree, Mode::Root, &mut counter);
}

fn fused(node: &mut TreeNode<CycleNode>, mode: Mode, counter: &mut i64) {
    let (left_mode, right_mode) = mode.child_modes();
    // Numbering part (position of `self` depends on the mode).
    match mode {
        Mode::Root | Mode::Pre => {
            node.value.num = *counter;
            *counter += 1;
            if let Some(left) = node.left.as_deref_mut() {
                fused(left, left_mode, counter);
            }
            if let Some(right) = node.right.as_deref_mut() {
                fused(right, right_mode, counter);
            }
        }
        Mode::In => {
            if let Some(left) = node.left.as_deref_mut() {
                fused(left, left_mode, counter);
            }
            node.value.num = *counter;
            *counter += 1;
            if let Some(right) = node.right.as_deref_mut() {
                fused(right, right_mode, counter);
            }
        }
        Mode::Post => {
            if let Some(left) = node.left.as_deref_mut() {
                fused(left, left_mode, counter);
            }
            if let Some(right) = node.right.as_deref_mut() {
                fused(right, right_mode, counter);
            }
            node.value.num = *counter;
            *counter += 1;
        }
    }
    // Routing part — identical to `ComputeRouting`'s per-node block; children
    // are already done at this point in every mode.
    crate::routing::update_router_data(node);
}

/// The node identifiers listed in cyclic-number order (the Hamiltonian-cycle
/// order broadcast and point-to-point traffic follows).
pub fn cycle_order(tree: &TreeNode<CycleNode>) -> Vec<usize> {
    let mut pairs: Vec<(i64, usize)> = tree
        .preorder()
        .into_iter()
        .map(|node| (node.num, node.id))
        .collect();
    pairs.sort_unstable();
    pairs.into_iter().map(|(_, id)| id).collect()
}

/// Builds a complete cycletree of the given height with breadth-first ids.
pub fn complete_cycletree(height: usize) -> TreeNode<CycleNode> {
    retreet_runtime::tree::complete_tree(height, &CycleNode::with_id)
}

/// Builds a deterministic random-shaped cycletree with `nodes` nodes.
pub fn random_cycletree(nodes: usize, seed: u64) -> TreeNode<CycleNode> {
    retreet_runtime::tree::random_tree(nodes, seed, &CycleNode::with_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::compute_routing;

    #[test]
    fn numbering_is_a_permutation() {
        for height in 1..=5 {
            let mut tree = complete_cycletree(height);
            number_cycletree(&mut tree);
            let mut nums: Vec<i64> = tree.preorder().into_iter().map(|n| n.num).collect();
            nums.sort_unstable();
            let expected: Vec<i64> = (0..tree.len() as i64).collect();
            assert_eq!(nums, expected, "height {height}");
        }
    }

    #[test]
    fn numbering_is_a_permutation_on_irregular_shapes() {
        for seed in 0..10 {
            let mut tree = random_cycletree(33, seed);
            number_cycletree(&mut tree);
            let mut nums: Vec<i64> = tree.preorder().into_iter().map(|n| n.num).collect();
            nums.sort_unstable();
            assert_eq!(nums, (0..33).collect::<Vec<i64>>());
        }
    }

    #[test]
    fn root_is_numbered_first() {
        let mut tree = complete_cycletree(4);
        number_cycletree(&mut tree);
        assert_eq!(tree.value.num, 0);
    }

    #[test]
    fn consecutive_numbers_are_tree_neighbours_or_close() {
        // The defining property we rely on for routing is milder than the
        // full natural-cycletree adjacency: the numbering must cover each
        // subtree with a contiguous block except for the deferred parent
        // positions.  Sanity-check contiguity of the left+right+self blocks.
        let mut tree = complete_cycletree(4);
        number_cycletree(&mut tree);
        compute_routing(&mut tree);
        fn check(node: &TreeNode<CycleNode>) {
            let span = node.value.max - node.value.min + 1;
            assert_eq!(span as usize, node.len(), "subtree numbers are contiguous");
            if let Some(left) = node.left.as_deref() {
                check(left);
            }
            if let Some(right) = node.right.as_deref() {
                check(right);
            }
        }
        check(&tree);
    }

    #[test]
    fn fused_pass_matches_the_two_pass_composition() {
        for seed in 0..5 {
            let tree = random_cycletree(40, seed);
            let mut two_pass = tree.clone();
            number_cycletree(&mut two_pass);
            compute_routing(&mut two_pass);
            let mut fused = tree;
            fused_number_and_route(&mut fused);
            assert_eq!(two_pass, fused, "seed {seed}");
        }
    }

    #[test]
    fn cycle_order_lists_every_node_once() {
        let mut tree = complete_cycletree(4);
        number_cycletree(&mut tree);
        let order = cycle_order(&tree);
        assert_eq!(order.len(), 15);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 15);
        // The root (id 0) leads the cycle because RootMode numbers it first.
        assert_eq!(order[0], 0);
    }

    #[test]
    fn child_modes_match_figure_9() {
        assert_eq!(Mode::Root.child_modes(), (Mode::Pre, Mode::Post));
        assert_eq!(Mode::Pre.child_modes(), (Mode::Pre, Mode::In));
        assert_eq!(Mode::In.child_modes(), (Mode::Post, Mode::Pre));
        assert_eq!(Mode::Post.child_modes(), (Mode::In, Mode::Post));
    }
}
