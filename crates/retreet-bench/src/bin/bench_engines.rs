//! `bench_engines` — the before/after engine benchmark.
//!
//! Runs every §5 experiment through the frozen naive engines
//! (`retreet_analysis::naive`, the seed revision's hot path) and through the
//! optimized façade engines, under the quick and the full (default) budget,
//! and writes the machine-readable report to `BENCH_engines.json` at the
//! repository root — the perf trajectory future revisions regress against.
//!
//! ```text
//! bench_engines [--quick] [--out PATH] [--ceiling-seconds S]
//!               [--batches N] [--per-batch N]
//! ```
//!
//! * `--quick` — only run the quick budget (the CI perf-smoke mode).
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_engines.json` in the current directory).
//! * `--ceiling-seconds S` — exit non-zero when any single optimized
//!   experiment exceeds `S` seconds (default 60; a generous guard that
//!   catches accidental exponential regressions, not noise).
//! * `--batches N` / `--per-batch N` — timing loop shape (default 5 × 3,
//!   best-of-batches).
//!
//! The process also fails when any experiment's verdict disagrees with the
//! paper or with the naive engine — a perf run that changes answers is a
//! bug, not a speedup — and when any experiment's verdict *soundness*
//! regresses from `unbounded`: every §5 experiment is answered by the
//! automata tier with an unbounded guarantee, and a revision that silently
//! drops one of them back to a bounded-budget answer must not pass.

use retreet_bench::{engine_perf_to_json, measure_engine_perf, render_engine_perf, Budget};

struct Args {
    quick_only: bool,
    out: String,
    ceiling_seconds: f64,
    batches: usize,
    per_batch: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick_only: false,
        out: String::from("BENCH_engines.json"),
        ceiling_seconds: 60.0,
        batches: 5,
        per_batch: 3,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--quick" => args.quick_only = true,
            "--out" => args.out = value("--out")?,
            "--ceiling-seconds" => {
                args.ceiling_seconds = value("--ceiling-seconds")?
                    .parse()
                    .map_err(|e| format!("--ceiling-seconds: {e}"))?
            }
            "--batches" => {
                args.batches = value("--batches")?
                    .parse()
                    .map_err(|e| format!("--batches: {e}"))?
            }
            "--per-batch" => {
                args.per_batch = value("--per-batch")?
                    .parse()
                    .map_err(|e| format!("--per-batch: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "bench_engines [--quick] [--out PATH] [--ceiling-seconds S] \
                     [--batches N] [--per-batch N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench_engines: {message}");
            std::process::exit(2);
        }
    };

    let quick = Budget::quick();
    let full = Budget::default();
    let mut sections: Vec<(&str, &Budget, _)> = Vec::new();
    if !args.quick_only {
        println!("== full budget (default) ==");
        let rows = measure_engine_perf(&full, args.batches, args.per_batch);
        print!("{}", render_engine_perf(&rows));
        sections.push(("full", &full, rows));
    }
    println!("== quick budget ==");
    let quick_rows = measure_engine_perf(&quick, args.batches, args.per_batch);
    print!("{}", render_engine_perf(&quick_rows));
    sections.push(("quick", &quick, quick_rows));

    let json = engine_perf_to_json(&sections);
    if let Err(err) = std::fs::write(&args.out, &json) {
        eprintln!("bench_engines: cannot write {}: {err}", args.out);
        std::process::exit(1);
    }
    println!("report written to {}", args.out);

    let mut failed = false;
    for (label, _, rows) in &sections {
        for row in rows {
            if !row.matches_paper() {
                eprintln!(
                    "bench_engines: {label}/{} verdict {:?} disagrees with the paper",
                    row.id, row.verdict
                );
                failed = true;
            }
            if !row.verdicts_agree {
                eprintln!(
                    "bench_engines: {label}/{} naive and optimized engines disagree",
                    row.id
                );
                failed = true;
            }
            if row.soundness != "unbounded" {
                eprintln!(
                    "bench_engines: {label}/{} soundness regressed to `{}` \
                     (every §5 experiment must stay unbounded)",
                    row.id, row.soundness
                );
                failed = true;
            }
            if row.optimized_seconds > args.ceiling_seconds {
                eprintln!(
                    "bench_engines: {label}/{} took {:.2}s, over the {:.0}s ceiling",
                    row.id, row.optimized_seconds, args.ceiling_seconds
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
