//! `bench_service` — the serving-tier benchmark.
//!
//! Drives a `retreet_serve::Service` (one shared verifier: sharded verdict
//! cache, single-flight coalescing) with a warm-cache NDJSON workload from
//! 1, 4 and 8 client threads, and writes the machine-readable report to
//! `BENCH_service.json` at the repository root.
//!
//! ```text
//! bench_service [--quick] [--out PATH] [--ceiling-seconds S]
//!               [--rounds N] [--min-scaling F]
//! ```
//!
//! * `--quick` — smaller budget and fewer rounds (the CI perf-smoke mode).
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_service.json` in the current directory).
//! * `--ceiling-seconds S` — exit non-zero when any timed section exceeds
//!   `S` seconds of wall clock (default 120; catches accidental
//!   exponential regressions, not noise).
//! * `--rounds N` — workload repetitions per client thread.
//! * `--min-scaling F` — exit non-zero when 8-thread throughput is below
//!   `F ×` the single-thread throughput (default 0: shared CI runners and
//!   single-core hosts cannot honestly promise parallel speedups).
//!
//! Like `bench_engines`, the run **fails on verdict drift**: every response
//! is checked against the §5 expectation, single-threaded first and then
//! under every concurrency level — a serving layer that changes answers
//! under load is a bug, not a throughput result.  A cold-burst phase
//! additionally asserts single-flight coalescing: 8 threads issuing the
//! same cold query must trigger exactly one engine run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use retreet_lang::corpus;
use retreet_serve::{json, ServeOptions, Service};

struct Args {
    quick: bool,
    out: String,
    ceiling_seconds: f64,
    rounds: usize,
    min_scaling: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: String::from("BENCH_service.json"),
        ceiling_seconds: 120.0,
        rounds: 0,
        min_scaling: 0.0,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = value("--out")?,
            "--ceiling-seconds" => {
                args.ceiling_seconds = value("--ceiling-seconds")?
                    .parse()
                    .map_err(|e| format!("--ceiling-seconds: {e}"))?
            }
            "--rounds" => {
                args.rounds = value("--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?
            }
            "--min-scaling" => {
                args.min_scaling = value("--min-scaling")?
                    .parse()
                    .map_err(|e| format!("--min-scaling: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "bench_service [--quick] [--out PATH] [--ceiling-seconds S] \
                     [--rounds N] [--min-scaling F]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.rounds == 0 {
        args.rounds = if args.quick { 20 } else { 60 };
    }
    Ok(args)
}

/// One request of the workload: the NDJSON line plus the verdict word every
/// response must carry (the drift gate).
struct WorkItem {
    line: String,
    expected_verdict: &'static str,
}

/// The §5 serving mix: every corpus race query, every known fusion pair,
/// and a pair of validity queries — with the paper's expected verdicts.
fn workload() -> Vec<WorkItem> {
    let race = |source: &str, expected: &'static str| WorkItem {
        line: format!(r#"{{"kind":"race","program":"{}"}}"#, json::escape(source)),
        expected_verdict: expected,
    };
    let equiv = |original: &str, transformed: &str, expected: &'static str| WorkItem {
        line: format!(
            r#"{{"kind":"equivalence","original":"{}","transformed":"{}"}}"#,
            json::escape(original),
            json::escape(transformed)
        ),
        expected_verdict: expected,
    };
    let validity = |formula: &str, expected: &'static str| WorkItem {
        line: format!(r#"{{"kind":"validity","formula":"{formula}"}}"#),
        expected_verdict: expected,
    };
    vec![
        race(corpus::SIZE_COUNTING_PARALLEL_SRC, "race-free"),
        race(corpus::SIZE_COUNTING_SEQUENTIAL_SRC, "race-free"),
        race(corpus::TREE_MUTATION_ORIGINAL_SRC, "race-free"),
        race(corpus::CSS_MINIFY_ORIGINAL_SRC, "race-free"),
        race(corpus::CYCLETREE_ORIGINAL_SRC, "race-free"),
        race(corpus::CYCLETREE_PARALLEL_SRC, "race"),
        race(corpus::DISJOINT_PARALLEL_SRC, "race-free"),
        race(corpus::OVERLAPPING_PARALLEL_SRC, "race"),
        equiv(
            corpus::SIZE_COUNTING_SEQUENTIAL_SRC,
            corpus::SIZE_COUNTING_FUSED_SRC,
            "equivalent",
        ),
        equiv(
            corpus::SIZE_COUNTING_SEQUENTIAL_SRC,
            corpus::SIZE_COUNTING_FUSED_INVALID_SRC,
            "not-equivalent",
        ),
        equiv(
            corpus::TREE_MUTATION_ORIGINAL_SRC,
            corpus::TREE_MUTATION_FUSED_SRC,
            "equivalent",
        ),
        equiv(
            corpus::CSS_MINIFY_ORIGINAL_SRC,
            corpus::CSS_MINIFY_FUSED_SRC,
            "equivalent",
        ),
        equiv(
            corpus::CYCLETREE_ORIGINAL_SRC,
            corpus::CYCLETREE_FUSED_SRC,
            "equivalent",
        ),
        validity(
            "(forall r (implies (root r) (forall x (reach r x))))",
            "valid",
        ),
        validity("(forall x (leaf x))", "invalid"),
    ]
}

/// Checks one response line against its expectation; returns the drift
/// message on mismatch.
fn check_response(response: &str, expected_verdict: &str) -> Result<(), String> {
    if response.contains(r#""status":"ok""#)
        && response.contains(&format!(r#""verdict":"{expected_verdict}""#))
    {
        Ok(())
    } else {
        Err(format!(
            "expected verdict `{expected_verdict}`, got: {response}"
        ))
    }
}

struct Section {
    client_threads: usize,
    requests: usize,
    wall_seconds: f64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
}

/// Runs `rounds` passes over the workload from `threads` client threads
/// against the shared service, collecting per-request latencies.
fn run_section(
    service: &Arc<Service>,
    work: &Arc<Vec<WorkItem>>,
    threads: usize,
    rounds: usize,
    drifted: &Arc<AtomicBool>,
) -> Section {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::new();
    for thread in 0..threads {
        let service = Arc::clone(service);
        let work = Arc::clone(work);
        let barrier = Arc::clone(&barrier);
        let drifted = Arc::clone(drifted);
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(rounds * work.len());
            barrier.wait();
            for round in 0..rounds {
                // Stagger thread start positions so concurrent threads hit
                // different cache shards at any instant.
                let offset = (thread * 7 + round) % work.len();
                for i in 0..work.len() {
                    let item = &work[(i + offset) % work.len()];
                    let start = Instant::now();
                    let response = service.handle_line(&item.line);
                    latencies.push(start.elapsed().as_micros() as u64);
                    if let Err(err) = check_response(&response, item.expected_verdict) {
                        if !drifted.swap(true, Ordering::Relaxed) {
                            eprintln!(
                                "bench_service: verdict drift under {threads} threads: {err}"
                            );
                        }
                    }
                }
            }
            latencies
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    for handle in handles {
        latencies.extend(handle.join().expect("client thread panicked"));
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let percentile = |p: f64| -> u64 {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    Section {
        client_threads: threads,
        requests: latencies.len(),
        wall_seconds,
        throughput_rps: latencies.len() as f64 / wall_seconds,
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
    }
}

/// The cold-burst single-flight check: 8 threads issue the *same* cold
/// query against a fresh service; exactly one engine run may happen, and
/// everyone must receive the same witness.
fn cold_burst(options: &ServeOptions) -> Result<(usize, u64, u64), String> {
    const THREADS: usize = 8;
    let service = Arc::new(Service::new(options));
    let line = Arc::new(format!(
        r#"{{"kind":"race","program":"{}"}}"#,
        json::escape(corpus::CYCLETREE_PARALLEL_SRC)
    ));
    let barrier = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let service = Arc::clone(&service);
        let line = Arc::clone(&line);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            service.handle_line(&line)
        }));
    }
    let responses: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("burst thread panicked"))
        .collect();
    for response in &responses {
        check_response(response, "race")?;
    }
    let serving = service.verifier().serving_stats();
    if serving.engine_runs != 1 {
        return Err(format!(
            "cold burst ran the engine {} times; single-flight must run it once",
            serving.engine_runs
        ));
    }
    // Every lookup counts as exactly one hit or miss; `collisions` is a
    // separate diagnostic and must stay 0 here (all threads send the same
    // query, so no key collision is possible).
    let cache = service.verifier().cache_stats();
    if cache.hits + cache.misses != THREADS as u64 || cache.collisions != 0 {
        return Err(format!(
            "cold burst accounting off: {} hits + {} misses != {THREADS} queries \
             (collisions {})",
            cache.hits, cache.misses, cache.collisions
        ));
    }
    Ok((THREADS, serving.coalesced, cache.hits))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench_service: {message}");
            std::process::exit(2);
        }
    };

    let options = if args.quick {
        ServeOptions {
            race_nodes: 3,
            equiv_nodes: 4,
            validity_nodes: 4,
            valuations: 1,
            ..ServeOptions::default()
        }
    } else {
        ServeOptions::default()
    };
    let budget_label = if args.quick { "quick" } else { "full" };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Warm start: preload the corpus, then one single-threaded correctness
    // pass over the full workload (which also warms the two validity
    // entries the preload does not cover).
    let service = Arc::new(Service::new(&options));
    let preloaded = service.warm_start();
    let work = Arc::new(workload());
    let mut failed = false;
    for item in work.iter() {
        let response = service.handle_line(&item.line);
        if let Err(err) = check_response(&response, item.expected_verdict) {
            eprintln!("bench_service: verdict drift (single-threaded): {err}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }

    println!("== warm-cache serving throughput ({budget_label} budget, {cores} core(s)) ==");
    println!(
        "{:>7} {:>10} {:>9} {:>12} {:>9} {:>9}",
        "threads", "requests", "wall (s)", "rps", "p50 (us)", "p99 (us)"
    );
    let drifted = Arc::new(AtomicBool::new(false));
    let mut sections = Vec::new();
    for threads in [1usize, 4, 8] {
        let section = run_section(&service, &work, threads, args.rounds, &drifted);
        println!(
            "{:>7} {:>10} {:>9.3} {:>12.0} {:>9} {:>9}",
            section.client_threads,
            section.requests,
            section.wall_seconds,
            section.throughput_rps,
            section.p50_us,
            section.p99_us
        );
        if section.wall_seconds > args.ceiling_seconds {
            eprintln!(
                "bench_service: {} threads took {:.2}s, over the {:.0}s ceiling",
                threads, section.wall_seconds, args.ceiling_seconds
            );
            failed = true;
        }
        sections.push(section);
    }
    if drifted.load(Ordering::Relaxed) {
        failed = true;
    }

    let burst = match cold_burst(&options) {
        Ok(burst) => burst,
        Err(err) => {
            eprintln!("bench_service: {err}");
            std::process::exit(1);
        }
    };
    println!(
        "cold burst: {} threads, 1 engine run, {} coalesced, {} cache hits",
        burst.0, burst.1, burst.2
    );

    let cache = service.verifier().cache_stats();
    let serving = service.verifier().serving_stats();
    let hit_rate = cache.hits as f64 / (cache.hits + cache.misses).max(1) as f64;
    let coalescing_rate = serving.coalesced as f64 / service.requests_handled().max(1) as f64;
    let scaling = sections[2].throughput_rps / sections[0].throughput_rps;
    println!(
        "hit rate {:.4}, coalescing rate {:.4}, 8-thread scaling {scaling:.2}x",
        hit_rate, coalescing_rate
    );

    let mut out = String::from("{\n  \"schema\": \"retreet-bench-service/v1\",\n");
    out.push_str(
        "  \"methodology\": \"warm-cache NDJSON serving: corpus preloaded via warm_start, \
         then N client threads replay the full \\u00a75 request mix (race + equivalence + \
         validity) against one shared Service; every response is checked against the \
         paper's verdict; latencies are per-request wall clock including JSON parse; the \
         cold burst issues one identical cold query from 8 threads and asserts exactly one \
         engine run (single-flight)\",\n",
    );
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!(
        "  \"budget\": {{ \"label\": \"{budget_label}\", \"race_nodes\": {}, \"equiv_nodes\": {}, \
         \"validity_nodes\": {}, \"valuations\": {} }},\n",
        options.race_nodes, options.equiv_nodes, options.validity_nodes, options.valuations
    ));
    out.push_str(&format!("  \"warm_start_preloaded\": {preloaded},\n"));
    out.push_str("  \"sections\": [\n");
    for (i, s) in sections.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"client_threads\": {}, \"requests\": {}, \"wall_seconds\": {:.4}, \
             \"throughput_rps\": {:.0}, \"p50_us\": {}, \"p99_us\": {} }}{}\n",
            s.client_threads,
            s.requests,
            s.wall_seconds,
            s.throughput_rps,
            s.p50_us,
            s.p99_us,
            if i + 1 < sections.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"scaling_8_over_1\": {scaling:.3},\n  \"cold_burst\": {{ \"threads\": {}, \
         \"engine_runs\": 1, \"coalesced\": {}, \"cache_hits\": {} }},\n",
        burst.0, burst.1, burst.2
    ));
    out.push_str(&format!(
        "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"collisions\": {}, \"entries\": {}, \
         \"hit_rate\": {hit_rate:.4} }},\n",
        cache.hits, cache.misses, cache.collisions, cache.entries
    ));
    out.push_str(&format!(
        "  \"serving\": {{ \"engine_runs\": {}, \"cancelled_runs\": {}, \"coalesced\": {}, \
         \"coalescing_rate\": {coalescing_rate:.4} }}\n}}\n",
        serving.engine_runs, serving.cancelled_runs, serving.coalesced
    ));
    if let Err(err) = std::fs::write(&args.out, &out) {
        eprintln!("bench_service: cannot write {}: {err}", args.out);
        std::process::exit(1);
    }
    println!("report written to {}", args.out);

    if scaling < args.min_scaling {
        eprintln!(
            "bench_service: 8-thread scaling {scaling:.2}x below the required {:.2}x",
            args.min_scaling
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
