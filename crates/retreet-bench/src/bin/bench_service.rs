//! `bench_service` — the serving-tier benchmark.
//!
//! Drives a `retreet_serve::Service` (one shared verifier: sharded verdict
//! cache, single-flight coalescing) with a warm-cache NDJSON workload from
//! 1, 4 and 8 client threads, and writes the machine-readable report to
//! `BENCH_service.json` at the repository root.
//!
//! ```text
//! bench_service [--quick] [--out PATH] [--ceiling-seconds S]
//!               [--rounds N] [--min-scaling F]
//! ```
//!
//! * `--quick` — smaller budget and fewer rounds (the CI perf-smoke mode).
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_service.json` in the current directory).
//! * `--ceiling-seconds S` — exit non-zero when any timed section exceeds
//!   `S` seconds of wall clock (default 120; catches accidental
//!   exponential regressions, not noise).
//! * `--rounds N` — workload repetitions per client thread.
//! * `--min-scaling F` — exit non-zero when 8-thread throughput is below
//!   `F ×` the single-thread throughput (default 0: shared CI runners and
//!   single-core hosts cannot honestly promise parallel speedups).
//!
//! Like `bench_engines`, the run **fails on verdict drift**: every response
//! is checked against the §5 expectation, single-threaded first and then
//! under every concurrency level — a serving layer that changes answers
//! under load is a bug, not a throughput result.  A cold-burst phase
//! additionally asserts single-flight coalescing: 8 threads issuing the
//! same cold query must trigger exactly one engine run.
//!
//! Schema v2 adds three robustness phases, each on a fresh service:
//!
//! * **shed** — a deliberately tiny cold lane (1 worker, 1-slot queue)
//!   under stalled engines; every request must be answered correctly or
//!   shed with a typed `overloaded` error, and the shed rate is recorded.
//! * **deadline** — engines stalled far past a short per-query deadline;
//!   every query must resolve as a typed `deadline_exceeded` error or a
//!   correct degraded verdict (fail-closed), and the deadline-hit rate is
//!   recorded.
//! * **cold restart** — the workload is served once with a persistent
//!   verdict store, the service is dropped, and a restarted service must
//!   answer the whole workload from the recovered store with **zero**
//!   engine runs; a warm-hit rate below 1.0 fails the run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use retreet_lang::corpus;
use retreet_serve::{json, ServeOptions, Service};
use retreet_verify::FaultPlan;

struct Args {
    quick: bool,
    out: String,
    ceiling_seconds: f64,
    rounds: usize,
    min_scaling: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: String::from("BENCH_service.json"),
        ceiling_seconds: 120.0,
        rounds: 0,
        min_scaling: 0.0,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = value("--out")?,
            "--ceiling-seconds" => {
                args.ceiling_seconds = value("--ceiling-seconds")?
                    .parse()
                    .map_err(|e| format!("--ceiling-seconds: {e}"))?
            }
            "--rounds" => {
                args.rounds = value("--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?
            }
            "--min-scaling" => {
                args.min_scaling = value("--min-scaling")?
                    .parse()
                    .map_err(|e| format!("--min-scaling: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "bench_service [--quick] [--out PATH] [--ceiling-seconds S] \
                     [--rounds N] [--min-scaling F]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.rounds == 0 {
        args.rounds = if args.quick { 20 } else { 60 };
    }
    Ok(args)
}

/// One request of the workload: the NDJSON line plus the verdict word every
/// response must carry (the drift gate).
struct WorkItem {
    line: String,
    expected_verdict: &'static str,
}

/// The §5 serving mix: every corpus race query, every known fusion pair,
/// and a pair of validity queries — with the paper's expected verdicts.
fn workload() -> Vec<WorkItem> {
    let race = |source: &str, expected: &'static str| WorkItem {
        line: format!(r#"{{"kind":"race","program":"{}"}}"#, json::escape(source)),
        expected_verdict: expected,
    };
    let equiv = |original: &str, transformed: &str, expected: &'static str| WorkItem {
        line: format!(
            r#"{{"kind":"equivalence","original":"{}","transformed":"{}"}}"#,
            json::escape(original),
            json::escape(transformed)
        ),
        expected_verdict: expected,
    };
    let validity = |formula: &str, expected: &'static str| WorkItem {
        line: format!(r#"{{"kind":"validity","formula":"{formula}"}}"#),
        expected_verdict: expected,
    };
    vec![
        race(corpus::SIZE_COUNTING_PARALLEL_SRC, "race-free"),
        race(corpus::SIZE_COUNTING_SEQUENTIAL_SRC, "race-free"),
        race(corpus::TREE_MUTATION_ORIGINAL_SRC, "race-free"),
        race(corpus::CSS_MINIFY_ORIGINAL_SRC, "race-free"),
        race(corpus::CYCLETREE_ORIGINAL_SRC, "race-free"),
        race(corpus::CYCLETREE_PARALLEL_SRC, "race"),
        race(corpus::DISJOINT_PARALLEL_SRC, "race-free"),
        race(corpus::OVERLAPPING_PARALLEL_SRC, "race"),
        equiv(
            corpus::SIZE_COUNTING_SEQUENTIAL_SRC,
            corpus::SIZE_COUNTING_FUSED_SRC,
            "equivalent",
        ),
        equiv(
            corpus::SIZE_COUNTING_SEQUENTIAL_SRC,
            corpus::SIZE_COUNTING_FUSED_INVALID_SRC,
            "not-equivalent",
        ),
        equiv(
            corpus::TREE_MUTATION_ORIGINAL_SRC,
            corpus::TREE_MUTATION_FUSED_SRC,
            "equivalent",
        ),
        equiv(
            corpus::CSS_MINIFY_ORIGINAL_SRC,
            corpus::CSS_MINIFY_FUSED_SRC,
            "equivalent",
        ),
        equiv(
            corpus::CYCLETREE_ORIGINAL_SRC,
            corpus::CYCLETREE_FUSED_SRC,
            "equivalent",
        ),
        validity(
            "(forall r (implies (root r) (forall x (reach r x))))",
            "valid",
        ),
        validity("(forall x (leaf x))", "invalid"),
    ]
}

/// Checks one response line against its expectation; returns the drift
/// message on mismatch.
fn check_response(response: &str, expected_verdict: &str) -> Result<(), String> {
    if response.contains(r#""status":"ok""#)
        && response.contains(&format!(r#""verdict":"{expected_verdict}""#))
    {
        Ok(())
    } else {
        Err(format!(
            "expected verdict `{expected_verdict}`, got: {response}"
        ))
    }
}

struct Section {
    client_threads: usize,
    requests: usize,
    wall_seconds: f64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
}

/// Runs `rounds` passes over the workload from `threads` client threads
/// against the shared service, collecting per-request latencies.
fn run_section(
    service: &Arc<Service>,
    work: &Arc<Vec<WorkItem>>,
    threads: usize,
    rounds: usize,
    drifted: &Arc<AtomicBool>,
) -> Section {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::new();
    for thread in 0..threads {
        let service = Arc::clone(service);
        let work = Arc::clone(work);
        let barrier = Arc::clone(&barrier);
        let drifted = Arc::clone(drifted);
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(rounds * work.len());
            barrier.wait();
            for round in 0..rounds {
                // Stagger thread start positions so concurrent threads hit
                // different cache shards at any instant.
                let offset = (thread * 7 + round) % work.len();
                for i in 0..work.len() {
                    let item = &work[(i + offset) % work.len()];
                    let start = Instant::now();
                    let response = service.handle_line(&item.line);
                    latencies.push(start.elapsed().as_micros() as u64);
                    if let Err(err) = check_response(&response, item.expected_verdict) {
                        if !drifted.swap(true, Ordering::Relaxed) {
                            eprintln!(
                                "bench_service: verdict drift under {threads} threads: {err}"
                            );
                        }
                    }
                }
            }
            latencies
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    for handle in handles {
        latencies.extend(handle.join().expect("client thread panicked"));
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let percentile = |p: f64| -> u64 {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    Section {
        client_threads: threads,
        requests: latencies.len(),
        wall_seconds,
        throughput_rps: latencies.len() as f64 / wall_seconds,
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
    }
}

/// The cold-burst single-flight check: 8 threads issue the *same* cold
/// query against a fresh service; exactly one engine run may happen, and
/// everyone must receive the same witness.
fn cold_burst(options: &ServeOptions) -> Result<(usize, u64, u64), String> {
    const THREADS: usize = 8;
    let service = Arc::new(Service::new(options));
    let line = Arc::new(format!(
        r#"{{"kind":"race","program":"{}"}}"#,
        json::escape(corpus::CYCLETREE_PARALLEL_SRC)
    ));
    let barrier = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let service = Arc::clone(&service);
        let line = Arc::clone(&line);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            service.handle_line(&line)
        }));
    }
    let responses: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("burst thread panicked"))
        .collect();
    for response in &responses {
        check_response(response, "race")?;
    }
    let serving = service.verifier().serving_stats();
    if serving.engine_runs != 1 {
        return Err(format!(
            "cold burst ran the engine {} times; single-flight must run it once",
            serving.engine_runs
        ));
    }
    // Every lookup counts as exactly one hit or miss; `collisions` is a
    // separate diagnostic and must stay 0 here (all threads send the same
    // query, so no key collision is possible).
    let cache = service.verifier().cache_stats();
    if cache.hits + cache.misses != THREADS as u64 || cache.collisions != 0 {
        return Err(format!(
            "cold burst accounting off: {} hits + {} misses != {THREADS} queries \
             (collisions {})",
            cache.hits, cache.misses, cache.collisions
        ));
    }
    Ok((THREADS, serving.coalesced, cache.hits))
}

/// Outcome of one robustness phase: how many requests were issued and how
/// many hit the phase's event (shed / deadline / warm hit).
struct Phase {
    requests: usize,
    events: u64,
    rate: f64,
}

/// The admission-control phase: a deliberately tiny cold lane (1 worker,
/// 1-slot queue) with every engine run stalled, hammered by concurrent
/// distinct cold queries.  Every response must be either a correct verdict
/// or a typed `overloaded` shed — anything else (a wrong verdict, an
/// untyped error, a hang) fails the run.
fn overload_shed(options: &ServeOptions) -> Result<Phase, String> {
    let sources: [(&str, &str); 6] = [
        (corpus::CYCLETREE_PARALLEL_SRC, "race"),
        (corpus::OVERLAPPING_PARALLEL_SRC, "race"),
        (corpus::DISJOINT_PARALLEL_SRC, "race-free"),
        (corpus::SIZE_COUNTING_PARALLEL_SRC, "race-free"),
        (corpus::SIZE_COUNTING_SEQUENTIAL_SRC, "race-free"),
        (corpus::TREE_MUTATION_ORIGINAL_SRC, "race-free"),
    ];
    let service = Arc::new(Service::new(&ServeOptions {
        workers: 1,
        cold_queue: 1,
        faults: Some(Arc::new(
            FaultPlan::builder(17).engine_stall(1.0, 120).build(),
        )),
        ..options.clone()
    }));
    let barrier = Arc::new(Barrier::new(sources.len()));
    let mut handles = Vec::new();
    for (source, expected) in sources {
        let service = Arc::clone(&service);
        let barrier = Arc::clone(&barrier);
        let line = format!(r#"{{"kind":"race","program":"{}"}}"#, json::escape(source));
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            (service.handle_line(&line), expected)
        }));
    }
    let mut shed = 0u64;
    let mut answered = 0u64;
    for handle in handles {
        let (response, expected) = handle.join().expect("shed client panicked");
        if response.contains(r#""code":"overloaded""#) {
            shed += 1;
        } else {
            check_response(&response, expected).map_err(|err| format!("shed phase: {err}"))?;
            answered += 1;
        }
    }
    if answered == 0 || shed == 0 {
        return Err(format!(
            "shed phase must both answer and shed under a full 1-slot queue \
             (answered {answered}, shed {shed})"
        ));
    }
    Ok(Phase {
        requests: sources.len(),
        events: shed,
        rate: shed as f64 / sources.len() as f64,
    })
}

/// The deadline phase: every engine run stalls far past a short per-query
/// deadline, so every cold query must resolve *typed* — a
/// `deadline_exceeded` error or a correct degraded verdict — never a wrong
/// answer and never a hang.
fn deadline_pressure(options: &ServeOptions) -> Result<Phase, String> {
    let sources: [(&str, &str); 4] = [
        (corpus::CYCLETREE_PARALLEL_SRC, "race"),
        (corpus::OVERLAPPING_PARALLEL_SRC, "race"),
        (corpus::DISJOINT_PARALLEL_SRC, "race-free"),
        (corpus::SIZE_COUNTING_PARALLEL_SRC, "race-free"),
    ];
    let service = Service::new(&ServeOptions {
        deadline_ms: 60,
        faults: Some(Arc::new(
            FaultPlan::builder(23).engine_stall(1.0, 5_000).build(),
        )),
        ..options.clone()
    });
    for (source, expected) in sources {
        let line = format!(r#"{{"kind":"race","program":"{}"}}"#, json::escape(source));
        let response = service.handle_line(&line);
        let degraded_ok =
            response.contains(r#""degraded":true"#) && check_response(&response, expected).is_ok();
        if !response.contains(r#""code":"deadline_exceeded""#) && !degraded_ok {
            return Err(format!(
                "deadline phase: expected a typed deadline_exceeded error or a \
                 correct degraded verdict, got: {response}"
            ));
        }
    }
    let hits = service.verifier().serving_stats().deadline_hits;
    if hits == 0 {
        return Err(String::from(
            "deadline phase: stalled engines under a 60ms deadline recorded no \
             deadline hits",
        ));
    }
    Ok(Phase {
        requests: sources.len(),
        events: hits,
        rate: hits as f64 / sources.len() as f64,
    })
}

/// The crash-recovery phase: serve the whole workload once with a
/// persistent verdict store, drop the service, restart against the same
/// log, and replay the workload.  The restarted service must answer every
/// request from the recovered store — zero engine runs, warm-hit rate
/// exactly 1.0 — or the run fails.
fn cold_restart(options: &ServeOptions, work: &[WorkItem]) -> Result<Phase, String> {
    let path = std::env::temp_dir().join(format!(
        "retreet-bench-service-{}.rslog",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let persisted = ServeOptions {
        persist: Some(path.clone()),
        ..options.clone()
    };
    {
        let service = Service::new(&persisted);
        for item in work {
            let response = service.handle_line(&item.line);
            check_response(&response, item.expected_verdict)
                .map_err(|err| format!("restart phase (first boot): {err}"))?;
        }
        if !service.finish() {
            return Err(String::from(
                "restart phase: first boot missed its drain deadline",
            ));
        }
    }
    let service = Service::new(&persisted);
    let loaded = service
        .verifier()
        .store_stats()
        .map_or(0, |stats| stats.loaded);
    for item in work {
        let response = service.handle_line(&item.line);
        check_response(&response, item.expected_verdict)
            .map_err(|err| format!("restart phase (after restart): {err}"))?;
        if !response.contains(r#""cached":true"#) {
            return Err(format!(
                "restart phase: a recovered verdict was not served as a cache \
                 hit: {response}"
            ));
        }
    }
    let hits = service.verifier().cache_stats().hits;
    let engine_runs = service.verifier().serving_stats().engine_runs;
    let _ = std::fs::remove_file(&path);
    if engine_runs != 0 {
        return Err(format!(
            "restart phase: the restarted service re-ran {engine_runs} engine \
             dispatch(es); the recovered store ({loaded} verdicts) must answer \
             everything"
        ));
    }
    let rate = hits as f64 / work.len() as f64;
    if rate < 1.0 {
        return Err(format!(
            "restart phase: warm-hit rate {rate:.4} after restart; every replayed \
             request must hit the recovered store"
        ));
    }
    Ok(Phase {
        requests: work.len(),
        events: hits,
        rate,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench_service: {message}");
            std::process::exit(2);
        }
    };

    let options = if args.quick {
        ServeOptions {
            race_nodes: 3,
            equiv_nodes: 4,
            validity_nodes: 4,
            valuations: 1,
            ..ServeOptions::default()
        }
    } else {
        ServeOptions::default()
    };
    let budget_label = if args.quick { "quick" } else { "full" };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Warm start: preload the corpus, then one single-threaded correctness
    // pass over the full workload (which also warms the two validity
    // entries the preload does not cover).
    let service = Arc::new(Service::new(&options));
    let preloaded = service.warm_start();
    let work = Arc::new(workload());
    let mut failed = false;
    for item in work.iter() {
        let response = service.handle_line(&item.line);
        if let Err(err) = check_response(&response, item.expected_verdict) {
            eprintln!("bench_service: verdict drift (single-threaded): {err}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }

    println!("== warm-cache serving throughput ({budget_label} budget, {cores} core(s)) ==");
    println!(
        "{:>7} {:>10} {:>9} {:>12} {:>9} {:>9}",
        "threads", "requests", "wall (s)", "rps", "p50 (us)", "p99 (us)"
    );
    let drifted = Arc::new(AtomicBool::new(false));
    let mut sections = Vec::new();
    for threads in [1usize, 4, 8] {
        let section = run_section(&service, &work, threads, args.rounds, &drifted);
        println!(
            "{:>7} {:>10} {:>9.3} {:>12.0} {:>9} {:>9}",
            section.client_threads,
            section.requests,
            section.wall_seconds,
            section.throughput_rps,
            section.p50_us,
            section.p99_us
        );
        if section.wall_seconds > args.ceiling_seconds {
            eprintln!(
                "bench_service: {} threads took {:.2}s, over the {:.0}s ceiling",
                threads, section.wall_seconds, args.ceiling_seconds
            );
            failed = true;
        }
        sections.push(section);
    }
    if drifted.load(Ordering::Relaxed) {
        failed = true;
    }

    let burst = match cold_burst(&options) {
        Ok(burst) => burst,
        Err(err) => {
            eprintln!("bench_service: {err}");
            std::process::exit(1);
        }
    };
    println!(
        "cold burst: {} threads, 1 engine run, {} coalesced, {} cache hits",
        burst.0, burst.1, burst.2
    );

    // Robustness phases (schema v2): each runs against a fresh service so
    // its stats don't pollute the warm-cache numbers above.
    let shed = match overload_shed(&options) {
        Ok(phase) => phase,
        Err(err) => {
            eprintln!("bench_service: {err}");
            std::process::exit(1);
        }
    };
    println!(
        "overload: {} requests, {} shed (shed rate {:.4})",
        shed.requests, shed.events, shed.rate
    );
    let deadline = match deadline_pressure(&options) {
        Ok(phase) => phase,
        Err(err) => {
            eprintln!("bench_service: {err}");
            std::process::exit(1);
        }
    };
    println!(
        "deadline: {} requests, {} deadline hits (hit rate {:.4})",
        deadline.requests, deadline.events, deadline.rate
    );
    let restart = match cold_restart(&options, &work) {
        Ok(phase) => phase,
        Err(err) => {
            eprintln!("bench_service: {err}");
            std::process::exit(1);
        }
    };
    println!(
        "cold restart: {} requests, {} warm hits (warm-hit rate {:.4})",
        restart.requests, restart.events, restart.rate
    );

    let cache = service.verifier().cache_stats();
    let serving = service.verifier().serving_stats();
    let hit_rate = cache.hits as f64 / (cache.hits + cache.misses).max(1) as f64;
    let coalescing_rate = serving.coalesced as f64 / service.requests_handled().max(1) as f64;
    let scaling = sections[2].throughput_rps / sections[0].throughput_rps;
    println!(
        "hit rate {:.4}, coalescing rate {:.4}, 8-thread scaling {scaling:.2}x",
        hit_rate, coalescing_rate
    );

    let mut out = String::from("{\n  \"schema\": \"retreet-bench-service/v2\",\n");
    out.push_str(
        "  \"methodology\": \"warm-cache NDJSON serving: corpus preloaded via warm_start, \
         then N client threads replay the full \\u00a75 request mix (race + equivalence + \
         validity) against one shared Service; every response is checked against the \
         paper's verdict; latencies are per-request wall clock including JSON parse; the \
         cold burst issues one identical cold query from 8 threads and asserts exactly one \
         engine run (single-flight); v2 adds three fresh-service robustness phases: shed \
         rate under a full 1-slot cold queue with stalled engines, deadline-hit rate with \
         engines stalled past a 60ms per-query deadline, and the warm-hit rate after a \
         cold restart from the persisted verdict store (must be 1.0 with zero engine \
         runs)\",\n",
    );
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!(
        "  \"budget\": {{ \"label\": \"{budget_label}\", \"race_nodes\": {}, \"equiv_nodes\": {}, \
         \"validity_nodes\": {}, \"valuations\": {} }},\n",
        options.race_nodes, options.equiv_nodes, options.validity_nodes, options.valuations
    ));
    out.push_str(&format!("  \"warm_start_preloaded\": {preloaded},\n"));
    out.push_str("  \"sections\": [\n");
    for (i, s) in sections.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"client_threads\": {}, \"requests\": {}, \"wall_seconds\": {:.4}, \
             \"throughput_rps\": {:.0}, \"p50_us\": {}, \"p99_us\": {} }}{}\n",
            s.client_threads,
            s.requests,
            s.wall_seconds,
            s.throughput_rps,
            s.p50_us,
            s.p99_us,
            if i + 1 < sections.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"scaling_8_over_1\": {scaling:.3},\n  \"cold_burst\": {{ \"threads\": {}, \
         \"engine_runs\": 1, \"coalesced\": {}, \"cache_hits\": {} }},\n",
        burst.0, burst.1, burst.2
    ));
    out.push_str(&format!(
        "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"collisions\": {}, \"entries\": {}, \
         \"hit_rate\": {hit_rate:.4} }},\n",
        cache.hits, cache.misses, cache.collisions, cache.entries
    ));
    out.push_str(&format!(
        "  \"serving\": {{ \"engine_runs\": {}, \"cancelled_runs\": {}, \"coalesced\": {}, \
         \"panicked_runs\": {}, \"deadline_hits\": {}, \"degraded\": {}, \
         \"coalescing_rate\": {coalescing_rate:.4} }},\n",
        serving.engine_runs,
        serving.cancelled_runs,
        serving.coalesced,
        serving.panicked_runs,
        serving.deadline_hits,
        serving.degraded
    ));
    out.push_str(&format!(
        "  \"robustness\": {{\n    \"shed\": {{ \"requests\": {}, \"shed\": {}, \
         \"shed_rate\": {:.4} }},\n    \"deadline\": {{ \"requests\": {}, \
         \"deadline_hits\": {}, \"deadline_hit_rate\": {:.4} }},\n    \
         \"cold_restart\": {{ \"requests\": {}, \"warm_hits\": {}, \
         \"warm_hit_rate\": {:.4} }}\n  }}\n}}\n",
        shed.requests,
        shed.events,
        shed.rate,
        deadline.requests,
        deadline.events,
        deadline.rate,
        restart.requests,
        restart.events,
        restart.rate
    ));
    if let Err(err) = std::fs::write(&args.out, &out) {
        eprintln!("bench_service: cannot write {}: {err}", args.out);
        std::process::exit(1);
    }
    println!("report written to {}", args.out);

    if scaling < args.min_scaling {
        eprintln!(
            "bench_service: 8-thread scaling {scaling:.2}x below the required {:.2}x",
            args.min_scaling
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
