//! `bench_transform` — the certified-transform benchmark.
//!
//! Synthesizes every fusable §5 case through `retreet-transform`, checks
//! the certificates, measures the certified fusion against the sequential
//! pass composition — both compiled to the `retreet-codegen` VM tier and
//! differential-checked against the interpreter before timing — and writes
//! the machine-readable report to `BENCH_transform.json` at the repository
//! root.
//!
//! ```text
//! bench_transform [--quick] [--out PATH] [--min-speedup X]
//!                 [--batches N] [--per-batch N]
//! ```
//!
//! * `--quick` — quick certification budget and smaller trees (the CI
//!   perf-smoke mode).
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_transform.json` in the current directory).
//! * `--min-speedup X` — exit non-zero when any fused workload fails to
//!   reach `X`× over its sequential composition (default 1.0: the fused
//!   pass must at least match the sequential composition).
//! * `--batches N` / `--per-batch N` — timing loop shape (default 5 × 3,
//!   best-of-batches).
//!
//! The process fails on **certificate drift** (any §5 fusion the transform
//! layer can no longer synthesize-and-certify as an equivalence) and on
//! **execution drift** (a fused or sequential program whose VM run diverges
//! from the interpreter reference) — both are correctness regressions, not
//! performance numbers.

use retreet_bench::{
    certify_transforms, measure_transform_perf, render_transform_report, transform_report_to_json,
    Budget,
};

struct Args {
    quick: bool,
    out: String,
    min_speedup: f64,
    batches: usize,
    per_batch: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: String::from("BENCH_transform.json"),
        min_speedup: 1.0,
        batches: 5,
        per_batch: 3,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = value("--out")?,
            "--min-speedup" => {
                args.min_speedup = value("--min-speedup")?
                    .parse()
                    .map_err(|e| format!("--min-speedup: {e}"))?
            }
            "--batches" => {
                args.batches = value("--batches")?
                    .parse()
                    .map_err(|e| format!("--batches: {e}"))?
            }
            "--per-batch" => {
                args.per_batch = value("--per-batch")?
                    .parse()
                    .map_err(|e| format!("--per-batch: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "bench_transform [--quick] [--out PATH] [--min-speedup X] \
                     [--batches N] [--per-batch N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench_transform: {message}");
            std::process::exit(2);
        }
    };

    let (label, budget, tree_height) = if args.quick {
        ("quick", Budget::quick(), 10)
    } else {
        ("full", Budget::default(), 14)
    };

    println!("== certificates ({label} budget) ==");
    let certs = certify_transforms(&budget);
    // The runtime rows execute through the compiled VM tier; the verifier
    // here backs certified lowering, so its cache stays enabled.
    let perf = measure_transform_perf(
        &budget.tune_verifier(),
        args.batches,
        args.per_batch,
        tree_height,
    );
    print!("{}", render_transform_report(&certs, &perf));

    let json = transform_report_to_json(label, &budget, &certs, &perf);
    if let Err(err) = std::fs::write(&args.out, &json) {
        eprintln!("bench_transform: cannot write {}: {err}", args.out);
        std::process::exit(1);
    }
    println!("report written to {}", args.out);

    let mut failed = false;
    for row in &certs {
        if !row.certified || row.kind != "equivalence" {
            eprintln!(
                "bench_transform: certificate drift on {} ({}): {}",
                row.id, row.case, row.detail
            );
            failed = true;
        }
    }
    for row in &perf {
        if row.drift {
            eprintln!(
                "bench_transform: {} diverged from the interpreter reference on the VM tier",
                row.id
            );
            failed = true;
        }
        if row.speedup() < args.min_speedup {
            eprintln!(
                "bench_transform: {} fused pass reached only {:.2}x (minimum {:.2}x)",
                row.id,
                row.speedup(),
                args.min_speedup
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
