//! `bench_transform` — the certified-transform benchmark.
//!
//! Synthesizes every fusable §5 case through `retreet-transform`, checks
//! the certificates, measures the fused single pass against the sequential
//! pass composition on concrete workloads, and writes the machine-readable
//! report to `BENCH_transform.json` at the repository root.
//!
//! ```text
//! bench_transform [--quick] [--out PATH] [--min-speedup X]
//!                 [--batches N] [--per-batch N]
//! ```
//!
//! * `--quick` — quick certification budget and smaller workloads (the CI
//!   perf-smoke mode).
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_transform.json` in the current directory).
//! * `--min-speedup X` — exit non-zero when any fused workload fails to
//!   reach `X`× over its sequential composition (default 1.0: the fused
//!   pass must at least match the sequential composition).
//! * `--batches N` / `--per-batch N` — timing loop shape (default 5 × 3,
//!   best-of-batches).
//!
//! The process fails on **certificate drift**: any §5 fusion the transform
//! layer can no longer synthesize-and-certify as an equivalence (or whose
//! output stops validating/roundtripping) is a correctness regression, not
//! a performance number.

use retreet_bench::{
    certify_transforms, measure_transform_perf, render_transform_report, transform_report_to_json,
    Budget,
};

struct Args {
    quick: bool,
    out: String,
    min_speedup: f64,
    batches: usize,
    per_batch: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: String::from("BENCH_transform.json"),
        min_speedup: 1.0,
        batches: 5,
        per_batch: 3,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = value("--out")?,
            "--min-speedup" => {
                args.min_speedup = value("--min-speedup")?
                    .parse()
                    .map_err(|e| format!("--min-speedup: {e}"))?
            }
            "--batches" => {
                args.batches = value("--batches")?
                    .parse()
                    .map_err(|e| format!("--batches: {e}"))?
            }
            "--per-batch" => {
                args.per_batch = value("--per-batch")?
                    .parse()
                    .map_err(|e| format!("--per-batch: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "bench_transform [--quick] [--out PATH] [--min-speedup X] \
                     [--batches N] [--per-batch N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench_transform: {message}");
            std::process::exit(2);
        }
    };

    let (label, budget, tree_height, css_rules) = if args.quick {
        ("quick", Budget::quick(), 14, 500)
    } else {
        ("full", Budget::default(), 18, 5_000)
    };

    println!("== certificates ({label} budget) ==");
    let certs = certify_transforms(&budget);
    let perf = measure_transform_perf(args.batches, args.per_batch, tree_height, css_rules);
    print!("{}", render_transform_report(&certs, &perf));

    let json = transform_report_to_json(label, &budget, &certs, &perf);
    if let Err(err) = std::fs::write(&args.out, &json) {
        eprintln!("bench_transform: cannot write {}: {err}", args.out);
        std::process::exit(1);
    }
    println!("report written to {}", args.out);

    let mut failed = false;
    for row in &certs {
        if !row.certified || row.kind != "equivalence" {
            eprintln!(
                "bench_transform: certificate drift on {} ({}): {}",
                row.id, row.case, row.detail
            );
            failed = true;
        }
    }
    for row in &perf {
        if row.speedup() < args.min_speedup {
            eprintln!(
                "bench_transform: {} fused pass reached only {:.2}x (minimum {:.2}x)",
                row.id,
                row.speedup(),
                args.min_speedup
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
