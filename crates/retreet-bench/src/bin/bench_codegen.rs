//! `bench_codegen` — the bytecode-VM execution-tier benchmark.
//!
//! Compiles every executable §5 workload through `retreet-codegen` (with
//! verifier-certified iterative lowering), differential-checks the VM
//! against the reference interpreter, measures interpreter vs VM vs
//! VM-on-certified-fusion on concrete trees, and writes the
//! machine-readable report to `BENCH_codegen.json` at the repository root.
//!
//! ```text
//! bench_codegen [--quick] [--out PATH] [--min-speedup X]
//!               [--batches N] [--per-batch N]
//! ```
//!
//! * `--quick` — smaller trees (the CI perf-smoke mode).
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_codegen.json` in the current directory).
//! * `--min-speedup X` — exit non-zero when the best VM speedup over the
//!   interpreter stays below `X`× (default 1.0).
//! * `--batches N` / `--per-batch N` — timing loop shape (default 5 × 3,
//!   best-of-batches).
//!
//! The process fails on **drift**: any workload whose VM returns or
//! post-run tree diverge from the interpreter is a correctness regression,
//! not a performance number.  It also fails if any emitted lowering
//! certificate carries a non-equivalence verdict, or if the recompile
//! phase fails to serve its verdicts from the cache (the honesty check on
//! the `cached` flag).

use retreet_bench::{codegen_report_to_json, measure_codegen_perf, render_codegen_report};
use retreet_verify::Verifier;

struct Args {
    quick: bool,
    out: String,
    min_speedup: f64,
    batches: usize,
    per_batch: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: String::from("BENCH_codegen.json"),
        min_speedup: 1.0,
        batches: 5,
        per_batch: 3,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = value("--out")?,
            "--min-speedup" => {
                args.min_speedup = value("--min-speedup")?
                    .parse()
                    .map_err(|e| format!("--min-speedup: {e}"))?
            }
            "--batches" => {
                args.batches = value("--batches")?
                    .parse()
                    .map_err(|e| format!("--batches: {e}"))?
            }
            "--per-batch" => {
                args.per_batch = value("--per-batch")?
                    .parse()
                    .map_err(|e| format!("--per-batch: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "bench_codegen [--quick] [--out PATH] [--min-speedup X] \
                     [--batches N] [--per-batch N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench_codegen: {message}");
            std::process::exit(2);
        }
    };

    let (label, tree_height) = if args.quick {
        ("quick", 10)
    } else {
        ("full", 14)
    };

    // Cache *enabled*, unlike the verdict-timing benches: the recompile
    // phase exists to show the cached serving path, honestly flagged.
    let verifier = Verifier::builder().build();

    println!("== codegen tier ({label}, complete trees of height {tree_height}) ==");
    let (rows, certs) = measure_codegen_perf(&verifier, args.batches, args.per_batch, tree_height);
    print!("{}", render_codegen_report(&rows, &certs));

    let json = codegen_report_to_json(label, tree_height, &rows, &certs);
    if let Err(err) = std::fs::write(&args.out, &json) {
        eprintln!("bench_codegen: cannot write {}: {err}", args.out);
        std::process::exit(1);
    }
    println!("report written to {}", args.out);

    let mut failed = false;
    for row in &rows {
        if row.drift {
            eprintln!(
                "bench_codegen: {} VM output diverged from the interpreter ({})",
                row.id, row.case
            );
            failed = true;
        }
    }
    for cert in &certs {
        if cert.phase == "recompile" && !cert.cached {
            eprintln!(
                "bench_codegen: {} recompile of {} was not served from the verdict cache",
                cert.workload, cert.func
            );
            failed = true;
        }
    }
    let best = rows.iter().map(|r| r.vm_speedup()).fold(0.0_f64, f64::max);
    if best < args.min_speedup {
        eprintln!(
            "bench_codegen: best VM speedup {:.2}x below minimum {:.2}x",
            best, args.min_speedup
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
