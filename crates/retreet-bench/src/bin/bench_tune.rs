//! `bench_tune` — the certified schedule autotuner benchmark.
//!
//! Runs `retreet_runtime::tune_and_compile` (the VM-backed cost model over
//! `retreet_transform::tune`'s schedule search) on all four §5 experiment
//! families, prints per-family candidate tables with certificates, and
//! writes the machine-readable report to `BENCH_tune.json` at the
//! repository root.
//!
//! ```text
//! bench_tune [--quick] [--out PATH] [--batches N] [--per-batch N]
//! ```
//!
//! * `--quick` — quick certification budget and smaller measurement trees
//!   (the CI perf-smoke mode).
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_tune.json` in the current directory).
//! * `--batches N` / `--per-batch N` — timing loop shape (overrides the
//!   budget's defaults, best-of-batches).
//!
//! The process fails on three regressions, none of which is a performance
//! number:
//!
//! * **drift** — the winning schedule's VM run diverges from the original
//!   program's interpreter reference;
//! * **baseline regression** — a tuned cost above
//!   best-of{original, canonical fusion}, violating the tuner's guarantee;
//! * **missing certificate** — a winner whose verdict lacks engine or
//!   soundness provenance.

use retreet_bench::{measure_tune, render_tune_report, tune_report_to_json, Budget};
use retreet_transform::TuneOptions;

struct Args {
    quick: bool,
    out: String,
    batches: Option<usize>,
    per_batch: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: String::from("BENCH_tune.json"),
        batches: None,
        per_batch: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = value("--out")?,
            "--batches" => {
                args.batches = Some(
                    value("--batches")?
                        .parse()
                        .map_err(|e| format!("--batches: {e}"))?,
                )
            }
            "--per-batch" => {
                args.per_batch = Some(
                    value("--per-batch")?
                        .parse()
                        .map_err(|e| format!("--per-batch: {e}"))?,
                )
            }
            "--help" | "-h" => {
                println!("bench_tune [--quick] [--out PATH] [--batches N] [--per-batch N]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench_tune: {message}");
            std::process::exit(2);
        }
    };

    let (label, budget, mut options) = if args.quick {
        ("quick", Budget::quick(), TuneOptions::quick())
    } else {
        (
            "full",
            Budget::default(),
            // Height 14 matches bench_transform's full trees — large enough
            // that whole-pass fusion stops paying on E3/E4a (the working
            // set outgrows cache) and the tuner's schedule choice matters.
            TuneOptions {
                tree_height: 14,
                batches: 5,
                per_batch: 3,
                ..TuneOptions::default()
            },
        )
    };
    if let Some(batches) = args.batches {
        options.batches = batches;
    }
    if let Some(per_batch) = args.per_batch {
        options.per_batch = per_batch;
    }

    println!(
        "== schedule autotuner ({label} budget, trees of height {}) ==",
        options.tree_height
    );
    let verifier = budget.tune_verifier();
    let rows = measure_tune(&verifier, &options);
    print!("{}", render_tune_report(&rows));

    let json = tune_report_to_json(label, &budget, &options, &rows);
    if let Err(err) = std::fs::write(&args.out, &json) {
        eprintln!("bench_tune: cannot write {}: {err}", args.out);
        std::process::exit(1);
    }
    println!("\nreport written to {}", args.out);

    let mut failed = false;
    for row in &rows {
        if row.drift {
            eprintln!(
                "bench_tune: {} winner diverged from the interpreter reference",
                row.id
            );
            failed = true;
        }
        if row.regressed() {
            eprintln!(
                "bench_tune: {} tuned schedule is slower than the best baseline \
                 ({:.6}s > {:.6}s) — the tuner's guarantee is broken",
                row.id,
                row.tuned_seconds,
                row.best_baseline_seconds()
            );
            failed = true;
        }
        if row.winner_kind.is_empty()
            || row.winner_engine.is_empty()
            || row.winner_soundness.is_empty()
        {
            eprintln!(
                "bench_tune: {} winner carries no certificate provenance",
                row.id
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
