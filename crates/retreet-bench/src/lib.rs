//! # retreet-bench — the experiment harness
//!
//! One function per row of the paper's evaluation (§5).  Each returns an
//! [`ExperimentResult`] carrying the verdict, the paper's expected verdict,
//! and the wall-clock time, so that the Criterion benches, the examples and
//! EXPERIMENTS.md are all generated from the same code paths.
//!
//! Every query goes through the unified [`retreet_verify::Verifier`] façade;
//! the harness builds its verifiers with the cache *disabled* so measured
//! times reflect real engine work, not cache hits (the cache's own win is
//! measured separately by the `perf_portfolio` bench).
//!
//! Absolute times are not comparable to the paper's MONA runtimes (different
//! decision procedure, different hardware); what must match is every verdict
//! and the relative difficulty ordering (cycletree fusion ≫ CSS fusion ≫ the
//! small cases; race queries cheaper than equivalence queries).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use retreet_analysis::coarse;
use retreet_lang::corpus;
use retreet_verify::{Outcome, Query, Verifier};

/// The verdict of one experiment, in the vocabulary of §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The transformation was proven correct (fusion accepted).
    Valid,
    /// A counterexample to the transformation was found.
    Invalid,
    /// The parallel composition is data-race-free.
    RaceFree,
    /// A data race was found.
    Race,
}

impl Verdict {
    fn as_str(self) -> &'static str {
        match self {
            Verdict::Valid => "Valid",
            Verdict::Invalid => "Invalid",
            Verdict::RaceFree => "RaceFree",
            Verdict::Race => "Race",
        }
    }
}

/// The outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment identifier (E1a, E1b, …) as used in DESIGN.md.
    pub id: &'static str,
    /// Human-readable description.
    pub description: &'static str,
    /// The verdict produced by this reproduction.
    pub verdict: Verdict,
    /// The verdict the paper reports.
    pub expected: Verdict,
    /// MONA's wall-clock time in the paper, in seconds (for context only).
    pub paper_seconds: f64,
    /// Wall-clock time of the winning engine, in seconds.
    pub measured_seconds: f64,
    /// Which portfolio engine produced the verdict.
    pub engine: &'static str,
    /// How far the verdict's guarantee extends (`"unbounded"` or the
    /// bounded-budget rendering), straight from the façade's
    /// [`retreet_verify::Soundness`].
    pub soundness: String,
    /// Extra detail (counterexample summary, model counts, …).
    pub detail: String,
}

impl ExperimentResult {
    /// True when this reproduction's verdict matches the paper's.
    pub fn matches_paper(&self) -> bool {
        self.verdict == self.expected
    }
}

/// Analysis budget used by the experiment harness; benches can scale it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Budget {
    /// Maximum tree size (nodes) for equivalence checking.
    pub equiv_nodes: usize,
    /// Field valuations per shape for equivalence checking.
    pub equiv_valuations: usize,
    /// Maximum tree size (nodes) for race checking.
    pub race_nodes: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            equiv_nodes: 5,
            equiv_valuations: 2,
            race_nodes: 4,
        }
    }
}

impl Budget {
    /// A smaller budget for quick smoke runs (used by `cargo test`).
    pub fn quick() -> Self {
        Budget {
            equiv_nodes: 4,
            equiv_valuations: 1,
            race_nodes: 3,
        }
    }

    /// The façade verifier this budget induces for equivalence queries
    /// (cache disabled so every run measures real engine work).
    pub fn equivalence_verifier(&self) -> Verifier {
        Verifier::builder()
            .equiv_nodes(self.equiv_nodes)
            .valuations(self.equiv_valuations)
            .check_dependence_order(true)
            .cache_capacity(0)
            .build()
    }

    /// The façade verifier this budget induces for race queries (one
    /// valuation per shape, like the paper's race rows; cache disabled).
    pub fn race_verifier(&self) -> Verifier {
        Verifier::builder()
            .race_nodes(self.race_nodes)
            .valuations(1)
            .cache_capacity(0)
            .build()
    }

    /// The façade verifier the schedule autotuner uses: both query kinds
    /// under this budget with the verdict cache **enabled** — the tuner
    /// certifies dozens of candidates through one `verify_batch` call and
    /// recompiles the winner, so shared cache/coalescing state is part of
    /// what the tune bench exercises (unlike the engine benches, which
    /// disable the cache to time raw engine work).
    pub fn tune_verifier(&self) -> Verifier {
        Verifier::builder()
            .equiv_nodes(self.equiv_nodes)
            .valuations(self.equiv_valuations)
            .race_nodes(self.race_nodes)
            .check_dependence_order(true)
            .build()
    }
}

fn equivalence_experiment(
    id: &'static str,
    description: &'static str,
    paper_seconds: f64,
    expected: Verdict,
    original: &retreet_lang::ast::Program,
    transformed: &retreet_lang::ast::Program,
    budget: &Budget,
) -> ExperimentResult {
    let verifier = budget.equivalence_verifier();
    let verdict = verifier
        .verify(Query::Equivalence(original, transformed))
        .expect("corpus programs are well-formed");
    let (kind, detail) = match &verdict.outcome {
        Outcome::Equivalent { trees_checked: 0 } => (
            Verdict::Valid,
            String::from("equivalent on every tree (fusion correspondence)"),
        ),
        Outcome::Equivalent { trees_checked } => (
            Verdict::Valid,
            format!("equivalent on {trees_checked} bounded models"),
        ),
        Outcome::NotEquivalent(ce) => (
            Verdict::Invalid,
            format!("counterexample: {:?}", ce.disagreement),
        ),
        other => unreachable!("equivalence query produced {other:?}"),
    };
    ExperimentResult {
        id,
        description,
        verdict: kind,
        expected,
        paper_seconds,
        measured_seconds: verdict.elapsed.as_secs_f64(),
        engine: verdict.engine.name(),
        soundness: verdict.soundness.to_string(),
        detail,
    }
}

fn race_experiment(
    id: &'static str,
    description: &'static str,
    paper_seconds: f64,
    expected: Verdict,
    program: &retreet_lang::ast::Program,
    budget: &Budget,
) -> ExperimentResult {
    let verifier = budget.race_verifier();
    let verdict = verifier
        .verify(Query::DataRace(program))
        .expect("corpus programs are well-formed");
    let (kind, detail) = match &verdict.outcome {
        Outcome::RaceFree {
            trees_checked: 0,
            configurations: 0,
        } => (
            Verdict::RaceFree,
            String::from("race-free on every tree (structural access summaries)"),
        ),
        Outcome::RaceFree {
            trees_checked,
            configurations,
        } => (
            Verdict::RaceFree,
            format!("race-free over {trees_checked} trees / {configurations} configurations"),
        ),
        Outcome::Race(witness) => (
            Verdict::Race,
            format!(
                "race on {}.{} between {} and {}",
                witness.node, witness.field, witness.first, witness.second
            ),
        ),
        other => unreachable!("race query produced {other:?}"),
    };
    ExperimentResult {
        id,
        description,
        verdict: kind,
        expected,
        paper_seconds,
        measured_seconds: verdict.elapsed.as_secs_f64(),
        engine: verdict.engine.name(),
        soundness: verdict.soundness.to_string(),
        detail,
    }
}

/// E1a — fuse the mutually recursive `Odd`/`Even` traversals (Fig. 6a).
pub fn e1a_size_counting_fusion(budget: &Budget) -> ExperimentResult {
    equivalence_experiment(
        "E1a",
        "size counting: fuse Odd/Even into Fused (Fig. 6a)",
        0.14,
        Verdict::Valid,
        &corpus::size_counting_sequential(),
        &corpus::size_counting_fused(),
        budget,
    )
}

/// E1b — the invalid fusion of Fig. 6b must be rejected with a counterexample.
pub fn e1b_size_counting_invalid_fusion(budget: &Budget) -> ExperimentResult {
    equivalence_experiment(
        "E1b",
        "size counting: invalid fusion (Fig. 6b) is rejected",
        0.14,
        Verdict::Invalid,
        &corpus::size_counting_sequential(),
        &corpus::size_counting_fused_invalid(),
        budget,
    )
}

/// E1c — `Odd(n) ‖ Even(n)` is data-race-free.
pub fn e1c_size_counting_race_freedom(budget: &Budget) -> ExperimentResult {
    race_experiment(
        "E1c",
        "size counting: Odd(n) || Even(n) is data-race-free",
        0.02,
        Verdict::RaceFree,
        &corpus::size_counting_parallel(),
        budget,
    )
}

/// E2 — fuse the tree-mutation pair `Swap`; `IncrmLeft` (Fig. 7).
pub fn e2_tree_mutation_fusion(budget: &Budget) -> ExperimentResult {
    equivalence_experiment(
        "E2",
        "tree mutation: fuse Swap; IncrmLeft after flag conversion (Fig. 7)",
        0.12,
        Verdict::Valid,
        &corpus::tree_mutation_original(),
        &corpus::tree_mutation_fused(),
        budget,
    )
}

/// E3 — fuse the three CSS minification traversals (Fig. 8).
pub fn e3_css_minification_fusion(budget: &Budget) -> ExperimentResult {
    equivalence_experiment(
        "E3",
        "CSS minification: fuse ConvertValues; MinifyFont; ReduceInit (Fig. 8)",
        6.88,
        Verdict::Valid,
        &corpus::css_minify_original(),
        &corpus::css_minify_fused(),
        budget,
    )
}

/// E4a — fuse the cycletree numbering and routing traversals (Fig. 9).
pub fn e4a_cycletree_fusion(budget: &Budget) -> ExperimentResult {
    equivalence_experiment(
        "E4a",
        "cycletree: fuse RootMode + ComputeRouting (Fig. 9)",
        490.55,
        Verdict::Valid,
        &corpus::cycletree_original(),
        &corpus::cycletree_fused(),
        budget,
    )
}

/// E4b — parallelizing the cycletree traversals races on `num`.
pub fn e4b_cycletree_parallelization_race(budget: &Budget) -> ExperimentResult {
    race_experiment(
        "E4b",
        "cycletree: RootMode || ComputeRouting has a data race on num",
        0.95,
        Verdict::Race,
        &corpus::cycletree_parallel(),
        budget,
    )
}

/// The coarse-baseline ablation (P3): which fusions does a TreeFuser-style
/// field-granularity analysis reject that the fine-grained check accepts?
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Case-study name.
    pub case: &'static str,
    /// Verdict of the coarse (field-granularity) baseline.
    pub coarse_accepts: bool,
    /// Verdict of the fine-grained (Retreet-style) check.
    pub fine_grained_accepts: bool,
}

/// Runs the granularity ablation for the three fusion case studies.
pub fn ablation_granularity(budget: &Budget) -> Vec<AblationRow> {
    let verifier = budget.equivalence_verifier();
    let fine = |original: &retreet_lang::ast::Program, fused: &retreet_lang::ast::Program| {
        verifier
            .verify(Query::Equivalence(original, fused))
            .expect("corpus programs are well-formed")
            .is_equivalent()
    };
    vec![
        AblationRow {
            case: "size_counting",
            coarse_accepts: coarse::coarse_fusion_ok(&corpus::size_counting_sequential()),
            fine_grained_accepts: fine(
                &corpus::size_counting_sequential(),
                &corpus::size_counting_fused(),
            ),
        },
        AblationRow {
            case: "css_minification",
            coarse_accepts: coarse::coarse_fusion_ok(&corpus::css_minify_original()),
            fine_grained_accepts: fine(&corpus::css_minify_original(), &corpus::css_minify_fused()),
        },
        AblationRow {
            case: "cycletree",
            coarse_accepts: coarse::coarse_fusion_ok(&corpus::cycletree_original()),
            fine_grained_accepts: fine(&corpus::cycletree_original(), &corpus::cycletree_fused()),
        },
    ]
}

/// Runs every verification experiment (E1a–E4b) with the given budget.
pub fn run_all(budget: &Budget) -> Vec<ExperimentResult> {
    vec![
        e1a_size_counting_fusion(budget),
        e1b_size_counting_invalid_fusion(budget),
        e1c_size_counting_race_freedom(budget),
        e2_tree_mutation_fusion(budget),
        e3_css_minification_fusion(budget),
        e4a_cycletree_fusion(budget),
        e4b_cycletree_parallelization_race(budget),
    ]
}

/// Renders results as an aligned text table (used by examples and by the
/// bench harness to regenerate EXPERIMENTS.md content).
pub fn render_table(results: &[ExperimentResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<5} {:<62} {:>10} {:>14} {:>12} {:>12} {:>8}\n",
        "id", "experiment", "verdict", "engine", "paper (s)", "measured (s)", "match"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<5} {:<62} {:>10} {:>14} {:>12.2} {:>12.4} {:>8}\n",
            r.id,
            r.description,
            r.verdict.as_str(),
            r.engine,
            r.paper_seconds,
            r.measured_seconds,
            if r.matches_paper() { "yes" } else { "NO" }
        ));
    }
    out
}

// The one JSON string-escaping implementation lives with the NDJSON wire
// protocol in `retreet-serve`; the report writers here share it rather
// than keep a drifting duplicate in sync by hand.
use retreet_serve::json::escape as json_escape;

/// Serializes results to JSON (machine-readable experiment record).
///
/// Hand-rolled: the build environment is fully offline, so `serde_json`
/// cannot be a dependency; the emitted document is plain JSON regardless.
pub fn to_json(results: &[ExperimentResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\n    \"id\": \"{}\",\n    \"description\": \"{}\",\n    \"verdict\": \"{}\",\n    \
             \"expected\": \"{}\",\n    \"paper_seconds\": {},\n    \"measured_seconds\": {},\n    \
             \"engine\": \"{}\",\n    \"soundness\": \"{}\",\n    \"detail\": \"{}\"\n  }}{}\n",
            json_escape(r.id),
            json_escape(r.description),
            r.verdict.as_str(),
            r.expected.as_str(),
            r.paper_seconds,
            r.measured_seconds,
            json_escape(r.engine),
            json_escape(&r.soundness),
            json_escape(&r.detail),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push(']');
    out
}

/// One row of the engine-performance report: the same §5 experiment run
/// through the frozen naive engines ("before") and the optimized engines
/// ("after"), with best-of-batches wall-clock for both.
#[derive(Debug, Clone)]
pub struct EnginePerfRow {
    /// Experiment identifier (E1a, E1b, …).
    pub id: &'static str,
    /// Human-readable description.
    pub description: &'static str,
    /// Query kind: `"race"` or `"equivalence"`.
    pub kind: &'static str,
    /// The optimized engine's verdict.
    pub verdict: Verdict,
    /// The verdict the paper reports.
    pub expected: Verdict,
    /// Engine provenance of the optimized verdict (from the façade).
    pub engine: &'static str,
    /// Soundness of the optimized verdict (`"unbounded"` or the bounded
    /// rendering); `bench_engines` gates on regressions of this field.
    pub soundness: String,
    /// True when the frozen naive engine returned the same verdict.
    pub verdicts_agree: bool,
    /// Best-of-batches wall-clock of the naive ("before") engine, seconds.
    pub naive_seconds: f64,
    /// Best-of-batches wall-clock of the optimized ("after") engine through
    /// the façade, seconds.
    pub optimized_seconds: f64,
}

impl EnginePerfRow {
    /// naive / optimized.
    pub fn speedup(&self) -> f64 {
        self.naive_seconds / self.optimized_seconds
    }

    /// True when this reproduction's verdict matches the paper's.
    pub fn matches_paper(&self) -> bool {
        self.verdict == self.expected
    }
}

/// Best (minimum) mean-per-call wall-clock over `batches` batches of
/// `per_batch` calls — the noise-robust measurement the perf report uses.
fn best_of<F: FnMut()>(batches: usize, per_batch: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..batches.max(1) {
        let start = std::time::Instant::now();
        for _ in 0..per_batch.max(1) {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / per_batch.max(1) as f64);
    }
    best
}

/// Runs every §5 experiment under `budget` through both the frozen naive
/// engines and the optimized façade engines, timing each with
/// best-of-`batches` × `per_batch`.
///
/// Methodology: verdict caching is disabled (every call runs the engine),
/// and timings are steady-state — derived per-program analysis state
/// (block tables, path summaries, the solver memo) persists across calls
/// exactly as it does in the ROADMAP's serving scenario.  The naive path
/// has no such state by construction, matching the seed revision.
pub fn measure_engine_perf(
    budget: &Budget,
    batches: usize,
    per_batch: usize,
) -> Vec<EnginePerfRow> {
    use retreet_analysis::equiv::EquivOptions;
    use retreet_analysis::naive;
    use retreet_analysis::race::RaceOptions;

    let equiv_options = EquivOptions::builder()
        .max_nodes(budget.equiv_nodes)
        .valuations(budget.equiv_valuations)
        .check_dependence_order(true)
        .build();
    // One valuation per shape, matching `Budget::race_verifier`.
    let race_options = RaceOptions::builder()
        .max_nodes(budget.race_nodes)
        .valuations(1)
        .build();

    type EquivCase = (
        fn(&Budget) -> ExperimentResult,
        retreet_lang::ast::Program,
        retreet_lang::ast::Program,
    );
    type RaceCase = (fn(&Budget) -> ExperimentResult, retreet_lang::ast::Program);

    let mut rows = Vec::new();
    let equivalences: [EquivCase; 5] = [
        (
            e1a_size_counting_fusion,
            corpus::size_counting_sequential(),
            corpus::size_counting_fused(),
        ),
        (
            e1b_size_counting_invalid_fusion,
            corpus::size_counting_sequential(),
            corpus::size_counting_fused_invalid(),
        ),
        (
            e2_tree_mutation_fusion,
            corpus::tree_mutation_original(),
            corpus::tree_mutation_fused(),
        ),
        (
            e3_css_minification_fusion,
            corpus::css_minify_original(),
            corpus::css_minify_fused(),
        ),
        (
            e4a_cycletree_fusion,
            corpus::cycletree_original(),
            corpus::cycletree_fused(),
        ),
    ];
    for (run_optimized, original, transformed) in &equivalences {
        let result = run_optimized(budget);
        let naive_verdict = naive::check_equivalence(original, transformed, &equiv_options);
        let naive_kind = if naive_verdict.is_equivalent() {
            Verdict::Valid
        } else {
            Verdict::Invalid
        };
        let naive_seconds = best_of(batches, per_batch, || {
            let v = naive::check_equivalence(original, transformed, &equiv_options);
            std::hint::black_box(&v);
        });
        let optimized_seconds = best_of(batches, per_batch, || {
            let r = run_optimized(budget);
            std::hint::black_box(&r);
        });
        rows.push(EnginePerfRow {
            id: result.id,
            description: result.description,
            kind: "equivalence",
            verdict: result.verdict,
            expected: result.expected,
            engine: result.engine,
            soundness: result.soundness.clone(),
            verdicts_agree: naive_kind == result.verdict,
            naive_seconds,
            optimized_seconds,
        });
    }

    let races: [RaceCase; 2] = [
        (
            e1c_size_counting_race_freedom,
            corpus::size_counting_parallel(),
        ),
        (
            e4b_cycletree_parallelization_race,
            corpus::cycletree_parallel(),
        ),
    ];
    for (run_optimized, program) in &races {
        let result = run_optimized(budget);
        let naive_verdict = naive::check_data_race(program, &race_options);
        let naive_kind = if naive_verdict.is_race_free() {
            Verdict::RaceFree
        } else {
            Verdict::Race
        };
        let naive_seconds = best_of(batches, per_batch, || {
            let v = naive::check_data_race(program, &race_options);
            std::hint::black_box(&v);
        });
        let optimized_seconds = best_of(batches, per_batch, || {
            let r = run_optimized(budget);
            std::hint::black_box(&r);
        });
        rows.push(EnginePerfRow {
            id: result.id,
            description: result.description,
            kind: "race",
            verdict: result.verdict,
            expected: result.expected,
            engine: result.engine,
            soundness: result.soundness.clone(),
            verdicts_agree: naive_kind == result.verdict,
            naive_seconds,
            optimized_seconds,
        });
    }
    // Keep the §5 ordering: E1a, E1b, E1c, E2, E3, E4a, E4b.
    rows.sort_by_key(|row| row.id);
    rows
}

/// Renders one budget's perf rows as an aligned text table.
pub fn render_engine_perf(rows: &[EnginePerfRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<5} {:<12} {:>10} {:>14} {:>10} {:>12} {:>14} {:>9} {:>7}\n",
        "id",
        "kind",
        "verdict",
        "engine",
        "soundness",
        "naive (ms)",
        "optimized (ms)",
        "speedup",
        "match"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<5} {:<12} {:>10} {:>14} {:>10} {:>12.4} {:>14.4} {:>8.2}x {:>7}\n",
            row.id,
            row.kind,
            row.verdict.as_str(),
            row.engine,
            if row.soundness == "unbounded" {
                "unbounded"
            } else {
                "bounded"
            },
            row.naive_seconds * 1e3,
            row.optimized_seconds * 1e3,
            row.speedup(),
            if row.matches_paper() && row.verdicts_agree {
                "yes"
            } else {
                "NO"
            }
        ));
    }
    out
}

/// Serializes the full engine-performance report (one section per budget)
/// to the `BENCH_engines.json` document.  See `crates/README.md` for the
/// format description.
pub fn engine_perf_to_json(sections: &[(&str, &Budget, Vec<EnginePerfRow>)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"retreet-bench-engines/v1\",\n");
    out.push_str(
        "  \"methodology\": \"best-of-batches wall-clock per full query; verdict cache \
         disabled; naive = seed engine algorithms (retreet_analysis::naive; shares the \
         reworked interpreter plumbing, so speedups are conservative lower bounds vs \
         the seed), optimized = facade engine portfolio with shared per-program \
         analysis state\",\n",
    );
    out.push_str("  \"budgets\": {\n");
    for (s, (label, budget, rows)) in sections.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\n      \"race_nodes\": {},\n      \"equiv_nodes\": {},\n      \
             \"equiv_valuations\": {},\n      \"experiments\": [\n",
            json_escape(label),
            budget.race_nodes,
            budget.equiv_nodes,
            budget.equiv_valuations,
        ));
        for (i, row) in rows.iter().enumerate() {
            out.push_str(&format!(
                "        {{\n          \"id\": \"{}\",\n          \"kind\": \"{}\",\n          \
                 \"description\": \"{}\",\n          \"verdict\": \"{}\",\n          \
                 \"expected\": \"{}\",\n          \"matches_paper\": {},\n          \
                 \"engine\": \"{}\",\n          \"soundness\": \"{}\",\n          \
                 \"naive_verdict_agrees\": {},\n          \
                 \"naive_seconds\": {:.6},\n          \"optimized_seconds\": {:.6},\n          \
                 \"speedup\": {:.2}\n        }}{}\n",
                json_escape(row.id),
                row.kind,
                json_escape(row.description),
                row.verdict.as_str(),
                row.expected.as_str(),
                row.matches_paper(),
                json_escape(row.engine),
                json_escape(&row.soundness),
                row.verdicts_agree,
                row.naive_seconds,
                row.optimized_seconds,
                row.speedup(),
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n    }");
        out.push_str(if s + 1 < sections.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

// ---------------------------------------------------------------------------
// The transform report: certificates + fused-vs-sequential runtime
// ---------------------------------------------------------------------------

/// One certificate row of the transform report: a §5 fusion synthesized by
/// `retreet_transform::fuse_main_passes` with its equivalence certificate.
#[derive(Debug, Clone)]
pub struct TransformCertRow {
    /// Experiment identifier (E1, E2, E3, E4a).
    pub id: &'static str,
    /// Corpus case name.
    pub case: &'static str,
    /// How many fused functions the worklist synthesized.
    pub fused_functions: usize,
    /// Certificate kind (`"equivalence"` when certified).
    pub kind: String,
    /// Engine provenance of the certifying verdict.
    pub engine: &'static str,
    /// Soundness of the certifying verdict (`"unbounded"` for a fusion
    /// correspondence, the bounded rendering otherwise).
    pub soundness: String,
    /// Bounded models the certificate rests on (0 for an unbounded
    /// correspondence certificate, which does not enumerate models).
    pub trees_checked: usize,
    /// True when the transform layer produced a certified program that
    /// validates and roundtrips; false records a drift (and fails the run).
    pub certified: bool,
    /// Wall-clock of the certifying verdict, seconds.
    pub elapsed_seconds: f64,
    /// Failure detail when `certified` is false.
    pub detail: String,
}

/// Synthesizes and certifies every fusable §5 case through the transform
/// layer under `budget`, recording certificate provenance.  A row with
/// `certified == false` is *certificate drift* — the construction or the
/// verdict changed — and `bench_transform` fails on it.
pub fn certify_transforms(budget: &Budget) -> Vec<TransformCertRow> {
    use retreet_transform::fuse_main_passes;

    let verifier = budget.equivalence_verifier();
    let cases: [(&'static str, &'static str, retreet_lang::ast::Program); 5] = [
        ("E1", "size_counting", corpus::size_counting_sequential()),
        ("E2", "tree_mutation", corpus::tree_mutation_original()),
        ("E3", "css_minify", corpus::css_minify_original()),
        ("E4a", "cycletree", corpus::cycletree_original()),
        ("E5", "kdtree_closest", corpus::kdtree_closest()),
    ];
    cases
        .into_iter()
        .map(
            |(id, case, original)| match fuse_main_passes(&verifier, &original) {
                Ok(certified) => TransformCertRow {
                    id,
                    case,
                    fused_functions: certified
                        .transformed
                        .funcs
                        .iter()
                        .filter(|f| f.name.starts_with("Fused_"))
                        .count(),
                    kind: certified.certificate.kind.to_string(),
                    engine: certified.certificate.engine().name(),
                    soundness: certified.certificate.verdict.soundness.to_string(),
                    trees_checked: certified.certificate.trees_checked(),
                    certified: true,
                    elapsed_seconds: certified.certificate.verdict.elapsed.as_secs_f64(),
                    detail: String::new(),
                },
                Err(err) => TransformCertRow {
                    id,
                    case,
                    fused_functions: 0,
                    kind: String::from("none"),
                    engine: "none",
                    soundness: String::from("none"),
                    trees_checked: 0,
                    certified: false,
                    elapsed_seconds: 0.0,
                    detail: err.to_string(),
                },
            },
        )
        .collect()
}

/// One runtime row of the transform report: the certified fused program
/// against the original sequential composition, both executed through the
/// `retreet-codegen` VM tier on the same seeded tree.
#[derive(Debug, Clone)]
pub struct TransformPerfRow {
    /// Experiment identifier (E1, E2, E3, E4a).
    pub id: &'static str,
    /// Workload description.
    pub case: &'static str,
    /// How many passes the sequential baseline runs.
    pub passes: usize,
    /// Workload size (tree nodes).
    pub input_size: usize,
    /// Best-of-batches wall-clock of the sequential composition on the VM,
    /// seconds.
    pub sequential_seconds: f64,
    /// Best-of-batches wall-clock of the certified fusion on the VM,
    /// seconds.
    pub fused_seconds: f64,
    /// True when either program diverged from the interpreter reference (or
    /// fell off the VM tier) before timing — a correctness regression that
    /// fails the bench.
    pub drift: bool,
}

impl TransformPerfRow {
    /// sequential / fused.
    pub fn speedup(&self) -> f64 {
        self.sequential_seconds / self.fused_seconds
    }
}

/// Measures certified-fusion-vs-sequential runtime on all five fusable
/// families (E1/E2/E3/E4a plus the E5 k-d find-closest-point pair), executing **both** programs through the compiled VM tier
/// (`ProgramExecutor::with_verifier`, certified lowering included) on the
/// same seeded complete tree — real execution-tier numbers, not the old
/// interpreter-vs-interpreter (or native-stand-in) comparison.  Before any
/// timing, both programs are differential-checked against the interpreter
/// reference; a mismatch marks the row as drift.
pub fn measure_transform_perf(
    verifier: &Verifier,
    batches: usize,
    per_batch: usize,
    tree_height: usize,
) -> Vec<TransformPerfRow> {
    use retreet_analysis::vtree::ValueTree;
    use retreet_codegen::{program_fields, trees_agree};
    use retreet_runtime::exec::{ExecTier, ProgramExecutor};
    use retreet_transform::fuse_main_passes;

    type PerfCase = (
        &'static str,
        &'static str,
        usize,
        retreet_lang::ast::Program,
    );
    let cases: [PerfCase; 5] = [
        (
            "E1",
            "size counting: Odd; Even (2 passes) vs certified fusion, on the VM",
            2,
            corpus::size_counting_sequential(),
        ),
        (
            "E2",
            "tree mutation: Swap; IncrmLeft (2 passes) vs certified fusion, on the VM",
            2,
            corpus::tree_mutation_original(),
        ),
        (
            "E3",
            "CSS minify: ConvertValues; MinifyFont; ReduceInit (3 passes) vs certified fusion, on the VM",
            3,
            corpus::css_minify_original(),
        ),
        (
            "E4a",
            "cycletree: RootMode; ComputeRouting (2 passes) vs certified fusion, on the VM",
            2,
            corpus::cycletree_original(),
        ),
        (
            "E5",
            "k-d find-closest-point: ComputeDist; FoldMin (2 passes) vs certified fusion, on the VM",
            2,
            corpus::kdtree_closest(),
        ),
    ];

    cases
        .into_iter()
        .map(|(id, case, passes, original)| {
            let fused = fuse_main_passes(verifier, &original)
                .unwrap_or_else(|err| panic!("{id}: fusion failed: {err}"));

            let fields = program_fields(&original);
            let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
            let mut tree = ValueTree::complete(tree_height, &field_refs, |_, _| 0);
            tree.fill_fields(&field_refs, 7);

            let sequential = ProgramExecutor::with_verifier(verifier, &original);
            let fused_exec = ProgramExecutor::with_verifier(verifier, &fused.transformed);

            // Differential gate before any timing: both programs on the VM
            // tier, identical returns and semantically identical trees
            // against the interpreter reference.
            let drift = match (
                sequential.run_interpreted(&tree),
                sequential.run(&tree),
                fused_exec.run(&tree),
            ) {
                (Ok(reference), Ok(seq_vm), Ok(fused_vm)) => {
                    seq_vm.tier != ExecTier::Vm
                        || fused_vm.tier != ExecTier::Vm
                        || seq_vm.returns != reference.returns
                        || fused_vm.returns != reference.returns
                        || !trees_agree(&seq_vm.tree, &reference.tree)
                        || !trees_agree(&fused_vm.tree, &reference.tree)
                }
                _ => true,
            };

            let sequential_seconds = best_of(batches, per_batch, || {
                std::hint::black_box(sequential.run(&tree).ok());
            });
            let fused_seconds = best_of(batches, per_batch, || {
                std::hint::black_box(fused_exec.run(&tree).ok());
            });

            TransformPerfRow {
                id,
                case,
                passes,
                input_size: tree.len(),
                sequential_seconds,
                fused_seconds,
                drift,
            }
        })
        .collect()
}

/// Renders the transform report as aligned text tables.
pub fn render_transform_report(certs: &[TransformCertRow], perf: &[TransformPerfRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<5} {:<16} {:>6} {:>14} {:>14} {:>8} {:>10}\n",
        "id", "case", "fused", "certificate", "engine", "models", "certified"
    ));
    for row in certs {
        out.push_str(&format!(
            "{:<5} {:<16} {:>6} {:>14} {:>14} {:>8} {:>10}\n",
            row.id,
            row.case,
            row.fused_functions,
            row.kind,
            row.engine,
            row.trees_checked,
            if row.certified { "yes" } else { "NO" }
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<5} {:>7} {:>10} {:>16} {:>12} {:>9} {:>7}\n",
        "id", "passes", "size", "sequential (ms)", "fused (ms)", "speedup", "drift"
    ));
    for row in perf {
        out.push_str(&format!(
            "{:<5} {:>7} {:>10} {:>16.4} {:>12.4} {:>8.2}x {:>7}\n",
            row.id,
            row.passes,
            row.input_size,
            row.sequential_seconds * 1e3,
            row.fused_seconds * 1e3,
            row.speedup(),
            if row.drift { "DRIFT" } else { "ok" },
        ));
    }
    out
}

/// Serializes the transform report to the `BENCH_transform.json` document
/// (schema `retreet-bench-transform/v2`; format in `crates/README.md`).
/// v2: runtime rows cover every fusable family (E1/E2/E3/E4a/E5), are
/// measured on the compiled VM tier instead of native stand-ins, and carry
/// a `drift` flag from the pre-timing differential check.
pub fn transform_report_to_json(
    budget_label: &str,
    budget: &Budget,
    certs: &[TransformCertRow],
    perf: &[TransformPerfRow],
) -> String {
    let mut out = String::from("{\n  \"schema\": \"retreet-bench-transform/v2\",\n");
    out.push_str(
        "  \"methodology\": \"certificates: fuse_main_passes under the stated budget, \
         verdict cache disabled; runtime: best-of-batches wall-clock of the sequential \
         pass composition vs the certified fusion, both compiled to the retreet-codegen \
         VM tier (certified lowering) and differential-checked against the interpreter \
         before timing\",\n",
    );
    out.push_str(&format!(
        "  \"budget\": {{ \"label\": \"{}\", \"equiv_nodes\": {}, \"equiv_valuations\": {} }},\n",
        json_escape(budget_label),
        budget.equiv_nodes,
        budget.equiv_valuations,
    ));
    out.push_str("  \"certificates\": [\n");
    for (i, row) in certs.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"id\": \"{}\", \"case\": \"{}\", \"fused_functions\": {}, \
             \"kind\": \"{}\", \"engine\": \"{}\", \"soundness\": \"{}\", \
             \"trees_checked\": {}, \
             \"certified\": {}, \"elapsed_seconds\": {:.6}, \"detail\": \"{}\" }}{}\n",
            json_escape(row.id),
            json_escape(row.case),
            row.fused_functions,
            json_escape(&row.kind),
            json_escape(row.engine),
            json_escape(&row.soundness),
            row.trees_checked,
            row.certified,
            row.elapsed_seconds,
            json_escape(&row.detail),
            if i + 1 < certs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"runtime\": [\n");
    for (i, row) in perf.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"id\": \"{}\", \"case\": \"{}\", \"passes\": {}, \"input_size\": {}, \
             \"sequential_seconds\": {:.6}, \"fused_seconds\": {:.6}, \"speedup\": {:.2}, \
             \"drift\": {} }}{}\n",
            json_escape(row.id),
            json_escape(row.case),
            row.passes,
            row.input_size,
            row.sequential_seconds,
            row.fused_seconds,
            row.speedup(),
            row.drift,
            if i + 1 < perf.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// The tune report: the certified schedule autotuner over the §5 families
// ---------------------------------------------------------------------------

/// One candidate line of a tune row — a compact rendering of the tuner's
/// scored candidate table for the report.
#[derive(Debug, Clone)]
pub struct TuneCandidateSummary {
    /// The candidate's deterministic label (grouping + schedule).
    pub label: String,
    /// Whether the verifier certified the candidate.
    pub certified: bool,
    /// Measured VM cost in seconds (`None` for refused or unmeasured
    /// candidates).
    pub seconds: Option<f64>,
    /// The refusal or measurement-failure reason (empty when measured).
    pub detail: String,
}

/// One row of the tune report: the autotuner run end-to-end on one §5
/// family through `retreet_runtime::tune_and_compile`.
#[derive(Debug, Clone)]
pub struct TuneReportRow {
    /// Experiment identifier (E1, E2, E3, E4a).
    pub id: &'static str,
    /// Corpus case name.
    pub case: &'static str,
    /// How many schedule candidates were enumerated.
    pub candidates: usize,
    /// How many of them the verifier certified.
    pub certified: usize,
    /// How many were refused (kept in the table with their witness).
    pub refused: usize,
    /// Measured VM cost of the original program, seconds.
    pub baseline_original_seconds: f64,
    /// Measured VM cost of the canonical whole-run fusion, seconds
    /// (`None` if that candidate failed to certify or measure).
    pub baseline_fused_seconds: Option<f64>,
    /// Measured VM cost of the tuner's winner, seconds.
    pub tuned_seconds: f64,
    /// Label of the winning schedule (`"original"` for the baseline
    /// fallback).
    pub winner_label: String,
    /// Certificate kind of the winning schedule.
    pub winner_kind: String,
    /// Engine provenance of the winner's certificate.
    pub winner_engine: &'static str,
    /// Soundness of the winner's certificate.
    pub winner_soundness: String,
    /// True when the tuned schedule is strictly cheaper than the canonical
    /// whole-pass fusion on this workload.
    pub beats_canonical_fusion: bool,
    /// True when the winner's VM run diverged from the original program's
    /// interpreter reference — fails the bench.
    pub drift: bool,
    /// The scored candidate table, in enumeration order.
    pub table: Vec<TuneCandidateSummary>,
}

impl TuneReportRow {
    /// The better of the two baselines.
    pub fn best_baseline_seconds(&self) -> f64 {
        match self.baseline_fused_seconds {
            Some(fused) => self.baseline_original_seconds.min(fused),
            None => self.baseline_original_seconds,
        }
    }

    /// best-baseline / tuned (≥ 1 unless the tuner regressed).
    pub fn speedup(&self) -> f64 {
        self.best_baseline_seconds() / self.tuned_seconds
    }

    /// True when the tuned schedule is *slower* than the best baseline —
    /// a violation of the tuner's guarantee that fails the bench.
    pub fn regressed(&self) -> bool {
        self.tuned_seconds > self.best_baseline_seconds()
    }
}

/// Runs the certified schedule autotuner on the five fusable families through
/// `retreet_runtime::tune_and_compile` (the VM-backed cost model) and
/// records per-family candidate counts, baselines, the winner's certificate
/// provenance, and an explicit winner-vs-interpreter drift recheck.
///
/// The `verifier` should come from [`Budget::tune_verifier`] — the tuner's
/// batch certification relies on shared cache/coalescing state.
pub fn measure_tune(
    verifier: &Verifier,
    options: &retreet_transform::TuneOptions,
) -> Vec<TuneReportRow> {
    use retreet_analysis::vtree::ValueTree;
    use retreet_codegen::{program_fields, trees_agree};
    use retreet_runtime::exec::ProgramExecutor;
    use retreet_runtime::tune_and_compile;
    use retreet_transform::CandidateStatus;

    let cases: [(&'static str, &'static str, retreet_lang::ast::Program); 5] = [
        ("E1", "size_counting", corpus::size_counting_sequential()),
        ("E2", "tree_mutation", corpus::tree_mutation_original()),
        ("E3", "css_minify", corpus::css_minify_original()),
        ("E4a", "cycletree", corpus::cycletree_original()),
        ("E5", "kdtree_closest", corpus::kdtree_closest()),
    ];

    cases
        .into_iter()
        .map(|(id, case, original)| {
            let tuned = tune_and_compile(verifier, &original, options)
                .unwrap_or_else(|err| panic!("{id}: autotuning failed: {err}"));
            let schedule = &tuned.schedule;

            // Independent drift recheck: the winner's compiled run against
            // the original program's interpreter reference on the same
            // measurement tree (the tuner's own gate, reproduced here so
            // the report does not take it on faith).
            let fields = program_fields(&original);
            let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
            let mut tree = ValueTree::complete(options.tree_height, &field_refs, |_, _| 0);
            tree.fill_fields(&field_refs, options.seed);
            let drift = match (
                ProgramExecutor::new(&original).run_interpreted(&tree),
                tuned.executor.run(&tree),
            ) {
                (Ok(reference), Ok(winner)) => {
                    winner.returns != reference.returns
                        || !trees_agree(&winner.tree, &reference.tree)
                }
                _ => true,
            };

            let table: Vec<TuneCandidateSummary> = schedule
                .candidates
                .iter()
                .map(|candidate| match &candidate.status {
                    CandidateStatus::Certified { cost, .. } => TuneCandidateSummary {
                        label: candidate.label.clone(),
                        certified: true,
                        seconds: cost.as_ref().ok().copied(),
                        detail: cost.as_ref().err().cloned().unwrap_or_default(),
                    },
                    CandidateStatus::Refused(reason) => TuneCandidateSummary {
                        label: candidate.label.clone(),
                        certified: false,
                        seconds: None,
                        detail: reason.to_string(),
                    },
                })
                .collect();

            let certificate = &schedule.winner.certificate;
            TuneReportRow {
                id,
                case,
                candidates: schedule.candidates.len(),
                certified: schedule.certified_count(),
                refused: schedule.refused_count(),
                baseline_original_seconds: schedule.baseline_original_seconds,
                baseline_fused_seconds: schedule.baseline_fused_seconds,
                tuned_seconds: schedule.winner_seconds,
                winner_label: schedule.winner_label.clone(),
                winner_kind: certificate.kind.to_string(),
                winner_engine: certificate.engine().name(),
                winner_soundness: certificate.soundness().to_string(),
                beats_canonical_fusion: schedule
                    .baseline_fused_seconds
                    .map(|fused| schedule.winner_seconds < fused)
                    .unwrap_or(false),
                drift,
                table,
            }
        })
        .collect()
}

/// Renders the tune report as aligned text tables: one summary row per
/// family, then each family's scored candidate table.
pub fn render_tune_report(rows: &[TuneReportRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<5} {:<14} {:>5} {:>5} {:>4} {:>14} {:>12} {:>11} {:>8} {:>6}\n",
        "id",
        "case",
        "cand",
        "cert",
        "ref",
        "original (ms)",
        "fused (ms)",
        "tuned (ms)",
        "speedup",
        "drift"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<5} {:<14} {:>5} {:>5} {:>4} {:>14.4} {:>12} {:>11.4} {:>7.2}x {:>6}\n",
            row.id,
            row.case,
            row.candidates,
            row.certified,
            row.refused,
            row.baseline_original_seconds * 1e3,
            row.baseline_fused_seconds
                .map(|s| format!("{:.4}", s * 1e3))
                .unwrap_or_else(|| String::from("-")),
            row.tuned_seconds * 1e3,
            row.speedup(),
            if row.drift { "DRIFT" } else { "ok" },
        ));
    }
    for row in rows {
        out.push_str(&format!(
            "\n{} winner: {} [{} / {} / {}]\n",
            row.id, row.winner_label, row.winner_kind, row.winner_engine, row.winner_soundness
        ));
        for candidate in &row.table {
            out.push_str(&format!(
                "  {:<48} {:>10} {:>12}{}\n",
                candidate.label,
                if candidate.certified {
                    "certified"
                } else {
                    "refused"
                },
                candidate
                    .seconds
                    .map(|s| format!("{:.4} ms", s * 1e3))
                    .unwrap_or_else(|| String::from("-")),
                if candidate.detail.is_empty() {
                    String::new()
                } else {
                    format!("  ({})", candidate.detail)
                },
            ));
        }
    }
    out
}

/// Serializes the tune report to the `BENCH_tune.json` document (schema
/// `retreet-bench-tune/v1`; format in `crates/README.md`).
pub fn tune_report_to_json(
    label: &str,
    budget: &Budget,
    options: &retreet_transform::TuneOptions,
    rows: &[TuneReportRow],
) -> String {
    let mut out = String::from("{\n  \"schema\": \"retreet-bench-tune/v1\",\n");
    out.push_str(
        "  \"methodology\": \"retreet-transform::tune over each family's Main pass run: \
         contiguous partial-fusion groupings x schedule variants, certified in one \
         verify_batch call, measured best-of-batches through the retreet-codegen VM tier \
         (never the interpreter), winner never slower than best-of{original, canonical \
         fusion}; winner differential-rechecked against the interpreter reference\",\n",
    );
    out.push_str(&format!(
        "  \"budget\": {{ \"label\": \"{}\", \"equiv_nodes\": {}, \"equiv_valuations\": {}, \
         \"race_nodes\": {}, \"max_candidates\": {}, \"tree_height\": {}, \"seed\": {}, \
         \"batches\": {}, \"per_batch\": {} }},\n",
        json_escape(label),
        budget.equiv_nodes,
        budget.equiv_valuations,
        budget.race_nodes,
        options.max_candidates,
        options.tree_height,
        options.seed,
        options.batches,
        options.per_batch,
    ));
    out.push_str("  \"experiments\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"id\": \"{}\", \"case\": \"{}\", \"candidates\": {}, \"certified\": {}, \
             \"refused\": {},\n      \"baseline_original_seconds\": {:.6}, \
             \"baseline_fused_seconds\": {}, \"tuned_seconds\": {:.6}, \
             \"tuned_speedup\": {:.2},\n      \"winner\": {{ \"label\": \"{}\", \
             \"certificate\": \"{}\", \"engine\": \"{}\", \"soundness\": \"{}\" }},\n      \
             \"beats_canonical_fusion\": {}, \"drift\": {},\n      \"table\": [\n",
            json_escape(row.id),
            json_escape(row.case),
            row.candidates,
            row.certified,
            row.refused,
            row.baseline_original_seconds,
            row.baseline_fused_seconds
                .map(|s| format!("{s:.6}"))
                .unwrap_or_else(|| String::from("null")),
            row.tuned_seconds,
            row.speedup(),
            json_escape(&row.winner_label),
            json_escape(&row.winner_kind),
            json_escape(row.winner_engine),
            json_escape(&row.winner_soundness),
            row.beats_canonical_fusion,
            row.drift,
        ));
        for (j, candidate) in row.table.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"label\": \"{}\", \"certified\": {}, \"seconds\": {}, \
                 \"detail\": \"{}\" }}{}\n",
                json_escape(&candidate.label),
                candidate.certified,
                candidate
                    .seconds
                    .map(|s| format!("{s:.6}"))
                    .unwrap_or_else(|| String::from("null")),
                json_escape(&candidate.detail),
                if j + 1 < row.table.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!(
            "      ] }}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Codegen tier: interpreter vs bytecode VM
// ---------------------------------------------------------------------------

/// One executable workload timed on both execution tiers (and, where the
/// workload's `Main` fuses, on the VM running the certifiably fused form).
#[derive(Debug, Clone)]
pub struct CodegenPerfRow {
    /// Workload identifier (C1…).
    pub id: &'static str,
    /// Workload description.
    pub case: &'static str,
    /// Nodes in the input tree.
    pub nodes: usize,
    /// Functions compiled to certified worklist loops.
    pub lowered_funcs: usize,
    /// Best-of-batches wall-clock of the reference interpreter, seconds.
    pub interp_seconds: f64,
    /// Best-of-batches wall-clock of the bytecode VM, seconds.
    pub vm_seconds: f64,
    /// Best-of-batches wall-clock of the VM running the certified fusion of
    /// the workload (`None` when `Main` has no certifiable fusion).
    pub vm_fused_seconds: Option<f64>,
    /// True when the VM's returns or post-run tree diverged from the
    /// interpreter's — a correctness regression that fails the bench.
    pub drift: bool,
}

impl CodegenPerfRow {
    /// interpreter / VM.
    pub fn vm_speedup(&self) -> f64 {
        self.interp_seconds / self.vm_seconds
    }

    /// interpreter / VM-on-fused, when a certified fusion exists.
    pub fn fused_speedup(&self) -> Option<f64> {
        self.vm_fused_seconds.map(|s| self.interp_seconds / s)
    }
}

/// One lowering-equivalence certificate line, with the serving provenance
/// (`cached` / `coalesced`) of its verdict reported honestly — the second
/// compilation of a workload must show `cached: true`, not pretend the
/// engine ran again.
#[derive(Debug, Clone)]
pub struct CodegenCertRow {
    /// Workload identifier the lowering belongs to.
    pub workload: &'static str,
    /// The lowered function.
    pub func: String,
    /// `"fresh"` for the first compilation, `"recompile"` for the second.
    pub phase: &'static str,
    /// The engine that produced the equivalence verdict.
    pub engine: &'static str,
    /// Whether the verdict came from the verifier's cache.
    pub cached: bool,
    /// Whether the verdict was coalesced onto a concurrent identical query.
    pub coalesced: bool,
    /// Verdict wall-clock, seconds (the original engine run's time when
    /// cached).
    pub elapsed_seconds: f64,
}

/// The four executable §5 workloads of the codegen bench.
fn codegen_workloads() -> Vec<(&'static str, &'static str, retreet_lang::ast::Program)> {
    vec![
        (
            "C1",
            "size counting: Odd; Even (mutual recursion, frame bytecode)",
            corpus::size_counting_sequential(),
        ),
        (
            "C2",
            "tree mutation: Swap; IncrmLeft (certified worklist loops)",
            corpus::tree_mutation_original(),
        ),
        (
            "C3",
            "CSS minify: ConvertValues; MinifyFont; ReduceInit",
            corpus::css_minify_original(),
        ),
        (
            "C4",
            "cycletree: four numbering modes + ComputeRouting",
            corpus::cycletree_original(),
        ),
        (
            "C5",
            "k-d find-closest-point: ComputeDist; FoldMin over a left-balanced tree",
            corpus::kdtree_closest(),
        ),
    ]
}

/// Runs the codegen benchmark: for each executable §5 workload, compile
/// with certified lowering (twice, so the certificate lines show the
/// fresh-then-cached serving path), differential-check the VM against the
/// interpreter on the same tree, then time interpreter vs VM vs
/// VM-on-certified-fusion.  The `verifier` should have its cache *enabled*
/// — honest `cached`/`coalesced` reporting is part of what this bench
/// demonstrates.
pub fn measure_codegen_perf(
    verifier: &Verifier,
    batches: usize,
    per_batch: usize,
    tree_height: usize,
) -> (Vec<CodegenPerfRow>, Vec<CodegenCertRow>) {
    use retreet_analysis::interp;
    use retreet_analysis::vtree::ValueTree;
    use retreet_codegen::{compile_with_lowering, trees_agree, Vm};
    use retreet_lang::blocks::BlockTable;
    use retreet_transform::fuse_main_passes;

    let mut rows = Vec::new();
    let mut certs = Vec::new();
    for (id, case, program) in codegen_workloads() {
        let compiled = match compile_with_lowering(verifier, &program) {
            Ok(compiled) => compiled,
            Err(err) => panic!("{id}: codegen failed: {err}"),
        };
        for cert in &compiled.lowerings {
            certs.push(CodegenCertRow {
                workload: id,
                func: cert.func.clone(),
                phase: "fresh",
                engine: cert.verdict.engine.name(),
                cached: cert.verdict.cached,
                coalesced: cert.verdict.coalesced,
                elapsed_seconds: cert.verdict.elapsed.as_secs_f64(),
            });
        }
        // Compile again: the same equivalence queries must now be served
        // from the verdict cache, and the rows must say so.
        if let Ok(recompiled) = compile_with_lowering(verifier, &program) {
            for cert in &recompiled.lowerings {
                certs.push(CodegenCertRow {
                    workload: id,
                    func: cert.func.clone(),
                    phase: "recompile",
                    engine: cert.verdict.engine.name(),
                    cached: cert.verdict.cached,
                    coalesced: cert.verdict.coalesced,
                    elapsed_seconds: cert.verdict.elapsed.as_secs_f64(),
                });
            }
        }

        let fields = retreet_codegen::program_fields(&program);
        let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        let mut tree = ValueTree::complete(tree_height, &field_refs, |_, _| 0);
        tree.fill_fields(&field_refs, 7);

        // Differential gate before any timing: identical returns and
        // semantically identical trees, or the row is marked as drift.
        let table = BlockTable::build(&program);
        let mut vm = Vm::new();
        let drift = match (
            interp::run_with_table(&table, &tree),
            vm.run(&compiled, &tree),
        ) {
            (Ok(exp), Ok(act)) => exp.returns != act.returns || !trees_agree(&exp.tree, &act.tree),
            (Err(_), Err(_)) => false,
            _ => true,
        };

        let interp_seconds = best_of(batches, per_batch, || {
            std::hint::black_box(interp::run_with_table(&table, &tree).ok());
        });
        let vm_seconds = best_of(batches, per_batch, || {
            std::hint::black_box(vm.run(&compiled, &tree).ok());
        });
        let vm_fused_seconds = fuse_main_passes(verifier, &program)
            .ok()
            .and_then(|fused| compile_with_lowering(verifier, &fused.transformed).ok())
            .map(|compiled_fused| {
                best_of(batches, per_batch, || {
                    std::hint::black_box(vm.run(&compiled_fused, &tree).ok());
                })
            });

        rows.push(CodegenPerfRow {
            id,
            case,
            nodes: tree.len(),
            lowered_funcs: compiled.lowerings.len(),
            interp_seconds,
            vm_seconds,
            vm_fused_seconds,
            drift,
        });
    }
    (rows, certs)
}

/// Renders the codegen report as aligned text tables.
pub fn render_codegen_report(rows: &[CodegenPerfRow], certs: &[CodegenCertRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<4} {:>8} {:>8} {:>12} {:>10} {:>8} {:>12} {:>7}\n",
        "id", "nodes", "lowered", "interp (ms)", "vm (ms)", "speedup", "fused (ms)", "drift"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<4} {:>8} {:>8} {:>12.4} {:>10.4} {:>7.2}x {:>12} {:>7}\n",
            row.id,
            row.nodes,
            row.lowered_funcs,
            row.interp_seconds * 1e3,
            row.vm_seconds * 1e3,
            row.vm_speedup(),
            row.vm_fused_seconds
                .map(|s| format!("{:.4}", s * 1e3))
                .unwrap_or_else(|| String::from("-")),
            if row.drift { "DRIFT" } else { "ok" },
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<4} {:<12} {:<10} {:<14} {:>7} {:>10}\n",
        "id", "func", "phase", "engine", "cached", "coalesced"
    ));
    for cert in certs {
        out.push_str(&format!(
            "{:<4} {:<12} {:<10} {:<14} {:>7} {:>10}\n",
            cert.workload, cert.func, cert.phase, cert.engine, cert.cached, cert.coalesced,
        ));
    }
    out
}

/// Serializes the codegen report to the `BENCH_codegen.json` document
/// (schema `retreet-bench-codegen/v1`; format in `crates/README.md`).
pub fn codegen_report_to_json(
    label: &str,
    tree_height: usize,
    rows: &[CodegenPerfRow],
    certs: &[CodegenCertRow],
) -> String {
    let mut out = String::from("{\n  \"schema\": \"retreet-bench-codegen/v1\",\n");
    out.push_str(
        "  \"methodology\": \"best-of-batches wall-clock of the reference interpreter vs the \
         retreet-codegen bytecode VM on complete trees; every iterative lowering certified by \
         an equivalence verdict (fresh-then-cached serving path shown); VM outputs \
         differential-checked against the interpreter before timing\",\n",
    );
    out.push_str(&format!(
        "  \"budget\": {{ \"label\": \"{}\", \"tree_height\": {} }},\n",
        json_escape(label),
        tree_height,
    ));
    out.push_str("  \"workloads\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let fused = match (row.vm_fused_seconds, row.fused_speedup()) {
            (Some(seconds), Some(speedup)) => {
                format!("\"vm_fused_seconds\": {seconds:.6}, \"fused_speedup\": {speedup:.2}")
            }
            _ => String::from("\"vm_fused_seconds\": null, \"fused_speedup\": null"),
        };
        out.push_str(&format!(
            "    {{ \"id\": \"{}\", \"case\": \"{}\", \"nodes\": {}, \"lowered_funcs\": {}, \
             \"interp_seconds\": {:.6}, \"vm_seconds\": {:.6}, \"vm_speedup\": {:.2}, \
             {}, \"drift\": {} }}{}\n",
            json_escape(row.id),
            json_escape(row.case),
            row.nodes,
            row.lowered_funcs,
            row.interp_seconds,
            row.vm_seconds,
            row.vm_speedup(),
            fused,
            row.drift,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"lowering_certificates\": [\n");
    for (i, cert) in certs.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"workload\": \"{}\", \"func\": \"{}\", \"phase\": \"{}\", \
             \"engine\": \"{}\", \"cached\": {}, \"coalesced\": {}, \
             \"elapsed_seconds\": {:.6} }}{}\n",
            json_escape(cert.workload),
            json_escape(&cert.func),
            json_escape(cert.phase),
            json_escape(cert.engine),
            cert.cached,
            cert.coalesced,
            cert.elapsed_seconds,
            if i + 1 < certs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codegen_report_has_no_drift_and_honest_cache_flags() {
        let verifier = Verifier::builder().build();
        let (rows, certs) = measure_codegen_perf(&verifier, 1, 1, 6);
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(!row.drift, "{}: VM diverged from the interpreter", row.id);
        }
        // At least one §5 workload lowers, and the recompile phase is
        // served from the verdict cache and says so.
        assert!(rows.iter().any(|r| r.lowered_funcs > 0));
        assert!(certs.iter().any(|c| c.phase == "fresh" && !c.cached));
        assert!(certs.iter().any(|c| c.phase == "recompile" && c.cached));
        let json = codegen_report_to_json("quick", 6, &rows, &certs);
        assert!(json.contains("\"schema\": \"retreet-bench-codegen/v1\""));
        assert!(json.contains("\"lowering_certificates\""));
    }

    #[test]
    fn every_experiment_matches_the_paper_verdict() {
        let budget = Budget::quick();
        let results = run_all(&budget);
        assert_eq!(results.len(), 7);
        for result in &results {
            assert!(
                result.matches_paper(),
                "{} disagreed with the paper: {:?} (expected {:?}) — {}",
                result.id,
                result.verdict,
                result.expected,
                result.detail
            );
        }
    }

    #[test]
    fn ablation_shows_the_granularity_gap() {
        let rows = ablation_granularity(&Budget::quick());
        // The coarse baseline rejects the CSS and cycletree fusions that the
        // fine-grained analysis accepts — the paper's motivating gap.
        let css = rows.iter().find(|r| r.case == "css_minification").unwrap();
        assert!(!css.coarse_accepts && css.fine_grained_accepts);
        let cyc = rows.iter().find(|r| r.case == "cycletree").unwrap();
        assert!(!cyc.coarse_accepts && cyc.fine_grained_accepts);
        // Both agree on the trivially disjoint size-counting case.
        let size = rows.iter().find(|r| r.case == "size_counting").unwrap();
        assert!(size.coarse_accepts && size.fine_grained_accepts);
    }

    #[test]
    fn every_result_reports_engine_provenance() {
        let results = run_all(&Budget::quick());
        for result in &results {
            assert!(
                ["automata", "configuration", "trace"].contains(&result.engine),
                "{}: unexpected engine {}",
                result.id,
                result.engine
            );
            assert!(!result.soundness.is_empty(), "{}", result.id);
        }
    }

    #[test]
    fn every_paper_experiment_is_answered_unbounded() {
        // The tentpole claim: the automata tier answers all seven §5
        // experiments (positively via the structural analyses, negatively
        // via delegated witness search) with an unbounded guarantee.
        let results = run_all(&Budget::quick());
        assert_eq!(results.len(), 7);
        for result in &results {
            assert_eq!(result.engine, "automata", "{}", result.id);
            assert_eq!(result.soundness, "unbounded", "{}", result.id);
        }
    }

    #[test]
    fn rendering_and_serialization() {
        let budget = Budget::quick();
        let results = vec![e1c_size_counting_race_freedom(&budget)];
        let table = render_table(&results);
        assert!(table.contains("E1c"));
        let json = to_json(&results);
        assert!(json.contains("RaceFree"));
        assert!(json.contains("\"engine\""));
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn transform_certificates_hold_under_the_quick_budget() {
        let certs = certify_transforms(&Budget::quick());
        assert_eq!(certs.len(), 5);
        for row in &certs {
            assert!(row.certified, "{} drifted: {}", row.id, row.detail);
            assert_eq!(row.kind, "equivalence", "{}", row.id);
            // A bounded certificate must rest on actual models; an
            // unbounded fusion-correspondence certificate rests on none.
            assert!(
                row.trees_checked > 0 || row.soundness == "unbounded",
                "{}: no models and no unbounded guarantee",
                row.id
            );
        }
        // The cycletree fusion is the only multi-function tuple family.
        let cycletree = certs.iter().find(|r| r.id == "E4a").unwrap();
        assert_eq!(cycletree.fused_functions, 4);
    }

    #[test]
    fn transform_report_serializes_with_the_versioned_schema() {
        let budget = Budget::quick();
        let certs = certify_transforms(&budget);
        let perf = measure_transform_perf(&budget.tune_verifier(), 1, 1, 6);
        assert_eq!(perf.len(), 5, "all five fusable families get runtime rows");
        for row in &perf {
            assert!(!row.drift, "{}: VM diverged from the interpreter", row.id);
        }
        let json = transform_report_to_json("quick", &budget, &certs, &perf);
        assert!(json.contains("\"schema\": \"retreet-bench-transform/v2\""));
        assert!(json.contains("\"certificates\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"drift\""));
        assert!(json.contains("\"E2\"") && json.contains("\"E4a\""));
        let table = render_transform_report(&certs, &perf);
        assert!(table.contains("E4a") && table.contains("speedup"));
    }

    #[test]
    fn tune_report_respects_the_baseline_guarantee_and_serializes() {
        let budget = Budget::quick();
        let verifier = budget.tune_verifier();
        let options = retreet_transform::TuneOptions::quick();
        let rows = measure_tune(&verifier, &options);
        assert_eq!(rows.len(), 5, "all five fusable families tune");
        for row in &rows {
            assert!(!row.drift, "{}: winner drifted from the reference", row.id);
            assert!(!row.regressed(), "{}: tuned slower than baseline", row.id);
            assert!(row.candidates >= 1 && row.certified >= 1, "{}", row.id);
            assert_eq!(row.candidates, row.certified + row.refused, "{}", row.id);
            assert_eq!(row.winner_kind, "equivalence", "{}", row.id);
            assert!(!row.winner_engine.is_empty() && !row.winner_soundness.is_empty());
        }
        // The cycletree family refuses its racy parallel-passes candidate
        // and keeps it in the table.
        let cycletree = rows.iter().find(|r| r.id == "E4a").unwrap();
        assert!(cycletree.refused >= 1);
        assert!(cycletree
            .table
            .iter()
            .any(|c| !c.certified && c.detail.contains("data race")));
        let json = tune_report_to_json("quick", &budget, &options, &rows);
        assert!(json.contains("\"schema\": \"retreet-bench-tune/v1\""));
        assert!(json.contains("\"beats_canonical_fusion\""));
        assert!(json.contains("\"tuned_speedup\""));
        let table = render_tune_report(&rows);
        assert!(table.contains("winner") && table.contains("E4a"));
    }
}
