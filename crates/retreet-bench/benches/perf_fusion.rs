//! P1 — the performance motivation for fusion: one traversal instead of
//! several over the same tree.  Reported for the CSS minifier (three passes
//! vs. the fused pass) and for the cycletree construction (numbering +
//! routing vs. the fused traversal).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retreet_css::css::generate_stylesheet;
use retreet_css::minify::{minify_fused, minify_unfused};
use retreet_cycletree::numbering::{complete_cycletree, fused_number_and_route, number_cycletree};
use retreet_cycletree::routing::compute_routing;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_fusion_css");
    group.sample_size(20);
    for rules in [100usize, 1000, 5000] {
        let sheet = generate_stylesheet(rules, 42);
        group.bench_with_input(
            BenchmarkId::new("unfused_3_passes", rules),
            &sheet,
            |b, s| b.iter(|| minify_unfused(s)),
        );
        group.bench_with_input(BenchmarkId::new("fused_1_pass", rules), &sheet, |b, s| {
            b.iter(|| minify_fused(s))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("perf_fusion_cycletree");
    group.sample_size(20);
    for height in [10usize, 14, 17] {
        let tree = complete_cycletree(height);
        group.bench_with_input(BenchmarkId::new("two_passes", height), &tree, |b, t| {
            b.iter(|| {
                let mut tree = t.clone();
                number_cycletree(&mut tree);
                compute_routing(&mut tree);
                tree.value.max
            })
        });
        group.bench_with_input(BenchmarkId::new("fused_pass", height), &tree, |b, t| {
            b.iter(|| {
                let mut tree = t.clone();
                fused_number_and_route(&mut tree);
                tree.value.max
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
