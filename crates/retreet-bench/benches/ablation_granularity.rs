//! P3 — ablation: coarse (TreeFuser-style, field-granularity) dependence
//! analysis vs. the fine-grained Retreet-style check.  The coarse baseline
//! rejects the CSS and cycletree fusions that the fine-grained analysis
//! accepts — the qualitative gap §1/§6 of the paper motivates.

use criterion::{criterion_group, criterion_main, Criterion};
use retreet_analysis::coarse::coarse_fusion_ok;
use retreet_bench::{ablation_granularity, Budget};
use retreet_lang::corpus;

fn bench(c: &mut Criterion) {
    let rows = ablation_granularity(&Budget::default());
    println!("\ncase                 coarse-accepts   fine-grained-accepts");
    for row in &rows {
        println!(
            "{:<20} {:<16} {:<20}",
            row.case, row.coarse_accepts, row.fine_grained_accepts
        );
    }
    assert!(rows
        .iter()
        .filter(|r| matches!(r.case, "css_minification" | "cycletree"))
        .all(|r| !r.coarse_accepts && r.fine_grained_accepts));

    let mut group = c.benchmark_group("ablation_granularity");
    group.sample_size(20);
    group.bench_function("coarse_css", |b| {
        b.iter(|| coarse_fusion_ok(&corpus::css_minify_original()))
    });
    group.bench_function("coarse_cycletree", |b| {
        b.iter(|| coarse_fusion_ok(&corpus::cycletree_original()))
    });
    group.bench_function("full_ablation", |b| {
        b.iter(|| ablation_granularity(&Budget::quick()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
