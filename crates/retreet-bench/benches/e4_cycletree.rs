//! E4 — the cycletree case study (Fig. 9): the fusion of the four-mode
//! numbering with the router-data computation is valid (E4a), while running
//! the two traversals in parallel races on `num` (E4b).  This is the paper's
//! hardest query (490.55 s in MONA), and it remains the most expensive
//! verification bench here as well.

use criterion::{criterion_group, criterion_main, Criterion};
use retreet_bench::{
    e4a_cycletree_fusion, e4b_cycletree_parallelization_race, render_table, Budget,
};
use retreet_cycletree::numbering::{complete_cycletree, fused_number_and_route, number_cycletree};
use retreet_cycletree::routing::compute_routing;

fn bench(c: &mut Criterion) {
    let budget = Budget::default();
    let rows = vec![
        e4a_cycletree_fusion(&budget),
        e4b_cycletree_parallelization_race(&budget),
    ];
    println!("\n{}", render_table(&rows));
    assert!(rows.iter().all(|r| r.matches_paper()));

    // Concrete-side validation: the fused executable traversal equals the
    // two-pass composition.
    let tree = complete_cycletree(12);
    let mut two_pass = tree.clone();
    number_cycletree(&mut two_pass);
    compute_routing(&mut two_pass);
    let mut fused = tree;
    fused_number_and_route(&mut fused);
    assert_eq!(two_pass, fused);

    let mut group = c.benchmark_group("e4_cycletree");
    group.sample_size(10);
    group.bench_function("e4a_fusion_verification", |b| {
        b.iter(|| assert!(e4a_cycletree_fusion(&budget).matches_paper()))
    });
    group.bench_function("e4b_race_detection", |b| {
        b.iter(|| assert!(e4b_cycletree_parallelization_race(&budget).matches_paper()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
