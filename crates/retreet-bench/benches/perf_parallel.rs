//! P2 — the performance motivation for parallelization: rayon-parallel
//! traversal of disjoint subtrees vs. the sequential schedule, for the
//! size-counting fold of the running example and for a mutating post-order
//! pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retreet_runtime::tree::complete_tree;
use retreet_runtime::visit::{par_fold, par_postorder_mut, postorder_mut, seq_fold};

fn bench(c: &mut Criterion) {
    let combine = |_: &u64, (lo, le): (u64, u64), (ro, re): (u64, u64)| (le + re + 1, lo + ro);

    let mut group = c.benchmark_group("perf_parallel_size_counting");
    group.sample_size(15);
    for height in [16usize, 18, 20] {
        let tree = complete_tree(height, &|i| i as u64);
        group.bench_with_input(
            BenchmarkId::new("sequential_fold", height),
            &tree,
            |b, t| b.iter(|| seq_fold(t, &|| (0u64, 0u64), &combine)),
        );
        group.bench_with_input(BenchmarkId::new("parallel_fold", height), &tree, |b, t| {
            b.iter(|| par_fold(t, 1 << 10, &|| (0u64, 0u64), &combine))
        });
    }
    group.finish();

    #[derive(Clone)]
    struct P {
        v: u64,
        sum: u64,
    }
    let visitor = |p: &mut P, l: Option<&P>, r: Option<&P>| {
        p.sum = p.v + l.map_or(0, |x| x.sum) + r.map_or(0, |x| x.sum);
    };

    let mut group = c.benchmark_group("perf_parallel_postorder");
    group.sample_size(15);
    for height in [16usize, 18] {
        let tree = complete_tree(height, &|i| P {
            v: i as u64,
            sum: 0,
        });
        group.bench_with_input(BenchmarkId::new("sequential", height), &tree, |b, t| {
            b.iter(|| {
                let mut tree = t.clone();
                postorder_mut(&mut tree, &visitor);
                tree.value.sum
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel", height), &tree, |b, t| {
            b.iter(|| {
                let mut tree = t.clone();
                par_postorder_mut(&mut tree, &visitor, 1 << 10);
                tree.value.sum
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
