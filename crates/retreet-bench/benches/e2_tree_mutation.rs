//! E2 — the tree-mutation case study (Fig. 7): fusing `Swap`; `IncrmLeft`
//! after the mutation-to-flag conversion of §5.

use criterion::{criterion_group, criterion_main, Criterion};
use retreet_bench::{e2_tree_mutation_fusion, render_table, Budget};

fn bench(c: &mut Criterion) {
    let budget = Budget::default();
    let row = e2_tree_mutation_fusion(&budget);
    println!("\n{}", render_table(std::slice::from_ref(&row)));
    assert!(row.matches_paper());

    let mut group = c.benchmark_group("e2_tree_mutation");
    group.sample_size(10);
    group.bench_function("e2_fusion", |b| {
        b.iter(|| assert!(e2_tree_mutation_fusion(&budget).matches_paper()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
