//! P4 — dispatch overhead of the unified `Verifier` façade: single-engine
//! dispatch vs. the parallel portfolio (first definitive verdict wins) vs.
//! the verdict cache, on the E1/E2 corpus queries.  Future scaling PRs
//! (sharding, batching, an async service front-end) measure against these
//! baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use retreet_lang::corpus;
use retreet_verify::{Engine, Query, Verifier};

fn bench(c: &mut Criterion) {
    let single_configuration = Verifier::builder()
        .max_nodes(4)
        .valuations(1)
        .engines([Engine::Configuration])
        .cache_capacity(0)
        .build();
    let single_trace = Verifier::builder()
        .max_nodes(4)
        .valuations(1)
        .engines([Engine::Trace])
        .cache_capacity(0)
        .build();
    let portfolio = Verifier::builder()
        .max_nodes(4)
        .valuations(1)
        .parallel(true)
        .cache_capacity(0)
        .build();
    let cached = Verifier::builder().max_nodes(4).valuations(1).build();

    let race_program = corpus::size_counting_parallel();
    let equiv_original = corpus::size_counting_sequential();
    let equiv_fused = corpus::size_counting_fused();
    let e2_original = corpus::tree_mutation_original();
    let e2_fused = corpus::tree_mutation_fused();

    // Sanity: every dispatch strategy must agree before we time anything.
    assert!(single_configuration
        .verify(Query::DataRace(&race_program))
        .unwrap()
        .is_race_free());
    assert!(single_trace
        .verify(Query::DataRace(&race_program))
        .unwrap()
        .is_race_free());
    assert!(portfolio
        .verify(Query::DataRace(&race_program))
        .unwrap()
        .is_race_free());

    let mut group = c.benchmark_group("portfolio_race_e1c");
    group.sample_size(15);
    group.bench_function("single_engine_configuration", |b| {
        b.iter(|| {
            single_configuration
                .verify(Query::DataRace(&race_program))
                .unwrap()
        })
    });
    group.bench_function("single_engine_trace", |b| {
        b.iter(|| single_trace.verify(Query::DataRace(&race_program)).unwrap())
    });
    group.bench_function("parallel_portfolio", |b| {
        b.iter(|| portfolio.verify(Query::DataRace(&race_program)).unwrap())
    });
    group.bench_function("verdict_cache_hit", |b| {
        b.iter(|| cached.verify(Query::DataRace(&race_program)).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("portfolio_equivalence_e1a_e2");
    group.sample_size(10);
    group.bench_function("e1a_sequential_dispatch", |b| {
        b.iter(|| {
            single_trace
                .verify(Query::Equivalence(&equiv_original, &equiv_fused))
                .unwrap()
        })
    });
    group.bench_function("e1a_parallel_portfolio", |b| {
        b.iter(|| {
            portfolio
                .verify(Query::Equivalence(&equiv_original, &equiv_fused))
                .unwrap()
        })
    });
    group.bench_function("e2_sequential_dispatch", |b| {
        b.iter(|| {
            single_trace
                .verify(Query::Equivalence(&e2_original, &e2_fused))
                .unwrap()
        })
    });
    group.bench_function("e2_verdict_cache_hit", |b| {
        b.iter(|| {
            cached
                .verify(Query::Equivalence(&e2_original, &e2_fused))
                .unwrap()
        })
    });
    group.finish();

    let stats = cached.cache_stats();
    println!(
        "verdict cache after the run: {} hits / {} misses / {} entries",
        stats.hits, stats.misses, stats.entries
    );
    // A CLI filter can deselect every cached-verifier bench; only assert
    // when the cache actually saw traffic.
    if stats.hits + stats.misses > 0 {
        assert!(stats.hits > stats.misses, "cache hits should dominate");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
