//! E1 — the mutually recursive size-counting case study (Fig. 3 / Fig. 6).
//!
//! Regenerates the three §5 rows: the valid fusion (E1a), the rejected
//! invalid fusion (E1b), and data-race-freedom of the parallel composition
//! (E1c).  Each bench iteration runs the full verification query; the
//! verdicts are asserted so a regression cannot silently flip them.

use criterion::{criterion_group, criterion_main, Criterion};
use retreet_bench::{
    e1a_size_counting_fusion, e1b_size_counting_invalid_fusion, e1c_size_counting_race_freedom,
    render_table, Budget,
};

fn bench(c: &mut Criterion) {
    let budget = Budget::default();
    let rows = vec![
        e1a_size_counting_fusion(&budget),
        e1b_size_counting_invalid_fusion(&budget),
        e1c_size_counting_race_freedom(&budget),
    ];
    println!("\n{}", render_table(&rows));
    assert!(rows.iter().all(|r| r.matches_paper()));

    let mut group = c.benchmark_group("e1_size_counting");
    group.sample_size(10);
    group.bench_function("e1a_valid_fusion", |b| {
        b.iter(|| assert!(e1a_size_counting_fusion(&budget).matches_paper()))
    });
    group.bench_function("e1b_invalid_fusion", |b| {
        b.iter(|| assert!(e1b_size_counting_invalid_fusion(&budget).matches_paper()))
    });
    group.bench_function("e1c_race_freedom", |b| {
        b.iter(|| assert!(e1c_size_counting_race_freedom(&budget).matches_paper()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
