//! E3 — the CSS-minification case study (Fig. 8): fusing `ConvertValues`;
//! `MinifyFont`; `ReduceInit` on LCRS-binarized ASTs, plus the concrete-side
//! validation that the executable fused minifier matches the unfused one.

use criterion::{criterion_group, criterion_main, Criterion};
use retreet_bench::{e3_css_minification_fusion, render_table, Budget};
use retreet_css::css::generate_stylesheet;
use retreet_css::minify::{minify_fused, minify_unfused};

fn bench(c: &mut Criterion) {
    let budget = Budget::default();
    let row = e3_css_minification_fusion(&budget);
    println!("\n{}", render_table(std::slice::from_ref(&row)));
    assert!(row.matches_paper());

    let sheet = generate_stylesheet(500, 11);
    assert_eq!(minify_fused(&sheet), minify_unfused(&sheet));

    let mut group = c.benchmark_group("e3_css_minify");
    group.sample_size(10);
    group.bench_function("e3_fusion_verification", |b| {
        b.iter(|| assert!(e3_css_minification_fusion(&budget).matches_paper()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
