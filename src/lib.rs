//! # retreet-repro — umbrella crate for the Retreet reproduction
//!
//! Reproduction of *"Reasoning about recursive tree traversals"* (Wang,
//! Liu, Zhang, Qiu; PPoPP 2021).  The entry point for every verification
//! question is the unified [`retreet_verify::Verifier`] façade:
//!
//! ```
//! use retreet_repro::retreet_verify::{Query, Verifier};
//! use retreet_repro::retreet_lang::corpus;
//!
//! let verifier = Verifier::builder()
//!     .max_nodes(3)      // exhaust every tree up to this many nodes
//!     .valuations(1)     // deterministic field valuations per shape
//!     .parallel(true)    // race the applicable engines, first verdict wins
//!     .build();
//!
//! // Theorem 2 (data race), Theorem 3 (equivalence) and MSO validity all go
//! // through the same call:
//! let verdict = verifier
//!     .verify(Query::DataRace(&corpus::size_counting_parallel()))
//!     .unwrap();
//! assert!(verdict.is_race_free());
//! println!("{verdict}"); // verdict, engine provenance, soundness, timing
//! ```
//!
//! The workspace members underneath:
//!
//! * [`retreet_verify`] — **the façade**: `Verifier` builder, typed
//!   `Query` → `Verdict` pipeline, engine portfolio, sharded verdict cache
//!   with single-flight coalescing, batch fan-out, typed `VerifyError`s;
//! * [`retreet_serve`] — **the serving tier**: a long-running NDJSON
//!   service (stdin or TCP) over one shared `Verifier`, with corpus
//!   warm-start and per-response cache/coalesce provenance;
//! * [`retreet_lang`] — the Retreet language (AST, parser, blocks, read/write
//!   analysis, weakest preconditions, the §5 program corpus);
//! * [`retreet_logic`] — the linear-integer-arithmetic solver substrate;
//! * [`retreet_mso`] — MSO over binary trees, bounded checking and the
//!   tree-automata decision procedure (the MONA substitute);
//! * [`retreet_analysis`] — the engine layer: configurations, data-race
//!   detection and fusion-equivalence checking;
//! * [`retreet_transform`] — **the certified transform tier**: AST-level
//!   traversal fusion, parallel schedule synthesis, and the certified
//!   schedule autotuner (`tune` — partial-fusion × parallelization
//!   enumeration, batch certification, cost-scored winners), each
//!   returning a `CertifiedTransform` whose certificate is a façade
//!   verdict;
//! * [`retreet_codegen`] — **the execution tier**: flat `u32`-indexed trees,
//!   a register bytecode + compiler, a certified iterative-lowering pass
//!   (self-recursion → explicit worklist loops, each gated by a façade
//!   equivalence verdict) and a stack-free VM, with the reference
//!   interpreter kept as the differential baseline;
//! * [`retreet_runtime`] — owned trees, fused and rayon-parallel schedules,
//!   capability types gated by transform certificates, and
//!   `exec::ProgramExecutor` — tiered execution preferring compiled
//!   bytecode with interpreter fallback;
//! * [`retreet_css`] / [`retreet_cycletree`] — the two real-world case-study
//!   substrates of the evaluation.
//!
//! # MIGRATION — old per-crate entry points → the façade + transform tier
//!
//! The PR 1 deprecated option-struct shims have been **removed**; every
//! in-tree caller goes through the façade (verdicts) or the transform tier
//! (certified programs).  New code should use the mappings below.
//!
//! | Old call | New call |
//! |----------|----------|
//! | `retreet_analysis::race::check_data_race(&p, &RaceOptions { max_nodes, valuations, .. })` | `Verifier::builder().race_nodes(n).valuations(v).build().verify(Query::DataRace(&p))` |
//! | `retreet_analysis::equiv::check_equivalence(&a, &b, &EquivOptions { .. })` | `verifier.verify(Query::Equivalence(&a, &b))` |
//! | `retreet_mso::bounded::check_validity(&f, bound)` | `Verifier::builder().validity_nodes(bound).engines([Engine::BoundedEnumeration]).build().verify(Query::Validity(&f))` |
//! | `retreet_mso::compile::is_valid(&f)` | `verifier.verify(Query::Validity(&f))` (the automata engine wins where the fragment allows; `Soundness::Unbounded` in the verdict) |
//! | `VerifiedFusion::verify(&a, &b, &EquivOptions)` *(removed)* | `VerifiedFusion::verify_with(&verifier, &a, &b)`, or synthesize: `retreet_transform::fuse_main_passes(&verifier, &original)` + `VerifiedFusion::from_certified(&t)` |
//! | `VerifiedParallelization::verify(&p, &RaceOptions)` *(removed)* | `VerifiedParallelization::verify_with(&verifier, &p)`, or synthesize: `retreet_transform::synthesize_parallel_main(&verifier, &sequential)` + `VerifiedParallelization::from_certified(&t)` |
//! | `VerifiedFusion::run_fused2(&mut tree, &a, &b)` / `run_fused3(…)` *(removed)* | the arity-generic `VerifiedFusion::run_fused(&mut tree, &[&a, &b, …])` |
//! | `retreet_runtime::visit::fuse2(&a, &b)` / `fuse3(…)` *(removed)* | `retreet_runtime::visit::fuse_all(&[&a, &b, …])` |
//! | hand-writing a fused program and checking `Query::Equivalence` | `retreet_transform::fuse_main_passes(&verifier, &original)` — the fused program is synthesized and returned with its certificate |
//! | `fuse_main_passes(&verifier, &p)` as the *only* schedule considered | `retreet_transform::tune(&verifier, &p, &TuneOptions::default(), &mut cost)` — whole-pass fusion is one point in the enumerated partial-fusion × parallelization space; the tuner certifies every candidate in one batch and returns the measured winner (never slower than best-of{original, canonical fusion}) plus the full scored table |
//! | hand-picking between the fused and the parallel schedule by guesswork | `retreet_runtime::tune_and_compile(&verifier, &p, &options)` — the VM-backed cost model: each certified candidate compiled once through `ProgramExecutor` (interpreter timings refused), probe-run differential-checked, best-of-batches measured; returns the `TunedSchedule` *and* the winner's ready-to-run executor |
//! | hand-writing a parallel `Main` and checking `Query::DataRace` | `retreet_transform::synthesize_parallel_main(&verifier, &sequential)` (pass level) / `retreet_transform::parallelize_recursive_calls(&verifier, &p)` (sibling recursion) |
//! | `retreet_css::analysis_model::verify_css_fusion(&EquivOptions)` *(removed)* | `retreet_css::analysis_model::verify_css_fusion_with(&verifier)` (verdict only) or `certify_css_fusion(&verifier)` (synthesized certified transform) |
//! | mutating `RaceOptions` / `EquivOptions` / `EnumOptions` fields | `RaceOptions::builder()…build()` etc., or set the budget once on the `Verifier` builder |
//! | repeated `Solver::check(&growing_system)` along a search | [`retreet_logic::IncrementalSolver`]: `push()` / `assume_all(&new_atoms)` / `check()` / `pop()` over a shared [`retreet_logic::SolverCache`] — the SAT prefix is never re-solved and a cached-UNSAT prefix prunes the extension outright |
//! | `Solver::check` on systems that repeat across a query | `Solver::check_cached(&system, &cache)` (component-decomposed memoization keyed by [`retreet_logic::intern`]-ed atom ids) |
//! | per-query `BlockTable::build` + re-summarized paths | `retreet_analysis::AnalysisContext::for_program(&p)` — block table, field sets, lazy path summaries, solver cache and symbol table, memoized process-wide per program |
//! | the seed (pre-optimization) engine behaviour | preserved verbatim in `retreet_analysis::naive` (differential tests and the `bench_engines` "before" column only) |
//! | `CacheStats { hits, misses, entries }` | gains `collisions` (an insert that found a same-key, different-subjects resident; the resident entry is kept, never evicted by the collider, and the lookup side stays a plain miss so `hits + misses == lookups` always) — exhaustive-match constructors must add the field |
//! | `Engine::Automata.supports(kind)` == `false` for `DataRace` / `Equivalence` | **now `true` for all three query kinds**: the automata engine answers races through the structural access-summary analysis and equivalence through the fusion-correspondence matcher, both at `Soundness::Unbounded`; code that assumed `verify_with_engine(Engine::Automata, Query::DataRace(..))` errors with `NoApplicableEngine` must handle a verdict (the engine still *skips* when a structural race candidate or a non-corresponding pair gets only a bounded all-clear from its delegate) |
//! | asserting `verdict.engine == Engine::Trace` (or `trees_checked() > 0`) on §5 race/equivalence portfolio verdicts | the default portfolio now answers these with `Engine::Automata`, `Soundness::Unbounded`, and `trees_checked() == 0` (no model enumeration backs an unbounded answer); pin `.engines([Engine::Configuration])` / `[Engine::Trace]` to keep exercising the bounded tiers, or assert on `verdict.soundness` instead of the model count |
//! | re-verifying to strengthen a cached bounded verdict | the cache upgrades in place: an unbounded verdict replaces a resident `BoundedUpTo` entry for the same key, and a bounded re-run never downgrades a resident unbounded (or wider-bounded) verdict — `Soundness::covers` is the replacement criterion |
//! | `Verdict { outcome, engine, soundness, elapsed, cached }` | gains `coalesced: bool` (the verdict was adopted from an identical in-flight query's single engine run) |
//! | `.parallel(true)` first-definitive-verdict-wins dispatch | **removed** (it could cache a bounded positive over a pending engine's unbounded refutation, nondeterministically): parallel dispatch now decides by *authority* — dispatch order, unbounded engines first — and verdict + witness are identical to sequential on every run; losing engines are cooperatively cancelled |
//! | looping `verifier.verify(q)` over a batch | `verifier.verify_batch(&[q1, q2, …])` — worker-thread fan-out, results in input order, duplicates coalesced |
//! | hand-rolled serving loops around a `Verifier` | `retreet_serve::Service` + `serve_lines` / `serve_tcp` (NDJSON protocol), or the `retreet-serve` binary (`--listen ADDR --warm-start --parallel`) |
//! | `check_data_race` / `check_equivalence` / `check_validity` in a portfolio worker | the `*_cancellable(…, cancel: &AtomicBool)` variants — return `None` instead of a verdict once the flag is raised |
//! | `retreet_analysis::interp::run(&p, &tree)` in a hot loop | `retreet_runtime::exec::ProgramExecutor::new(&p)` (or `with_verifier(&verifier, &p)` for certified iterative lowering) + `executor.run(&tree)` — compile once, run on the VM many times, interpreter fallback when the program doesn't compile |
//! | one-shot compiled execution | `retreet_runtime::run_compiled(&p, &tree)` / `run_compiled_certified(&verifier, &certified_transform, &tree)` |
//! | trusting a hand-written iterative rewrite of a recursive traversal | `retreet_codegen::compile_with_lowering(&verifier, &p)` — the lowering is synthesized, then certified via `Query::Equivalence` against a reconstruction; refusals carry the counterexample tree and the function stays on frame bytecode |
//! | `Verdict { outcome, engine, soundness, elapsed, cached, coalesced }` | gains `degraded: bool` — a best-effort verdict returned because the per-query deadline expired after this engine finished but before the authoritative one did; degraded verdicts are never cached or persisted, so cache hits always report `degraded == false` |
//! | `verifier.verify(q)` with unbounded patience | `Verifier::builder().default_deadline(Duration)…` (or `ServeOptions::deadline_ms` / `--deadline-ms`): the watchdog raises the cooperative cancel flag at expiry and the call resolves *typed* — a degraded best-resolved verdict or `VerifyError::DeadlineExceeded`, never a wrong or truncated answer |
//! | `--warm-start` as the only restart story | `Verifier::builder().persist(path)` / `ServeOptions::persist` / `--persist PATH`: a crash-safe `retreet_store` record log written through on every fresh verdict and replayed on startup — warm start generalized to every verdict ever computed; `--fail-open` refuses a corrupt store instead of skipping bad records |
//! | `ServeOptions { race_nodes, equiv_nodes, validity_nodes, valuations, parallel, cache_capacity }` | gains the robustness knobs `workers`, `cold_queue`, `deadline_ms`, `max_connections`, `drain_ms`, `persist`, `fail_open`, `faults` — exhaustive literals must append `..ServeOptions::default()` |
//! | `Service::new(&options)` panicking on a bad store | `Service::try_new(&options)` → `Result<Service, VerifyError>` (`Service::new` still panics); `Service::finish()` drains in-flight work, joins the cold-lane workers and flushes the store — call it (or send `{"kind":"shutdown"}`) before exit |
//! | matching serve error responses on the `error` text | every error response now carries a machine-readable `"code"` (`bad_request`, `request_too_large`, `overloaded`, `shutting_down`, `deadline_exceeded`, `unsupported`, `internal`) — dispatch on the code, not the prose |
//! | `serve_tcp(service, listener)` accepting forever | bounded by `ServeOptions::max_connections` (excess clients get one `overloaded` line at accept) and returns cleanly after a shutdown request, draining via `Service::finish()` |
//! | `retreet_lang::ast::Dir::{Left, Right}` | `retreet_lang::ast::ChildAxis(u8)` — `ChildAxis::LEFT` / `ChildAxis::RIGHT` are axes 0 and 1; programs address any axis as `n.c<k>` (with `n.l` / `n.r` as spelling-preserving aliases for `c0` / `c1`) and declare higher arities with an `arity K;` header (2 ≤ K ≤ `MAX_ARITY`, default 2) |
//! | `Dir::flip()` to realign a two-call fusion order | **removed** — the fusion builder aligns *k*-ary call orders to the first component's axis permutation directly; no two-element special case survives |
//! | `NodeSel::{Cur, Left, Right}` in bytecode | `NodeSel::{Cur, Child(ChildAxis)}` — child selectors carry the axis |
//! | `IterativeLowering { pre, mid, post, .. }` (three fixed segments) | `IterativeLowering { axes, call_results, segments, .. }` — `axes.len() + 1` straight-line segments, one per gap around the recursive calls, at any arity |
//! | `FlatTree` with `left` / `right` index arrays | `FlatTree::from_value_tree_kary(&tree, &fields, arity)` — one `u32` child column per axis (`from_value_tree` remains the binary shorthand) |
//! | `retreet_mso::encode::check_overlap(&a, &b)` / `guards_equivalent(&a, &b)` | `check_overlap_k(&a, &b, arity)` / `guards_equivalent_k(&a, &b, arity)` — the binary names remain as arity-2 shorthands; above arity 2 the overlap/equivalence question is decided by the direct region case analysis (the slotted binarization stays the documented semantics) |
//! | `TreeCorpus::new(max_nodes, &fields, valuations)` (binary only) | `TreeCorpus::with_arity(arity, max_nodes, &fields, valuations)` — k-ary shape enumeration; `ValueTree::complete_kary(arity, height, &fields, init)` builds complete k-ary measurement trees |
//! | `run` / `tune` service requests pinned to binary trees | both accept an optional `"arity"` field (2 ≤ arity ≤ 8, at least the program's declared arity; out-of-range answers a typed `bad_request`); `TuneOptions` gains `tree_arity` |
//!
//! # Benchmarks
//!
//! `cargo run --release -p retreet-bench --bin bench_engines` writes
//! `BENCH_engines.json` at the repository root: every §5 experiment timed
//! through both the frozen naive engines and the optimized portfolio under
//! the quick and the full budget (schema `retreet-bench-engines/v1`; format
//! documented in `crates/README.md`).  CI's perf-smoke job runs the quick
//! budget with a generous wall-clock ceiling to catch accidental
//! exponential regressions.
//!
//! `cargo run --release -p retreet-bench --bin bench_transform` writes
//! `BENCH_transform.json` (schema `retreet-bench-transform/v2`): every
//! fusable §5 case synthesized and certified through the transform tier,
//! plus fused-vs-sequential runtime on all four families — both sides
//! compiled to the VM tier and differential-checked against the
//! interpreter before timing.  CI runs it in quick mode and fails on
//! certificate drift and on execution drift.
//!
//! `cargo run --release -p retreet-bench --bin bench_service` writes
//! `BENCH_service.json` (schema `retreet-bench-service/v2`): warm-cache
//! serving throughput and p50/p99 latency under 1/4/8 client threads,
//! cache hit and coalescing rates, a cold-burst single-flight check, and
//! three robustness phases — shed rate under a full cold queue, the
//! deadline-hit rate with engines stalled past the per-query deadline,
//! and the warm-hit rate after a cold restart from the persisted verdict
//! store (which must be exactly 1.0 with zero engine runs).  Every
//! response is verified against the paper's verdict — drift under
//! concurrency fails the run.
//!
//! `cargo run --release -p retreet-bench --bin bench_codegen` writes
//! `BENCH_codegen.json` (schema `retreet-bench-codegen/v1`): every
//! executable §5 workload compiled through the codegen tier and timed on
//! the reference interpreter, the bytecode VM and the VM running the
//! certified fusion, with one certificate line per iterative lowering
//! (fresh-then-cached serving path, `cached` / `coalesced` flags reported
//! honestly).  CI runs it in quick mode and fails on VM-vs-interpreter
//! drift.
//!
//! `cargo run --release -p retreet-bench --bin bench_tune` writes
//! `BENCH_tune.json` (schema `retreet-bench-tune/v1`): the certified
//! schedule autotuner run on all four §5 families — the full scored
//! candidate table (certified schedules with measured VM seconds,
//! refusals with their witnesses), both baselines, and the winner with
//! its certificate provenance.  CI runs it in quick mode and fails on
//! drift, on a tuned cost above best-of{original, canonical fusion},
//! and on a winner without certificate provenance.
//!
//! Old verdict shapes map to [`retreet_verify::Outcome`] variants: race
//! witnesses, equivalence counterexamples and falsifying trees ride along
//! unchanged inside the unified [`retreet_verify::Verdict`], which adds
//! engine provenance ([`retreet_verify::Engine`]), a bounded-soundness
//! caveat ([`retreet_verify::Soundness`]) and wall-clock timing.  Errors
//! that used to be ad-hoc `String`s are now the typed
//! [`retreet_verify::VerifyError`] hierarchy.

#![forbid(unsafe_code)]

pub use retreet_analysis;
pub use retreet_codegen;
pub use retreet_css;
pub use retreet_cycletree;
pub use retreet_lang;
pub use retreet_logic;
pub use retreet_mso;
pub use retreet_runtime;
pub use retreet_serve;
pub use retreet_store;
pub use retreet_transform;
pub use retreet_verify;

// The façade types, re-exported at the top level for downstream brevity.
pub use retreet_verify::{Query, Verdict, Verifier, VerifyError};
