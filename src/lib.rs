//! # retreet-repro — umbrella crate for the Retreet reproduction
//!
//! This crate only re-exports the workspace members so that the examples and
//! the cross-crate integration tests under `tests/` have a single dependency
//! root.  See the individual crates for the actual functionality:
//!
//! * [`retreet_lang`] — the Retreet language (AST, parser, blocks, read/write
//!   analysis, weakest preconditions, the §5 program corpus);
//! * [`retreet_logic`] — the linear-integer-arithmetic solver substrate;
//! * [`retreet_mso`] — MSO over binary trees, bounded checking and the
//!   tree-automata decision procedure (the MONA substitute);
//! * [`retreet_analysis`] — configurations, data-race detection and
//!   fusion-equivalence checking;
//! * [`retreet_runtime`] — owned trees, fused and rayon-parallel schedules,
//!   and analysis-gated transformation capabilities;
//! * [`retreet_css`] / [`retreet_cycletree`] — the two real-world case-study
//!   substrates of the evaluation.

#![forbid(unsafe_code)]

pub use retreet_analysis;
pub use retreet_css;
pub use retreet_cycletree;
pub use retreet_lang;
pub use retreet_logic;
pub use retreet_mso;
pub use retreet_runtime;
